#!/usr/bin/env python3
"""Multi-control-point synthesis on a nested loop (paper's Example 4 shape).

Two cut points (the outer and inner loop headers) are handled by
Algorithm 3: a single stacked vector ``λ`` holds one affine function per
cut point, and extremal counterexamples are drawn from the large-block
transitions between the cut points.

The comparison against the baselines goes through the **prover registry**:
one :class:`repro.Analysis` object builds the termination problem once,
then every tool runs on the shared, cached problem — the same mechanism
the Table-1 harness uses.

Run with ``python examples/nested_loops.py``.
"""

from repro import Analysis, AnalysisConfig, available_provers, get_prover

NESTED = """
var i, j, n;
assume(n >= 0 and n <= 1000);
i = 0;
while (i < n) {
    j = 0;
    while (j < n) {
        j = j + 1;
    }
    i = i + 1;
}
"""


def main() -> None:
    analysis = Analysis(
        NESTED,
        config=AnalysisConfig(check_certificates=False),
        name="nested_loops",
    )
    for tool in available_provers():
        result = analysis.run(tool)   # the problem is built once, then shared
        print("— %s —" % get_prover(tool).summary)
        print("  status            :", result.status.value)
        print("  dimension         :", result.dimension)
        print(
            "  LP (instances, avg rows, avg cols) : (%d, %.1f, %.1f)"
            % (
                result.lp_statistics.instances,
                result.lp_statistics.average_rows,
                result.lp_statistics.average_cols,
            )
        )
        print(
            "  synthesis time    : %.1f ms (shared build: %.1f ms)"
            % (
                result.stage_seconds("synthesis") * 1000.0,
                analysis.build_seconds() * 1000.0,
            )
        )


if __name__ == "__main__":
    main()
