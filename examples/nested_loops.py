#!/usr/bin/env python3
"""Multi-control-point synthesis on a nested loop (paper's Example 4 shape).

Two cut points (the outer and inner loop headers) are handled by
Algorithm 3: a single stacked vector ``λ`` holds one affine function per
cut point, and extremal counterexamples are drawn from the large-block
transitions between the cut points.

Run with ``python examples/nested_loops.py``.
"""

from repro import compile_program, prove_termination
from repro.baselines import eager_farkas_lexicographic, heuristic_prover
from repro.core import TerminationProver

NESTED = """
var i, j, n;
assume(n >= 0 and n <= 1000);
i = 0;
while (i < n) {
    j = 0;
    while (j < n) {
        j = j + 1;
    }
    i = i + 1;
}
"""


def main() -> None:
    automaton = compile_program(NESTED, name="nested_loops")
    result = prove_termination(automaton)
    print("— Termite (lazy, counterexample-guided) —")
    print("status            :", result.status)
    print("dimension         :", result.dimension)
    print("ranking function  :", result.ranking.pretty() if result.ranking else None)
    print(
        "LP size (avg rows, cols) : (%.1f, %.1f)"
        % (result.lp_statistics.average_rows, result.lp_statistics.average_cols)
    )

    problem = TerminationProver(automaton, check_certificates=False).build_problem()
    eager = eager_farkas_lexicographic(problem)
    print("\n— eager Farkas baseline (Rank-style) —")
    print("status            :", eager.status)
    print(
        "LP size (avg rows, cols) : (%.1f, %.1f)"
        % (eager.lp_statistics.average_rows, eager.lp_statistics.average_cols)
    )

    quick = heuristic_prover(problem)
    print("\n— syntactic heuristic (Loopus-style) —")
    print("status            :", quick.status)


if __name__ == "__main__":
    main()
