#!/usr/bin/env python3
"""Quickstart: prove termination of a small program and print the witness.

Run with ``python examples/quickstart.py``.
"""

from repro import compile_program, prove_termination

PROGRAM = """
var x, y;
assume(y >= 1);
while (x > 0) {
    if (nondet()) { x = x - y; } else { x = x - 2 * y; }
}
"""


def main() -> None:
    automaton = compile_program(PROGRAM, name="quickstart")
    result = prove_termination(automaton)
    print("status            :", result.status)
    print("dimension         :", result.dimension)
    print("certificate valid :", result.certificate_checked)
    print("synthesis time    : %.1f ms" % (result.time_seconds * 1000.0))
    print(
        "LP size (avg rows, cols) : (%.1f, %.1f)"
        % (result.lp_statistics.average_rows, result.lp_statistics.average_cols)
    )
    if result.ranking is not None:
        print("ranking function  :", result.ranking.pretty())


if __name__ == "__main__":
    main()
