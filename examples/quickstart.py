#!/usr/bin/env python3
"""Quickstart: prove termination of a small program and print the witness.

Uses the unified analysis API: one :func:`repro.analyze` call runs the
staged pipeline (frontend → invariants → cutset → large_block →
synthesis → certificate) and returns a JSON-serializable
:class:`~repro.api.result.AnalysisResult`.

Run with ``python examples/quickstart.py``.
"""

from repro import AnalysisConfig, AnalysisResult, analyze

PROGRAM = """
var x, y;
assume(y >= 1);
while (x > 0) {
    if (nondet()) { x = x - y; } else { x = x - 2 * y; }
}
"""


def main() -> None:
    result = analyze(
        PROGRAM,
        tool="termite",
        config=AnalysisConfig(lp_mode="incremental"),
        name="quickstart",
    )
    print("status            :", result.status.value)
    print("dimension         :", result.dimension)
    print("certificate valid :", result.certificate_checked)
    print("analysis time     : %.1f ms" % (result.time_seconds * 1000.0))
    print(
        "LP size (avg rows, cols) : (%.1f, %.1f)"
        % (result.lp_statistics.average_rows, result.lp_statistics.average_cols)
    )
    if result.ranking is not None:
        print("ranking function  :", result.ranking.pretty())

    # Every result serialises to JSON and back *exactly* — rankings included.
    assert AnalysisResult.from_json(result.to_json()) == result
    print("JSON round-trip   : exact (%d bytes)" % len(result.to_json()))


if __name__ == "__main__":
    main()
