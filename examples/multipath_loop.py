#!/usr/bin/env python3
"""Listing 1 of the paper: a loop whose paths decrease only as a whole.

Each iteration of the loop decrements ``x`` exactly once, but on different
statements depending on a boolean choice, so no linear function decreases
at *every basic-block step*.  Treating each whole path through the loop
body as a single large-block transition — without ever enumerating the
paths — is exactly what the cut-set + large-block encoding achieves, and
the single cut point then admits the obvious ranking function ``x``.

Run with ``python examples/multipath_loop.py``.
"""

from repro import compile_program, prove_termination
from repro.program import compute_cutset, large_block_encoding

LISTING1 = """
var x, c;
x = nondet();
assume(x >= 0);
while (x >= 0) {
    c = nondet();
    if (c >= 1) { x = x - 1; }
    if (c <= 0) { x = x - 1; }
}
"""


def main() -> None:
    automaton = compile_program(LISTING1, name="listing1")
    cutset = compute_cutset(automaton)
    blocks = large_block_encoding(automaton, cutset)
    print("cut-set                :", cutset)
    print("large-block transitions:")
    for block in blocks:
        print(
            "    %s -> %s summarising %d paths"
            % (block.source, block.target, block.path_count)
        )
    result = prove_termination(automaton)
    print("status                 :", result.status)
    print("ranking function       :", result.ranking.pretty() if result.ranking else None)
    print("certificate valid      :", result.certificate_checked)


if __name__ == "__main__":
    main()
