#!/usr/bin/env python3
"""Listing 1 of the paper: a loop whose paths decrease only as a whole.

Each iteration of the loop decrements ``x`` exactly once, but on different
statements depending on a boolean choice, so no linear function decreases
at *every basic-block step*.  Treating each whole path through the loop
body as a single large-block transition — without ever enumerating the
paths — is exactly what the cut-set + large-block encoding achieves, and
the single cut point then admits the obvious ranking function ``x``.

The example drives the staged :class:`repro.Analysis` pipeline by hand to
show the intermediate artifacts, with an observer hook tracing the stages.

Run with ``python examples/multipath_loop.py``.
"""

from repro import Analysis

LISTING1 = """
var x, c;
x = nondet();
assume(x >= 0);
while (x >= 0) {
    c = nondet();
    if (c >= 1) { x = x - 1; }
    if (c <= 0) { x = x - 1; }
}
"""


def trace(event: str, stage: str, seconds) -> None:
    if event == "end":
        print("  [stage] %-12s %.1f ms" % (stage, seconds * 1000.0))


def main() -> None:
    analysis = Analysis(LISTING1, name="listing1", observers=[trace])
    problem = analysis.problem()          # the cached front half
    print("cut-set                :", list(problem.cutset))
    print("large-block transitions:")
    for block in problem.blocks:
        print(
            "    %s -> %s summarising %d paths"
            % (block.source, block.target, block.path_count)
        )
    result = analysis.run("termite")      # the prover half, via the registry
    print("status                 :", result.status.value)
    print("ranking function       :", result.ranking.pretty() if result.ranking else None)
    print("certificate valid      :", result.certificate_checked)


if __name__ == "__main__":
    main()
