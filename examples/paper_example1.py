#!/usr/bin/env python3
"""The paper's running example (Example 1 / Figure 1).

A single control point with two guarded transitions; the paper derives the
ranking function ``ρ(x, y) = y + 1`` from the invariant polyhedron drawn in
Figure 1.  The script builds the automaton through the builder API (the
:class:`repro.Analysis` pipeline accepts automata as well as source text),
lets the polyhedral analysis compute the invariant, and prints the extremal
counterexamples' LP statistics alongside the synthesised witness.

Run with ``python examples/paper_example1.py``.
"""

from repro import Analysis
from repro.linexpr import var
from repro.program import AutomatonBuilder


def build_example1():
    x, y = var("x"), var("y")
    builder = AutomatonBuilder(
        ["x", "y"], initial="start", initial_condition=[x.eq(5), y.eq(10)]
    )
    builder.transition("start", "k0", name="init")
    builder.transition(
        "k0", "k0",
        guard=[x <= 10, y >= 0],
        updates={"x": x + 1, "y": y - 1},
        name="t1",
    )
    builder.transition(
        "k0", "k0",
        guard=[x >= 0, y >= 0],
        updates={"x": x - 1, "y": y - 1},
        name="t2",
    )
    return builder.build()


def main() -> None:
    analysis = Analysis(build_example1(), name="example1")
    problem = analysis.problem()
    print("cut-set           :", list(problem.cutset))
    print("invariant at k0   :")
    for constraint in problem.invariant("k0").constraints:
        print("   ", constraint)
    result = analysis.run("termite")
    print("status            :", result.status.value)
    print("ranking function  :", result.ranking.pretty() if result.ranking else None)
    print("certificate valid :", result.certificate_checked)
    print("SMT/LP iterations :", result.iterations)
    print(
        "LP size (avg rows, cols) : (%.1f, %.1f)"
        % (result.lp_statistics.average_rows, result.lp_statistics.average_cols)
    )
    print("stage breakdown   :")
    for stage in result.stages:
        print("    %-12s %.1f ms" % (stage.name, stage.seconds * 1000.0))


if __name__ == "__main__":
    main()
