"""Differential tests: the sparse scaled-integer kernel vs dense Fractions.

Every fused :class:`~repro.linalg.sparse.SparseRow` operation must agree
exactly with the same operation performed entry-by-entry on dense
``Fraction`` sequences (the representation the kernel replaced), and
every produced row must satisfy the normal-form invariants the rest of
the pipeline relies on (positive denominator, no stored zeros, overall
gcd 1, strictly increasing indices).
"""

from fractions import Fraction
from math import gcd

import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.sparse import SparseRow
from repro.linalg.vector import Vector

fractions = st.builds(
    Fraction,
    st.integers(-30, 30),
    st.integers(1, 12),
)
dense_rows = st.lists(fractions, min_size=0, max_size=10)


def _check_invariants(row: SparseRow) -> None:
    assert row.denominator > 0
    assert all(numerator != 0 for numerator in row.numerators)
    assert list(row.indices) == sorted(set(row.indices))
    divisor = row.denominator
    for numerator in row.numerators:
        divisor = gcd(divisor, numerator)
    if row.is_zero():
        assert row.denominator == 1
    else:
        assert divisor == 1


def _pad(values, size):
    return list(values) + [Fraction(0)] * (size - len(values))


class TestRoundTrip:
    @given(dense_rows)
    @settings(max_examples=60, deadline=None)
    def test_dense_round_trip(self, values):
        row = SparseRow.from_dense(values)
        _check_invariants(row)
        assert row.to_dense(len(values)) == values
        for position, value in enumerate(values):
            assert row.get(position) == value
            if value > 0:
                assert row.numerator_at(position) > 0
            elif value < 0:
                assert row.numerator_at(position) < 0
            else:
                assert row.numerator_at(position) == 0

    def test_pairs_and_dict_agree(self):
        pairs = [(3, Fraction(1, 2)), (-1, 5), (7, Fraction(-2, 3))]
        assert SparseRow.from_pairs(pairs) == SparseRow.from_dict(dict(pairs))

    def test_zero_entries_dropped(self):
        row = SparseRow.from_pairs([(0, 0), (2, Fraction(0))])
        assert row.is_zero()
        assert row == SparseRow.zero()

    def test_negative_sentinel_index_sorts_first(self):
        row = SparseRow.from_pairs([(4, 1), (-1, 2)])
        assert row.support() == (-1, 4)

    def test_duplicate_index_rejected_by_constructor(self):
        with pytest.raises(ValueError):
            SparseRow([1, 1], [2, 3])


class TestFusedOperationsMatchDense:
    @given(dense_rows, dense_rows, fractions, fractions)
    @settings(max_examples=80, deadline=None)
    def test_combine(self, a, b, ca, cb):
        size = max(len(a), len(b))
        a, b = _pad(a, size), _pad(b, size)
        result = SparseRow.from_dense(a).combine(ca, SparseRow.from_dense(b), cb)
        _check_invariants(result)
        assert result.to_dense(size) == [ca * x + cb * y for x, y in zip(a, b)]

    @given(dense_rows, dense_rows, st.integers(-9, 9), st.integers(-9, 9))
    @settings(max_examples=80, deadline=None)
    def test_combine_int(self, a, b, ca, cb):
        size = max(len(a), len(b))
        a, b = _pad(a, size), _pad(b, size)
        result = SparseRow.from_dense(a).combine_int(
            ca, SparseRow.from_dense(b), cb
        )
        _check_invariants(result)
        assert result.to_dense(size) == [ca * x + cb * y for x, y in zip(a, b)]

    @given(dense_rows, dense_rows)
    @settings(max_examples=80, deadline=None)
    def test_dot(self, a, b):
        size = max(len(a), len(b))
        a, b = _pad(a, size), _pad(b, size)
        sparse_a, sparse_b = SparseRow.from_dense(a), SparseRow.from_dense(b)
        expected = Vector(a).dot(Vector(b)) if size else Fraction(0)
        assert sparse_a.dot(sparse_b) == expected
        numerator = sparse_a.dot_numerator(sparse_b)
        assert Fraction(
            numerator, sparse_a.denominator * sparse_b.denominator
        ) == expected

    @given(dense_rows, dense_rows, st.integers(0, 9))
    @settings(max_examples=80, deadline=None)
    def test_eliminate(self, a, b, index):
        size = max(len(a), len(b), index + 1)
        a, b = _pad(a, size), _pad(b, size)
        sparse_a, sparse_b = SparseRow.from_dense(a), SparseRow.from_dense(b)
        if b[index] == 0:
            if a[index] != 0:
                with pytest.raises(ZeroDivisionError):
                    sparse_a.eliminate(index, sparse_b)
            return
        result = sparse_a.eliminate(index, sparse_b)
        _check_invariants(result)
        factor = a[index] / b[index]
        assert result.to_dense(size) == [
            x - factor * y for x, y in zip(a, b)
        ]
        assert result.get(index) == 0

    @given(dense_rows, st.integers(0, 9))
    @settings(max_examples=60, deadline=None)
    def test_pivot_normalized(self, values, index):
        size = max(len(values), index + 1)
        values = _pad(values, size)
        row = SparseRow.from_dense(values)
        if values[index] == 0:
            with pytest.raises(ZeroDivisionError):
                row.pivot_normalized(index)
            return
        result = row.pivot_normalized(index)
        _check_invariants(result)
        assert result.get(index) == 1
        assert result.to_dense(size) == [v / values[index] for v in values]

    @given(dense_rows, fractions)
    @settings(max_examples=60, deadline=None)
    def test_scaled_and_neg(self, values, factor):
        row = SparseRow.from_dense(values)
        assert row.scaled(factor).to_dense(len(values)) == [
            factor * v for v in values
        ]
        assert (-row).to_dense(len(values)) == [-v for v in values]
        _check_invariants(row.scaled(factor))

    @given(dense_rows, dense_rows)
    @settings(max_examples=60, deadline=None)
    def test_add_sub(self, a, b):
        size = max(len(a), len(b))
        a, b = _pad(a, size), _pad(b, size)
        sparse_a, sparse_b = SparseRow.from_dense(a), SparseRow.from_dense(b)
        assert (sparse_a + sparse_b).to_dense(size) == [
            x + y for x, y in zip(a, b)
        ]
        assert (sparse_a - sparse_b).to_dense(size) == [
            x - y for x, y in zip(a, b)
        ]


class TestDirectionNormalisation:
    @given(dense_rows, st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_positive_scalings_collapse(self, values, scale):
        base = SparseRow.from_dense(values).normalized_direction()
        scaled = SparseRow.from_dense(
            [v * scale for v in values]
        ).normalized_direction()
        assert base == scaled
        assert base.denominator == 1

    def test_matches_vector_normalized(self):
        values = [Fraction(1, 2), Fraction(3, 2), Fraction(0)]
        row = SparseRow.from_dense(values).normalized_direction()
        assert row.to_dense(3) == list(Vector(values).normalized())


class TestEqualityHashing:
    @given(dense_rows)
    @settings(max_examples=40, deadline=None)
    def test_equal_rows_hash_equal(self, values):
        first = SparseRow.from_dense(values)
        second = SparseRow.from_pairs(list(enumerate(values)))
        assert first == second
        assert hash(first) == hash(second)
