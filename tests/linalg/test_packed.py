"""Differential tests: the packed int64 kernel vs the exact SparseRow path.

Two families of guarantees are under test:

* **Value equality.**  Every fused :class:`~repro.linalg.packed.PackedRow`
  operation must agree exactly with the same operation on the exact
  :class:`~repro.linalg.sparse.SparseRow` representation — including when
  the int64 guard trips and the packed op transparently falls back.
* **The overflow contract.**  Products driven to the ±2**63 boundary must
  engage the fallback (counted by :func:`overflow_fallbacks`) and never
  silently wrap: the result of an overflowing op equals the exact result,
  bit for bit.
"""

import os
from fractions import Fraction
from math import gcd

import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import packed as packed_module
from repro.linalg.packed import (
    KERNELS,
    PACKED_MIN_WIDTH,
    PackedRow,
    numpy_available,
    overflow_fallbacks,
    pack_row,
    reset_overflow_fallbacks,
    resolve_kernel,
)
from repro.linalg.sparse import SparseRow

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="packed kernel requires numpy"
)

INT64_MAX = 2**63 - 1
WIDTH = 12

entries = st.integers(-50, 50)
denominators = st.integers(1, 20)
sparse_rows = st.builds(
    lambda values, den: SparseRow.from_pairs(
        [(i - 1, Fraction(v, den)) for i, v in enumerate(values)]
    ),
    st.lists(entries, min_size=WIDTH - 1, max_size=WIDTH - 1),
    denominators,
)
scalars = st.integers(-40, 40)


def _check_invariants(row):
    assert row.denominator > 0
    numerators = row.numerators
    assert all(n != 0 for n in numerators)
    divisor = row.denominator
    for numerator in numerators:
        divisor = gcd(divisor, numerator)
    if not numerators:
        assert row.denominator == 1
    else:
        assert divisor == 1
    # np.int64 must never leak out of the packed module.
    for value in (*row.indices, *row.numerators, row.denominator):
        assert type(value) is int


class TestPackingRoundTrip:
    @given(sparse_rows)
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_identity(self, row):
        packed = PackedRow.from_sparse(row, WIDTH)
        assert packed is not None
        _check_invariants(packed)
        assert packed == row
        assert row == packed.to_sparse()
        assert hash(packed) == hash(row)
        assert packed.indices == row.indices
        assert packed.numerators == row.numerators
        assert packed.denominator == row.denominator
        for index in range(-1, WIDTH - 1):
            assert packed.get(index) == row.get(index)
            assert packed.numerator_at(index) == row.numerator_at(index)

    def test_row_beyond_int64_does_not_pack(self):
        huge = SparseRow.from_pairs([(0, Fraction(2**63))])
        assert PackedRow.from_sparse(huge, WIDTH) is None
        assert pack_row(huge, WIDTH) is huge  # transparent pass-through

    def test_boundary_numerator_packs_exactly(self):
        edge = SparseRow.from_pairs([(0, Fraction(INT64_MAX))])
        packed = PackedRow.from_sparse(edge, WIDTH)
        assert packed is not None
        assert packed.numerator_at(0) == INT64_MAX

    def test_index_outside_universe_does_not_pack(self):
        wide = SparseRow.from_pairs([(WIDTH - 1, Fraction(1))])
        assert PackedRow.from_sparse(wide, WIDTH) is None


class TestDifferentialOps:
    @given(sparse_rows, sparse_rows, scalars, scalars)
    @settings(max_examples=80, deadline=None)
    def test_combine_int_matches_exact(self, a, b, ca, cb):
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        result = pa.combine_int(ca, pb, cb)
        expected = a.combine_int(ca, b, cb)
        assert result == expected
        if isinstance(result, PackedRow):
            _check_invariants(result)

    @given(sparse_rows, sparse_rows)
    @settings(max_examples=60, deadline=None)
    def test_dot_matches_exact(self, a, b):
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        assert pa.dot(pb) == a.dot(b)
        assert pa.dot_numerator(pb) == a.dot_numerator(b)

    @given(sparse_rows, sparse_rows)
    @settings(max_examples=60, deadline=None)
    def test_eliminate_matches_exact(self, a, pivot):
        pivot_index = next(
            (i for i in pivot.support() if i >= 0), None
        )
        if pivot_index is None:
            return
        pa, pp = pack_row(a, WIDTH), pack_row(pivot, WIDTH)
        assert pa.eliminate(pivot_index, pp) == a.eliminate(pivot_index, pivot)

    @given(sparse_rows)
    @settings(max_examples=60, deadline=None)
    def test_normalized_direction_matches_exact(self, a):
        pa = pack_row(a, WIDTH)
        assert pa.normalized_direction() == a.normalized_direction()

    @given(sparse_rows, st.builds(Fraction, scalars, st.integers(1, 12)))
    @settings(max_examples=60, deadline=None)
    def test_scaled_matches_exact(self, a, factor):
        pa = pack_row(a, WIDTH)
        assert pa.scaled(factor) == a.scaled(factor)

    @given(sparse_rows, sparse_rows)
    @settings(max_examples=40, deadline=None)
    def test_mixed_packed_sparse_operands(self, a, b):
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        expected = a.combine_int(3, b, -2)
        # Packed-first with an exact partner, and the other way round:
        # both must land on the exact result.
        assert pa.combine_int(3, b, -2) == expected
        assert a.combine_int(3, pb, -2) == expected


# Rows built from *consecutive* integers keep their magnitude through the
# constructor's GCD normalisation (gcd(n, n + 1) == 1); the lower bound
# guarantees 2 * (max_a + max_b) exceeds the int64 guard.
big_numerators = st.integers(2**62 + 1, INT64_MAX - 4)


class TestOverflowBoundary:
    """Products driven toward ±2**63: the guard must engage, never wrap."""

    @given(big_numerators, big_numerators, st.integers(2, 1000))
    @settings(max_examples=60, deadline=None)
    def test_merge_overflow_falls_back_exactly(self, na, nb, scale):
        a = SparseRow.from_pairs([(0, Fraction(na)), (3, Fraction(-(na + 1)))])
        b = SparseRow.from_pairs([(0, Fraction(nb)), (5, Fraction(nb + 1))])
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        assert isinstance(pa, PackedRow) and isinstance(pb, PackedRow)
        reset_overflow_fallbacks()
        result = pa.combine_int(scale, pb, -scale)
        assert overflow_fallbacks() >= 1
        assert isinstance(result, SparseRow)  # fell back to the exact path
        assert result == a.combine_int(scale, b, -scale)

    @given(big_numerators, big_numerators)
    @settings(max_examples=40, deadline=None)
    def test_dot_overflow_falls_back_exactly(self, na, nb):
        a = SparseRow.from_pairs([(i, Fraction(na + i)) for i in range(4)])
        b = SparseRow.from_pairs([(i, Fraction(-(nb + i))) for i in range(4)])
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        reset_overflow_fallbacks()
        assert pa.dot_numerator(pb) == a.dot_numerator(b)
        assert overflow_fallbacks() >= 1

    def test_boundary_sum_just_fits(self):
        # |sa| * max_a + |sb| * max_b == INT64_MAX exactly: no fallback.
        half = INT64_MAX // 2
        a = SparseRow.from_pairs([(0, Fraction(half))])
        b = SparseRow.from_pairs([(0, Fraction(INT64_MAX - half))])
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        reset_overflow_fallbacks()
        result = pa.combine_int(1, pb, 1)
        assert overflow_fallbacks() == 0
        assert isinstance(result, PackedRow)
        assert result == a.combine_int(1, b, 1)

    def test_boundary_sum_just_overflows(self):
        a = SparseRow.from_pairs([(0, Fraction(INT64_MAX))])
        b = SparseRow.from_pairs([(1, Fraction(1))])
        pa, pb = pack_row(a, WIDTH), pack_row(b, WIDTH)
        reset_overflow_fallbacks()
        result = pa.combine_int(1, pb, 1)  # bound: INT64_MAX + 1 > INT64_MAX
        assert overflow_fallbacks() == 1
        assert result == a.combine_int(1, b, 1)

    @given(st.lists(st.tuples(scalars, scalars), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_op_sequence_differential_with_forced_fallbacks(self, steps):
        """A chain of merges through the overflow region stays exact."""
        seed_exact = SparseRow.from_pairs([(0, Fraction(2**62)), (1, Fraction(3))])
        seed_packed = pack_row(seed_exact, WIDTH)
        other_exact = SparseRow.from_pairs([(0, Fraction(2**61)), (2, Fraction(-7))])
        other_packed = pack_row(other_exact, WIDTH)
        exact, mixed = seed_exact, seed_packed
        for ca, cb in steps:
            exact = exact.combine_int(ca, other_exact, cb)
            mixed = mixed.combine_int(ca, other_packed, cb)
            assert mixed == exact


class TestResolveKernel:
    def test_exact_always_exact(self):
        assert resolve_kernel("exact", 10_000) == "exact"

    def test_packed_insists(self):
        assert resolve_kernel("packed", 2) == "packed"

    def test_auto_threshold(self):
        assert resolve_kernel("auto", PACKED_MIN_WIDTH - 1) == "exact"
        assert resolve_kernel("auto", PACKED_MIN_WIDTH) == "packed"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("fast", 100)

    def test_kernel_names_stable(self):
        assert KERNELS == ("auto", "packed", "exact")


class TestNoNumpyLane:
    def test_env_var_disables_numpy(self):
        """REPRO_NO_NUMPY must force the exact path in a fresh process."""
        import subprocess
        import sys

        code = (
            "from repro.linalg.packed import numpy_available, resolve_kernel\n"
            "assert not numpy_available()\n"
            "assert resolve_kernel('auto', 10_000) == 'exact'\n"
            "try:\n"
            "    resolve_kernel('packed', 100)\n"
            "except RuntimeError as error:\n"
            "    assert 'repro[fast]' in str(error)\n"
            "else:\n"
            "    raise AssertionError('packed resolved without numpy')\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        src = os.path.join(os.path.dirname(packed_module.__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(src)
        completed = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr
