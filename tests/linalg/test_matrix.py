"""Tests for exact matrices and subspace helpers."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.matrix import (
    Matrix,
    complete_basis,
    in_span,
    linearly_independent,
    orthogonal_complement,
)
from repro.linalg.vector import Vector

small = st.integers(min_value=-6, max_value=6)
matrices = st.lists(
    st.lists(small, min_size=3, max_size=3), min_size=2, max_size=4
).map(Matrix)


class TestBasics:
    def test_identity(self):
        assert Matrix.identity(2) == Matrix([[1, 0], [0, 1]])

    def test_shape(self):
        assert Matrix([[1, 2, 3], [4, 5, 6]]).shape == (2, 3)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2], [3]])

    def test_transpose(self):
        assert Matrix([[1, 2], [3, 4]]).transpose() == Matrix([[1, 3], [2, 4]])

    def test_matmul(self):
        product = Matrix([[1, 2], [3, 4]]) @ Matrix([[0, 1], [1, 0]])
        assert product == Matrix([[2, 1], [4, 3]])

    def test_apply(self):
        assert Matrix([[1, 2], [3, 4]]).apply(Vector([1, 1])) == Vector([3, 7])

    def test_from_rows_columns(self):
        rows = [Vector([1, 2]), Vector([3, 4])]
        assert Matrix.from_rows(rows).row(1) == Vector([3, 4])
        assert Matrix.from_columns(rows).column(1) == Vector([3, 4])


class TestElimination:
    def test_rank_full(self):
        assert Matrix([[1, 0], [0, 1]]).rank() == 2

    def test_rank_deficient(self):
        assert Matrix([[1, 2], [2, 4]]).rank() == 1

    def test_null_space(self):
        kernel = Matrix([[1, 2], [2, 4]]).null_space()
        assert len(kernel) == 1
        assert Matrix([[1, 2], [2, 4]]).apply(kernel[0]).is_zero()

    def test_solve_consistent(self):
        solution = Matrix([[2, 0], [0, 4]]).solve(Vector([6, 8]))
        assert solution == Vector([3, 2])

    def test_solve_inconsistent(self):
        assert Matrix([[1, 1], [1, 1]]).solve(Vector([1, 2])) is None

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_rank_nullity(self, matrix):
        assert matrix.rank() + len(matrix.null_space()) == matrix.num_cols

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_kernel_vectors_are_in_kernel(self, matrix):
        for vector in matrix.null_space():
            assert matrix.apply(vector).is_zero()


class TestSubspaces:
    def test_in_span(self):
        family = [Vector([1, 0, 0]), Vector([0, 1, 0])]
        assert in_span(Vector([2, 3, 0]), family)
        assert not in_span(Vector([0, 0, 1]), family)

    def test_zero_always_in_span(self):
        assert in_span(Vector([0, 0]), [])

    def test_complete_basis(self):
        basis = complete_basis([Vector([1, 1, 0])], 3)
        assert len(basis) == 3
        assert linearly_independent(basis)

    def test_linearly_independent(self):
        assert linearly_independent([Vector([1, 0]), Vector([1, 1])])
        assert not linearly_independent([Vector([1, 2]), Vector([2, 4])])

    def test_orthogonal_complement_empty_family(self):
        complement = orthogonal_complement([], 2)
        assert len(complement) == 2

    def test_orthogonal_complement_is_orthogonal(self):
        family = [Vector([1, 2, 3])]
        for w in orthogonal_complement(family, 3):
            assert w.dot(family[0]) == 0

    def test_membership_via_complement(self):
        family = [Vector([1, 0, 1])]
        complement = orthogonal_complement(family, 3)
        inside = Vector([2, 0, 2])
        outside = Vector([1, 1, 0])
        assert all(w.dot(inside) == 0 for w in complement)
        assert any(w.dot(outside) != 0 for w in complement)
