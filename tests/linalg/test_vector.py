"""Tests for exact rational vectors."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.linalg.vector import Vector

small_fractions = st.fractions(
    min_value=-20, max_value=20, max_denominator=8
)
vectors3 = st.lists(small_fractions, min_size=3, max_size=3).map(Vector)


class TestConstruction:
    def test_zeros(self):
        assert Vector.zeros(3) == Vector([0, 0, 0])

    def test_unit(self):
        assert Vector.unit(3, 1) == Vector([0, 1, 0])

    def test_unit_scaled(self):
        assert Vector.unit(2, 0, 5) == Vector([5, 0])

    def test_len_and_index(self):
        v = Vector([1, 2, 3])
        assert len(v) == 3
        assert v[2] == 3

    def test_slice(self):
        assert Vector([1, 2, 3, 4])[1:3] == Vector([2, 3])


class TestArithmetic:
    def test_add_sub(self):
        assert Vector([1, 2]) + Vector([3, 4]) == Vector([4, 6])
        assert Vector([1, 2]) - Vector([3, 4]) == Vector([-2, -2])

    def test_scalar(self):
        assert Vector([1, 2]) * 3 == Vector([3, 6])
        assert 3 * Vector([1, 2]) == Vector([3, 6])
        assert Vector([2, 4]) / 2 == Vector([1, 2])

    def test_neg(self):
        assert -Vector([1, -2]) == Vector([-1, 2])

    def test_dot(self):
        assert Vector([1, 2, 3]).dot(Vector([4, 5, 6])) == 32

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Vector([1]) + Vector([1, 2])

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Vector([1]) / 0

    @given(vectors3, vectors3)
    def test_dot_symmetric(self, u, v):
        assert u.dot(v) == v.dot(u)

    @given(vectors3, vectors3, small_fractions)
    def test_dot_linear(self, u, v, a):
        w = u * a
        assert w.dot(v) == a * u.dot(v)


class TestHelpers:
    def test_is_zero(self):
        assert Vector([0, 0]).is_zero()
        assert not Vector([0, 1]).is_zero()

    def test_normalized(self):
        assert Vector([Fraction(1, 2), Fraction(3, 2)]).normalized() == Vector([1, 3])

    def test_concat(self):
        assert Vector([1]).concat(Vector([2, 3])) == Vector([1, 2, 3])

    def test_pad(self):
        assert Vector([1, 2]).pad(4, offset=1) == Vector([0, 1, 2, 0])

    def test_pad_out_of_range(self):
        with pytest.raises(ValueError):
            Vector([1, 2]).pad(2, offset=1)

    def test_hashable(self):
        assert len({Vector([1, 2]), Vector([1, 2]), Vector([2, 1])}) == 2
