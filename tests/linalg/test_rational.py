"""Tests for exact rational helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.linalg.rational import (
    as_fraction,
    fraction_gcd,
    integer_normalize,
)


class TestAsFraction:
    def test_integer(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        value = Fraction(2, 7)
        assert as_fraction(value) is value

    def test_string(self):
        assert as_fraction("2/5") == Fraction(2, 5)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(0.5)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_other_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestFractionGcd:
    def test_integers(self):
        assert fraction_gcd([Fraction(4), Fraction(6)]) == Fraction(2)

    def test_fractions(self):
        assert fraction_gcd([Fraction(1, 2), Fraction(3, 4)]) == Fraction(1, 4)

    def test_zeroes_only(self):
        assert fraction_gcd([Fraction(0), Fraction(0)]) == 0

    def test_empty(self):
        assert fraction_gcd([]) == 0

    @given(st.lists(st.fractions(), min_size=1, max_size=6))
    def test_divides_all(self, values):
        g = fraction_gcd(values)
        if g != 0:
            for value in values:
                assert (value / g).denominator == 1


class TestIntegerNormalize:
    def test_halves(self):
        assert integer_normalize([Fraction(1, 2), Fraction(3, 2)]) == [
            Fraction(1),
            Fraction(3),
        ]

    def test_zero_vector(self):
        assert integer_normalize([Fraction(0), Fraction(0)]) == [0, 0]

    def test_sign_preserved(self):
        assert integer_normalize([Fraction(-2), Fraction(4)]) == [-1, 2]

    @given(st.lists(st.fractions(), min_size=1, max_size=5))
    def test_result_is_integral_and_parallel(self, values):
        scaled = integer_normalize(values)
        assert all(entry.denominator == 1 for entry in scaled)
        # Parallel: cross-ratios preserved for a nonzero pivot.
        nonzero = [i for i, v in enumerate(values) if v != 0]
        if nonzero:
            pivot = nonzero[0]
            factor = scaled[pivot] / values[pivot]
            assert factor > 0
            for index, value in enumerate(values):
                assert scaled[index] == value * factor
