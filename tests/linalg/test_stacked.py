"""The stacked int64 tableau: bit-identical to the exact per-row path.

The stacked tableau (:mod:`repro.linalg.stacked`) defers the per-row gcd
renormalisation of the exact kernel, so its live rows are *positive
integer multiples* of the canonical rows.  Every pivot decision of the
simplex (Bland's entering scan, both ratio tests) is invariant under
positive per-row scaling, so the pivot sequence — and therefore every
status, optimum, assignment, ray and counter — must match the exact
kernel bit for bit, including when rows overflow int64 and drop to the
exact side table mid-solve.  These tests enforce that end to end and
pin the raw-numerator contract of the overflow fallback that a scaled
operand once broke.
"""

import os
import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import packed as packed_module
from repro.linalg.packed import (
    kernel_counters_since,
    kernel_counters_snapshot,
    numpy_available,
    overflow_fallbacks,
    pack_row,
)
from repro.linalg.sparse import SparseRow
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr, var
from repro.lp.problem import LpStatus, Sense
from repro.lp.simplex import SimplexState, solve_lp

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="stacked tableau requires numpy"
)

x, y = var("x"), var("y")


def _random_lp(seed, variables, rows, magnitude=6):
    """A seeded LP; ``magnitude`` scales how fast subdeterminants grow."""
    rng = random.Random(seed)
    names = ["v%d" % i for i in range(variables)]
    constraints = []
    for name in names:
        constraints.append(
            Constraint(LinExpr({name: Fraction(-1)}), Relation.LE)
        )
        constraints.append(
            Constraint(
                LinExpr({name: Fraction(1)}, Fraction(-rng.randint(3, 25))),
                Relation.LE,
            )
        )
    for _ in range(rows):
        terms = {
            name: Fraction(rng.randint(-magnitude, magnitude))
            for name in rng.sample(names, min(variables, rng.randint(2, 8)))
        }
        relation = Relation.EQ if rng.random() < 0.15 else Relation.LE
        constraints.append(
            Constraint(LinExpr(terms, Fraction(-rng.randint(0, 40))), relation)
        )
    objective = LinExpr(
        {
            name: Fraction(rng.randint(-4, 4))
            for name in rng.sample(names, min(variables, 10))
        }
    )
    return objective, constraints


def _outcome_tuple(result):
    return (
        result.status,
        result.objective,
        result.assignment,
        result.ray,
        result.pivots,
    )


@needs_numpy
class TestStackedTableauUnit:
    def _tableau(self, rows, width):
        from repro.linalg.stacked import StackedTableau

        stacked = StackedTableau(width)
        for row in rows:
            stacked.append_row(pack_row(row, width))
        return stacked

    def test_append_column_value_roundtrip(self):
        rows = [
            SparseRow.from_pairs([(-1, 7), (0, 2), (2, -3)]),
            SparseRow.from_pairs([(1, 5)]),
        ]
        stacked = self._tableau(rows, 4)
        assert stacked.num_rows == 2
        assert stacked.column(0) == [2, 0]
        assert stacked.column(-1) == [7, 0]
        assert stacked.value_at(0, 2) == Fraction(-3)
        assert sorted(stacked.row_entries(1)) == [(1, 5)]

    def test_row_view_shares_values_with_matrix(self):
        rows = [SparseRow.from_pairs([(0, 4), (1, -6)])]
        stacked = self._tableau(rows, 3)
        view = stacked.row_view(0)
        assert view.numerator_at(0) == 4
        assert view.numerator_at(1) == -6
        assert view.denominator == 1

    def test_pivot_matches_sparse_elimination(self):
        rows = [
            SparseRow.from_pairs([(-1, 10), (0, 2), (1, 1)]),
            SparseRow.from_pairs([(-1, 8), (0, 1), (1, 3)]),
        ]
        stacked = self._tableau(rows, 3)
        column = stacked.column(0)
        stacked.pivot(0, 0, column)
        # Exact reference: eliminate row 1 against the normalised pivot.
        pivot = rows[0].pivot_normalized(0)
        expected = rows[1].eliminate(0, pivot)
        got = stacked.to_sparse(1)
        assert got == expected
        # The pivot row's *values* survive (possibly rescaled).
        assert stacked.value_at(0, 0) == Fraction(1)

    def test_wide_sparse_row_lands_in_exact_table(self):
        from repro.linalg.stacked import StackedTableau

        stacked = StackedTableau(3)
        huge = SparseRow.from_pairs([(0, 2**64)])
        stacked.append_row(huge)
        assert stacked.is_exact(0)
        assert stacked.column(0) == [2**64]

    def test_ensure_width_preserves_rows(self):
        rows = [SparseRow.from_pairs([(0, 3), (1, 4)])]
        stacked = self._tableau(rows, 3)
        stacked.ensure_width(50)
        assert stacked.value_at(0, 1) == Fraction(4)
        assert stacked.column(40) == [0]


@needs_numpy
class TestStackedSolveIdentity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("variables,rows", [(4, 5), (12, 10), (30, 18)])
    def test_bit_identical_across_widths(self, seed, variables, rows):
        objective, constraints = _random_lp(seed, variables, rows)
        for sense in (Sense.MAXIMIZE, Sense.MINIMIZE):
            stacked = solve_lp(objective, constraints, sense, kernel="packed")
            exact = solve_lp(objective, constraints, sense, kernel="exact")
            assert _outcome_tuple(stacked) == _outcome_tuple(exact)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_hypothesis(self, seed):
        rng = random.Random(seed)
        objective, constraints = _random_lp(
            seed, rng.randint(2, 16), rng.randint(2, 12)
        )
        stacked = solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="packed")
        exact = solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="exact")
        assert _outcome_tuple(stacked) == _outcome_tuple(exact)

    @pytest.mark.parametrize("seed", range(4))
    def test_forced_overflow_stays_identical(self, seed):
        """Large coefficients overflow int64 mid-solve; verdicts must hold."""
        objective, constraints = _random_lp(
            seed, 14, 14, magnitude=10**9
        )
        before = overflow_fallbacks()
        stacked = solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="packed")
        engaged = overflow_fallbacks() - before
        exact = solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="exact")
        assert _outcome_tuple(stacked) == _outcome_tuple(exact)
        assert engaged > 0, "instance never exercised the fallback path"

    def test_degenerate_and_edge_verdicts(self):
        infeasible = [x <= 1, x >= 2]
        unbounded = [x >= 0]
        for kernel in ("packed", "exact"):
            assert (
                solve_lp(x, infeasible, Sense.MAXIMIZE, kernel=kernel).status
                is LpStatus.INFEASIBLE
            )
            assert (
                solve_lp(x, unbounded, Sense.MAXIMIZE, kernel=kernel).status
                is LpStatus.UNBOUNDED
            )


@needs_numpy
class TestStackedWarmIdentity:
    @pytest.mark.parametrize("seed", range(3))
    def test_warm_counters_and_verdicts_agree(self, seed):
        objective, constraints = _random_lp(seed, 18, 8)
        split = len(constraints) - 8
        states = {
            kernel: SimplexState(Sense.MAXIMIZE, kernel=kernel)
            for kernel in ("packed", "exact")
        }
        for state in states.values():
            state.add_constraints(constraints[:split])
            state.set_objective(objective)
        results = {k: s.solve() for k, s in states.items()}
        assert _outcome_tuple(results["packed"]) == _outcome_tuple(
            results["exact"]
        )
        for extra in constraints[split:]:
            for state in states.values():
                state.add_constraint(extra)
            results = {k: s.solve() for k, s in states.items()}
            assert _outcome_tuple(results["packed"]) == _outcome_tuple(
                results["exact"]
            )
        for counter in (
            "cold_solves",
            "warm_solves",
            "total_pivots",
            "dual_repair_passes",
            "incremental_repricings",
        ):
            assert getattr(states["packed"], counter) == getattr(
                states["exact"], counter
            ), counter


@needs_numpy
class TestRawMergeFallback:
    """The overflow fallback must read *raw* numerators of scaled rows.

    Regression: a live stacked row is ``scale * canonical``; its
    ``to_sparse`` view divides the shared gcd back out.  A ``_merge``
    caller computes ``sa``/``sb``/``den`` against the raw numerators, so
    a fallback that renormalises an operand silently rescales one term
    of the combination — this corrupted the simplex cost row whenever a
    cost merge against a scaled pivot row overflowed int64.
    """

    def _scaled_packed(self, pairs, scale, width):
        raw = SparseRow.from_pairs(pairs)
        packed = pack_row(
            SparseRow.from_pairs(
                [(i, n * scale) for i, n in zip(raw.indices, raw.numerators)]
            ),
            width,
        )
        # from_pairs normalises, so force the scaled representation.
        import numpy as np

        row = object.__new__(packed_module.PackedRow)
        dense = np.zeros(width, dtype=np.int64)
        for i, n in zip(raw.indices, raw.numerators):
            dense[i + 1] = n * scale
        row._dense = dense
        row.denominator = raw.denominator * scale
        row._max_abs = int(abs(dense).max())
        row._sparse = None
        return row, raw

    def test_fallback_merge_value_exact_on_scaled_operands(self):
        scale = 362897878
        cost = pack_row(
            SparseRow.from_pairs([(-1, 11), (0, -751821541), (1, 5)]), 4
        )
        pivot, canonical = self._scaled_packed(
            [(-1, 3), (0, 1), (2, -2)], scale, 4
        )
        s_c = cost.numerator_at(0)
        p_c = pivot.numerator_at(0)
        # Force the int64 guard: huge sa pushes the bound over the limit.
        sa = p_c * 10**12
        sb = -s_c * 10**12
        den = cost.denominator * sa
        before = overflow_fallbacks()
        merged = cost._merge(pivot, sa, sb, den)
        assert overflow_fallbacks() > before
        for index in (-1, 0, 1, 2):
            expected = Fraction(
                sa * cost.numerator_at(index) + sb * pivot.numerator_at(index),
                den,
            )
            assert (
                Fraction(merged.numerator_at(index), merged.denominator)
                == expected
            )
        # The entry being eliminated really cancels.
        assert merged.numerator_at(0) * s_c <= 0 or s_c == 0

    def test_mixed_operand_fallback_keeps_raw_numerators(self):
        scaled, canonical = self._scaled_packed([(-1, 4), (1, 6)], 1000, 4)
        other = SparseRow.from_pairs([(0, 2), (1, -3)])
        sa, sb, den = 7, -5, 21
        merged = scaled._merge(other, sa, sb, den)
        for index in (-1, 0, 1):
            expected = Fraction(
                sa * scaled.numerator_at(index) + sb * other.numerator_at(index),
                den,
            )
            assert (
                Fraction(merged.numerator_at(index), merged.denominator)
                == expected
            )


@needs_numpy
class TestKernelCounters:
    def test_stacked_and_row_pivots_attributed(self):
        objective, constraints = _random_lp(0, 10, 6)
        snapshot = kernel_counters_snapshot()
        solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="packed")
        delta = kernel_counters_since(snapshot)
        assert delta["stacked_pivots"] > 0
        assert delta["row_pivots"] == 0
        assert delta["resolved_packed"] == 1

        snapshot = kernel_counters_snapshot()
        solve_lp(objective, constraints, Sense.MAXIMIZE, kernel="exact")
        delta = kernel_counters_since(snapshot)
        assert delta["row_pivots"] > 0
        assert delta["stacked_pivots"] == 0
        assert delta["resolved_exact"] == 1


class TestNoNumpyLane:
    def test_stacked_refuses_cleanly_without_numpy(self):
        import subprocess
        import sys

        code = (
            "from repro.linalg.stacked import StackedTableau\n"
            "from repro.linalg.packed import resolve_kernel\n"
            "assert resolve_kernel('auto', 10_000) == 'exact'\n"
            "try:\n"
            "    StackedTableau(8)\n"
            "except RuntimeError as error:\n"
            "    assert 'numpy' in str(error)\n"
            "else:\n"
            "    raise AssertionError('StackedTableau built without numpy')\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        src = os.path.join(
            os.path.dirname(packed_module.__file__), "..", ".."
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        completed = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr
