"""Tests for control-point splitting, cone helpers and invariant restriction."""

import pytest

from repro.core.cones import (
    in_constraint_cone,
    in_orthogonal_cone,
    is_quasi_ranking_direction,
    pi_set,
)
from repro.core.relevance import restrict_to_guarded_states
from repro.core.splitting import split_location
from repro.core import prove_termination
from repro.invariants.analyzer import compute_invariants
from repro.linalg.vector import Vector
from repro.linexpr.expr import var
from repro.program.builder import AutomatonBuilder
from repro.program.cutset import compute_cutset

x, d, n = var("x"), var("d"), var("n")


class TestCones:
    def test_constraint_cone_membership(self):
        generators = [Vector([1, 0]), Vector([0, 1])]
        assert in_constraint_cone(Vector([2, 3]), generators)
        assert not in_constraint_cone(Vector([-1, 0]), generators)
        assert in_constraint_cone(Vector([0, 0]), [])

    def test_orthogonal_cone(self):
        generators = [Vector([1, 0]), Vector([1, 1])]
        assert in_orthogonal_cone(Vector([1, 0]), generators)
        assert not in_orthogonal_cone(Vector([-1, 0]), generators)

    def test_pi_set(self):
        generators = [Vector([1, 0]), Vector([0, 1]), Vector([-1, 0])]
        assert pi_set(Vector([1, 0]), generators) == [0]

    def test_quasi_ranking_direction(self):
        invariant_normals = [Vector([0, 1])]          # y ≥ 0
        differences = [Vector([0, 1])]                # y decreases by 1
        assert is_quasi_ranking_direction(Vector([0, 2]), invariant_normals, differences)
        assert not is_quasi_ranking_direction(Vector([1, 0]), invariant_normals, differences)


class TestSplitting:
    def phases_automaton(self):
        builder = AutomatonBuilder(
            ["x", "d", "n"],
            initial="start",
            initial_condition=[n > 0, n <= 100],
        )
        builder.transition("start", "k", updates={"d": 1, "x": 0})
        builder.transition(
            "k", "k", guard=[x >= 0, x <= n, x < n], updates={"x": x + d}, name="go"
        )
        builder.transition(
            "k", "k", guard=[x.eq(n)], updates={"x": x + d, "d": -1}, name="turn"
        )
        return builder.build()

    def test_split_creates_copies(self):
        automaton = self.phases_automaton()
        split = split_location(automaton, "k", [[d.eq(1)], [d.eq(-1)]])
        assert "k#case0" in split.locations
        assert "k#case1" in split.locations
        assert "k" not in split.locations

    def test_split_preserves_variables(self):
        automaton = self.phases_automaton()
        split = split_location(automaton, "k", [[d.eq(1)], [d.eq(-1)]])
        assert split.variables == automaton.variables

    def test_split_validates_input(self):
        automaton = self.phases_automaton()
        with pytest.raises(ValueError):
            split_location(automaton, "missing", [[d.eq(1)]])
        with pytest.raises(ValueError):
            split_location(automaton, "k", [])

    def test_phases_example_provable_after_split(self):
        """The §8 phases loop needs the disjunctive-invariant split."""
        automaton = self.phases_automaton()
        split = split_location(automaton, "k", [[d.eq(1)], [d.eq(-1)]])
        result = prove_termination(split)
        assert result.proved


class TestRelevance:
    def test_guard_restricts_universe_invariant(self):
        builder = AutomatonBuilder(["x"], initial="k")
        builder.transition("k", "k", guard=[x > 0], updates={"x": x - 1})
        automaton = builder.build()
        cutset = compute_cutset(automaton)
        invariants = compute_invariants(automaton)
        restricted = restrict_to_guarded_states(automaton, cutset, invariants)
        assert restricted.get(cutset[0]).entails_constraint(x >= 1)

    def test_exit_only_edges_ignored(self):
        builder = AutomatonBuilder(["x"], initial="k")
        builder.transition("k", "k", guard=[x > 0], updates={"x": x - 1})
        builder.transition("k", "done", guard=[x <= 0])
        automaton = builder.build()
        cutset = compute_cutset(automaton)
        invariants = compute_invariants(automaton)
        restricted = restrict_to_guarded_states(automaton, cutset, invariants)
        # The edge to "done" never reaches the cut-set again, so it must not
        # weaken the restriction.
        assert restricted.get(cutset[0]).entails_constraint(x >= 1)
