"""Tests for ranking-function objects and certificate checking."""

from fractions import Fraction


from repro.core.certificate import check_certificate
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
    lexicographic_decreases,
)
from repro.core.termination import TerminationProver
from repro.linalg.vector import Vector


class TestRankingObjects:
    def make(self):
        return AffineRankingFunction(
            ("x", "y"),
            {"k": Vector([1, -2])},
            {"k": Fraction(3)},
        )

    def test_expression(self):
        expr = self.make().expression("k")
        assert expr.coefficient("x") == 1
        assert expr.coefficient("y") == -2
        assert expr.constant_term == 3

    def test_evaluate(self):
        assert self.make().evaluate("k", {"x": 2, "y": 1}) == 3

    def test_stacked_vector_includes_offset(self):
        assert self.make().stacked_vector(["k"]) == Vector([1, -2, 3])

    def test_is_trivial(self):
        trivial = AffineRankingFunction(("x",), {"k": Vector([0])}, {"k": Fraction(0)})
        assert trivial.is_trivial()
        assert not self.make().is_trivial()

    def test_lexicographic_evaluate(self):
        lex = LexicographicRankingFunction([self.make(), self.make()])
        assert lex.dimension == 2
        assert lex.evaluate("k", {"x": 0, "y": 0}) == (3, 3)

    def test_pretty_strings(self):
        assert "ρ(k" in self.make().pretty()
        assert LexicographicRankingFunction([]).pretty() == "⟨⟩"

    def test_lexicographic_decreases(self):
        assert lexicographic_decreases((3, 5), (3, 4))
        assert lexicographic_decreases((3, 5), (2, 9))
        assert not lexicographic_decreases((3, 5), (3, 5))
        assert not lexicographic_decreases((3, 5), (4, 0))


class TestCertificate:
    def test_valid_certificate_accepted(self, example1_automaton):
        prover = TerminationProver(example1_automaton, check_certificates=False)
        problem = prover.build_problem()
        result = prover.prove()
        assert check_certificate(problem, result.ranking)

    def test_bogus_certificate_rejected_decrease(self, example1_automaton):
        prover = TerminationProver(example1_automaton, check_certificates=False)
        problem = prover.build_problem()
        bogus = LexicographicRankingFunction(
            [
                AffineRankingFunction(
                    problem.variables,
                    {"k0": Vector([1, 0])},   # x does not decrease on t1
                    {"k0": Fraction(100)},
                )
            ]
        )
        assert not check_certificate(problem, bogus)

    def test_bogus_certificate_rejected_nonnegative(self, example1_automaton):
        prover = TerminationProver(example1_automaton, check_certificates=False)
        problem = prover.build_problem()
        bogus = LexicographicRankingFunction(
            [
                AffineRankingFunction(
                    problem.variables,
                    {"k0": Vector([0, 1])},
                    {"k0": Fraction(-1000)},  # wildly negative offset
                )
            ]
        )
        assert not check_certificate(problem, bogus)

    def test_empty_ranking_only_for_acyclic(self, example1_automaton):
        prover = TerminationProver(example1_automaton, check_certificates=False)
        problem = prover.build_problem()
        assert not check_certificate(problem, LexicographicRankingFunction([]))
