"""Regression tests: the incremental (warm-started) ranking LP.

The contract: across the whole counterexample loop, warm-started solves
of ``LP(V, Constraints(I))`` return the exact optimum (Fraction equality)
of the from-scratch formulation, the provers' verdicts are identical in
every mode, and the warm path spends fewer simplex pivots than rebuilding
cold each iteration.  ``mode="audit"`` enforces the optimum equality
inside :class:`RankingLp` itself — every solve shadow-solves cold and
raises on any mismatch — so simply running the prover in audit mode *is*
the bit-exactness check.
"""

import pytest

from repro.benchsuite import get_suite
from repro.core.lp_instance import LP_MODES, LpStatistics, RankingLp
from repro.core.monodim import synthesize_monodim
from repro.core.multidim import synthesize_multidim
from repro.core.termination import TerminationProver


def _problem(automaton):
    return TerminationProver(automaton, check_certificates=False).build_problem()


class TestRankingLpModes:
    def test_unknown_mode_rejected(self, countdown_automaton):
        with pytest.raises(ValueError):
            RankingLp(_problem(countdown_automaton), mode="lukewarm")

    def test_modes_are_exported(self):
        assert set(LP_MODES) == {"incremental", "cold", "audit"}

    def test_incremental_solution_matches_cold(self, example1_automaton):
        """Same generators in, same optimum out, fewer pivots spent."""
        problem = _problem(example1_automaton)
        warm_stats, cold_stats = LpStatistics(), LpStatistics()
        warm = RankingLp(problem, warm_stats, mode="incremental")
        cold = RankingLp(problem, cold_stats, mode="cold")

        from repro.linalg.vector import Vector
        from fractions import Fraction

        generators = [
            Vector([Fraction(1), Fraction(-1)] + [Fraction(0)] * (problem.stacked_dimension - 2)),
            Vector([Fraction(-1), Fraction(-1)] + [Fraction(0)] * (problem.stacked_dimension - 2)),
        ]
        for generator in generators:
            warm.add_counterexample(generator)
            cold.add_counterexample(generator)
            warm_solution = warm.solve()
            cold_solution = cold.solve()
            assert sum(warm_solution.deltas) == sum(cold_solution.deltas)
            assert warm_solution.all_gamma_zero == cold_solution.all_gamma_zero
        assert warm_stats.warm_solves == 1
        assert warm_stats.cold_solves == 1
        assert cold_stats.warm_solves == 0
        assert warm_stats.pivots <= cold_stats.pivots


class TestAuditModeAcrossTheLoop:
    """audit mode raises on any warm/cold divergence — none may occur."""

    def test_monodim_loop_audits_clean(self, example1_automaton):
        problem = _problem(example1_automaton)
        result = synthesize_monodim(problem, lp_mode="audit")
        lp = result.statistics.lp
        assert lp.pivots_saved >= 0
        assert lp.warm_solves + lp.cold_solves == lp.instances

    def test_multidim_loop_audits_clean(self, lexicographic_automaton):
        problem = _problem(lexicographic_automaton)
        shared = LpStatistics()
        result = synthesize_multidim(problem, lp_mode="audit", lp_statistics=shared)
        assert result.success
        assert shared.instances >= 1

    @pytest.mark.parametrize("suite,count", [("termcomp", 6), ("wtc", 6)])
    def test_provers_audit_clean_on_benchmarks(self, suite, count):
        warm_solves = 0
        for program in get_suite(suite)[:count]:
            result = TerminationProver(
                program.build(), check_certificates=False, lp_mode="audit"
            ).prove()
            assert result.status in ("terminating", "unknown")
            assert result.lp_statistics.pivots_saved >= 0
            warm_solves += result.lp_statistics.warm_solves
        # The slice contains programs whose loops iterate, so warm
        # restarts must actually have happened (and audited clean).
        assert warm_solves >= 1


class TestVerdictsAndSavings:
    def test_identical_verdicts_and_fewer_pivots_on_benchmarks(self):
        """The acceptance criterion, in miniature: same verdicts, fewer
        total pivots, on a representative slice of two suites."""
        total_warm = total_cold = 0
        for suite in ("termcomp", "wtc"):
            for program in get_suite(suite)[:6]:
                warm = TerminationProver(
                    program.build(), check_certificates=True, lp_mode="incremental"
                ).prove()
                cold = TerminationProver(
                    program.build(), check_certificates=True, lp_mode="cold"
                ).prove()
                assert warm.proved == cold.proved, program.name
                total_warm += warm.lp_statistics.pivots
                total_cold += cold.lp_statistics.pivots
        assert total_warm < total_cold

    def test_monodim_statistics_carry_lp_counters(self, countdown_automaton):
        problem = _problem(countdown_automaton)
        result = synthesize_monodim(problem)
        lp = result.statistics.lp
        assert lp.instances >= 1
        assert lp.cold_solves >= 1
        assert lp.pivots == lp.pivots  # present and an int
        assert isinstance(lp.pivots, int)

    def test_shared_statistics_accumulate_across_dimensions(
        self, lexicographic_automaton
    ):
        problem = _problem(lexicographic_automaton)
        shared = LpStatistics()
        result = synthesize_multidim(problem, lp_statistics=shared)
        assert result.success
        per_component = LpStatistics()
        for component in result.components:
            per_component.merge(component.statistics.lp)
        assert shared.instances == per_component.instances
        assert shared.pivots == per_component.pivots
        assert shared.warm_solves == per_component.warm_solves


class TestStatisticsSurviveIterationBudget:
    def test_lp_statistics_merged_when_budget_blows(self, example3_automaton):
        """Hitting max_iterations must not lose the LP work already done."""
        result = TerminationProver(
            example3_automaton, check_certificates=False, max_iterations=1
        ).prove()
        assert result.status == "unknown"
        assert result.lp_statistics.instances >= 1
        assert result.lp_statistics.cold_solves >= 1


class TestStatisticsMergeAndSerialisation:
    def test_merge_includes_solver_counters(self):
        a, b = LpStatistics(), LpStatistics()
        a.record_solve(5, warm=False)
        b.record_solve(2, warm=True)
        b.pivots_saved = 3
        a.merge(b)
        assert a.pivots == 7
        assert a.warm_solves == 1
        assert a.cold_solves == 1
        assert a.pivots_saved == 3


class TestRepeatSolveAccounting:
    def test_cached_resolve_not_double_counted(self, example1_automaton):
        """A repeat solve with no new counterexample reuses the cached
        optimum and must not inflate the pivot/solve counters."""
        from fractions import Fraction

        from repro.linalg.vector import Vector

        problem = _problem(example1_automaton)
        statistics = LpStatistics()
        lp = RankingLp(problem, statistics, mode="incremental")
        lp.add_counterexample(
            Vector(
                [Fraction(1), Fraction(-1)]
                + [Fraction(0)] * (problem.stacked_dimension - 2)
            )
        )
        first = lp.solve()
        pivots = statistics.pivots
        solves = statistics.warm_solves + statistics.cold_solves
        instances = statistics.instances
        second = lp.solve()
        assert second.gammas == first.gammas and second.deltas == first.deltas
        assert statistics.pivots == pivots
        assert statistics.warm_solves + statistics.cold_solves == solves
        assert statistics.instances == instances

    def test_audit_mode_repeat_solve_does_not_inflate_savings(
        self, example1_automaton
    ):
        from fractions import Fraction

        from repro.linalg.vector import Vector

        problem = _problem(example1_automaton)
        statistics = LpStatistics()
        lp = RankingLp(problem, statistics, mode="audit")
        lp.add_counterexample(
            Vector(
                [Fraction(1), Fraction(-1)]
                + [Fraction(0)] * (problem.stacked_dimension - 2)
            )
        )
        lp.solve()
        saved = statistics.pivots_saved
        instances = statistics.instances
        lp.solve()  # cached: no shadow cold solve, no extra instance
        assert statistics.pivots_saved == saved
        assert statistics.instances == instances
