"""End-to-end reproduction of the paper's worked examples."""


from repro.core import TerminationProver, check_certificate, prove_termination


class TestExample1:
    def test_terminates_with_dimension_one(self, example1_automaton):
        result = prove_termination(example1_automaton)
        assert result.proved
        assert result.dimension == 1
        assert result.certificate_checked

    def test_ranking_depends_on_y(self, example1_automaton):
        result = prove_termination(example1_automaton)
        component = result.ranking.components[0]
        expression = component.expression("k0")
        # The paper derives ρ(x, y) = y + 1; any valid witness must give y a
        # positive coefficient and x a non-positive influence.
        assert expression.coefficient("y") > 0

    def test_lp_instances_stay_tiny(self, example1_automaton):
        result = prove_termination(example1_automaton)
        assert result.lp_statistics.max_rows <= 5

    def test_explicit_paper_invariant(self, example1_automaton):
        from repro.invariants.invariant_map import InvariantMap
        from repro.linexpr.expr import var

        x, y = var("x"), var("y")
        invariants = InvariantMap.from_constraints(
            ["x", "y"],
            {
                "k0": [x + 1 >= 0, x <= 11, y + 1 >= 0, y <= x + 5, x + y <= 15],
                "start": [x.eq(5), y.eq(10)],
            },
        )
        result = TerminationProver(
            example1_automaton, invariants=invariants
        ).prove()
        assert result.proved
        assert result.certificate_checked


class TestExample3:
    def test_algorithm_terminates_even_without_proof(self, example3_automaton):
        """The naive loop would diverge; the corrected one must halt."""
        prover = TerminationProver(example3_automaton, max_iterations=60)
        result = prover.prove()
        assert result.status in ("terminating", "unknown")

    def test_no_false_positives_from_rays(self, example3_automaton):
        result = prove_termination(example3_automaton)
        if result.proved:
            problem = TerminationProver(example3_automaton).build_problem()
            assert check_certificate(problem, result.ranking)


class TestExample4:
    def test_nested_loop_proved(self, example4_automaton):
        result = prove_termination(example4_automaton)
        assert result.proved
        assert result.certificate_checked

    def test_multi_control_point_ranking(self, example4_automaton):
        result = prove_termination(example4_automaton)
        component = result.ranking.components[0]
        assert set(component.coefficients) == {"1", "2"}


class TestClassics:
    def test_countdown(self, countdown_automaton):
        result = prove_termination(countdown_automaton)
        assert result.proved and result.dimension == 1

    def test_stutter_is_not_proved(self, stutter_automaton):
        result = prove_termination(stutter_automaton)
        assert not result.proved

    def test_lexicographic_family(self, lexicographic_automaton):
        result = prove_termination(lexicographic_automaton)
        assert result.proved
        assert result.certificate_checked

    def test_random_walk_not_proved(self):
        from repro.linexpr.expr import var
        from repro.program.builder import AutomatonBuilder

        x = var("x")
        builder = AutomatonBuilder(["x"], initial="k")
        builder.transition("k", "k", guard=[x > 0], updates={"x": None})
        result = prove_termination(builder.build())
        assert not result.proved
