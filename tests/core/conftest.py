"""Shared fixtures: the paper's example automata and a few classics."""

import pytest

from repro.linexpr.expr import var
from repro.program.builder import AutomatonBuilder

x, y, i, j, N = var("x"), var("y"), var("i"), var("j"), var("N")


@pytest.fixture
def example1_automaton():
    """Example 1 / Figure 1 of the paper (two guarded self-loop transitions)."""
    builder = AutomatonBuilder(
        ["x", "y"], initial="start", initial_condition=[x.eq(5), y.eq(10)]
    )
    builder.transition("start", "k0", name="init")
    builder.transition(
        "k0", "k0", guard=[x <= 10, y >= 0], updates={"x": x + 1, "y": y - 1}, name="t1"
    )
    builder.transition(
        "k0", "k0", guard=[x >= 0, y >= 0], updates={"x": x - 1, "y": y - 1}, name="t2"
    )
    return builder.build()


@pytest.fixture
def example3_automaton():
    """Example 3 of the paper (unbounded reset — exercises ray handling)."""
    builder = AutomatonBuilder(["i", "j", "N"], initial="k0")
    builder.transition(
        "k0", "k0", guard=[i > 0, j > 1], updates={"j": j - 1}, name="t1"
    )
    builder.transition(
        "k0", "k0", guard=[i > 0, j <= 0], updates={"i": i - 1, "j": N}, name="t2"
    )
    return builder.build()


@pytest.fixture
def example4_automaton():
    """Example 4 of the paper (nested loops, two cut points)."""
    builder = AutomatonBuilder(["i", "j"], initial="start")
    builder.transition("start", "1", updates={"i": 0})
    builder.transition("1", "2", guard=[i < 5], updates={"j": 0}, name="t2")
    builder.transition("2", "2", guard=[i >= 3, j <= 9], updates={"j": j + 1}, name="t3")
    builder.transition("2", "1", guard=[i <= 2], updates={"i": i + 1}, name="t4a")
    builder.transition("2", "1", guard=[j > 9], updates={"i": i + 1}, name="t4b")
    return builder.build()


@pytest.fixture
def countdown_automaton():
    builder = AutomatonBuilder(["x"], initial="k")
    builder.transition("k", "k", guard=[x > 0], updates={"x": x - 1}, name="dec")
    return builder.build()


@pytest.fixture
def stutter_automaton():
    """``while (x > 0) skip`` — non-terminating."""
    builder = AutomatonBuilder(["x"], initial="k")
    builder.transition("k", "k", guard=[x > 0], updates={}, name="stutter")
    return builder.build()


@pytest.fixture
def lexicographic_automaton():
    """Needs a 2-component (or cleverly combined) ranking function."""
    builder = AutomatonBuilder(
        ["x", "y"], initial="k", initial_condition=[x >= 0, y >= 0, y <= 10]
    )
    builder.transition("k", "k", guard=[x > 0], updates={"x": x - 1, "y": 10}, name="outer")
    builder.transition("k", "k", guard=[y > 0], updates={"y": y - 1}, name="inner")
    return builder.build()
