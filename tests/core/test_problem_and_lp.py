"""Tests for the problem encoding and the LP of Definition 11."""

from fractions import Fraction

import pytest

from repro.core.lp_instance import LpStatistics, RankingLp
from repro.core.problem import ONE_COORDINATE, TerminationProblem
from repro.core.termination import TerminationProver
from repro.linalg.vector import Vector


@pytest.fixture
def example1_problem(example1_automaton):
    return TerminationProver(example1_automaton).build_problem()


class TestProblemEncoding:
    def test_space_includes_one_coordinate(self, example1_problem):
        assert ONE_COORDINATE in example1_problem.space_variables
        assert example1_problem.stacked_dimension == len(
            example1_problem.cutset
        ) * (example1_problem.num_variables + 1)

    def test_difference_variables_order(self, example1_problem):
        names = example1_problem.difference_variables()
        assert len(names) == example1_problem.stacked_dimension
        assert names[0].startswith("u[")

    def test_invariant_rows_are_homogeneous(self, example1_problem):
        for row in example1_problem.invariant_rows():
            # Every row is a·x + b·@one with no free constant term.
            assert row.normal.constant_term == 0

    def test_one_row_present_per_cutpoint(self, example1_problem):
        one_rows = [
            row
            for row in example1_problem.invariant_rows()
            if row.normal.variables() == frozenset({ONE_COORDINATE})
        ]
        assert len(one_rows) >= len(example1_problem.cutset)

    def test_transition_formula_satisfiable(self, example1_problem):
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        solver.assert_formula(example1_problem.transition_formula())
        assert solver.check().is_sat

    def test_objective_uses_offsets(self, example1_problem):
        ranking = example1_problem.zero_ranking()
        ranking.offsets[example1_problem.cutset[0]] = Fraction(3)
        objective = example1_problem.objective(ranking)
        one_names = [
            example1_problem.difference_variable(location, ONE_COORDINATE)
            for location in example1_problem.cutset
        ]
        assert any(objective.coefficient(name) == 3 for name in one_names)

    def test_statistics(self, example1_problem):
        stats = example1_problem.statistics()
        assert stats["cut_points"] == 1
        assert stats["blocks"] == 1
        assert stats["paths_summarised"] == 2

    def test_reserved_variable_name_rejected(self, example1_automaton):
        from repro.invariants.invariant_map import InvariantMap

        with pytest.raises(ValueError):
            TerminationProblem(
                [ONE_COORDINATE],
                ["k0"],
                InvariantMap.universal([ONE_COORDINATE], ["k0"]),
                [],
            )

    def test_empty_cutset_rejected(self, example1_automaton):
        from repro.invariants.invariant_map import InvariantMap

        with pytest.raises(ValueError):
            TerminationProblem(
                ["x"], [], InvariantMap.universal(["x"], []), []
            )


class TestRankingLp:
    def test_always_feasible(self, example1_problem):
        lp = RankingLp(example1_problem)
        lp.add_counterexample(Vector([1] * example1_problem.stacked_dimension))
        solution = lp.solve()
        assert solution.deltas[0] in (0, 1)

    def test_decreasing_counterexample_gets_delta_one(self, example1_problem):
        # u with y-component 1 corresponds to a step where y decreases by 1;
        # the invariant provides y + 1 ≥ 0, so δ must reach 1.
        names = example1_problem.difference_variables()
        u = Vector(
            [1 if name == "u[k0][y]" else 0 for name in names]
        )
        lp = RankingLp(example1_problem)
        lp.add_counterexample(u)
        solution = lp.solve()
        assert solution.deltas[0] == 1
        component = solution.ranking
        assert component.coefficients["k0"][
            example1_problem.variables.index("y")
        ] > 0

    def test_dimension_mismatch_rejected(self, example1_problem):
        lp = RankingLp(example1_problem)
        with pytest.raises(ValueError):
            lp.add_counterexample(Vector([1, 2]))

    def test_statistics_recorded(self, example1_problem):
        statistics = LpStatistics()
        lp = RankingLp(example1_problem, statistics)
        lp.add_counterexample(Vector([0] * example1_problem.stacked_dimension))
        lp.solve()
        assert statistics.instances == 1
        assert statistics.max_rows == 1

    def test_statistics_merge(self):
        a, b = LpStatistics(), LpStatistics()
        a.record(2, 3)
        b.record(4, 1)
        a.merge(b)
        assert a.instances == 2
        assert a.max_rows == 4
        assert a.average_cols == 2.0
