"""End-to-end tests going through the mini-language front-end."""


from repro import compile_program, prove_termination
from repro.core import TerminationProver


class TestFrontendPrograms:
    def test_simple_countdown(self):
        result = prove_termination(
            compile_program("var x; while (x > 0) { x = x - 1; }")
        )
        assert result.proved and result.certificate_checked

    def test_multipath_listing1(self):
        source = """
        var x, c;
        assume(x >= 0);
        while (x >= 0) {
            c = nondet();
            if (c >= 1) { x = x - 1; }
            if (c <= 0) { x = x - 1; }
        }
        """
        result = prove_termination(compile_program(source, "listing1"))
        assert result.proved
        assert result.certificate_checked

    def test_parametric_decrement(self):
        source = """
        var x, y;
        assume(y >= 1);
        while (x > 0) { x = x - y; }
        """
        result = prove_termination(compile_program(source))
        assert result.proved

    def test_non_terminating_not_proved(self):
        source = """
        var x;
        assume(x >= 1);
        while (x > 0) { x = x + 1; }
        """
        result = prove_termination(compile_program(source))
        assert not result.proved

    def test_acyclic_program_trivially_terminating(self):
        result = prove_termination(
            compile_program("var x; x = 1; if (x > 0) { x = 2; }")
        )
        assert result.proved
        assert result.dimension == 0

    def test_statistics_available(self):
        result = prove_termination(
            compile_program("var x; while (x > 0) { x = x - 1; }")
        )
        assert result.iterations >= 1
        assert result.lp_statistics.instances >= 1
        assert result.time_seconds > 0

    def test_prover_reuses_given_cutset(self):
        automaton = compile_program("var x; while (x > 0) { x = x - 1; }")
        from repro.program.cutset import compute_cutset

        cutset = compute_cutset(automaton)
        result = TerminationProver(automaton, cutset=cutset).prove()
        assert result.proved

    def test_attribute_mutation_honoured_at_prove_time(self):
        # Historical contract: the prover's public attributes may be
        # mutated after construction and are read when prove() runs.
        automaton = compile_program("var x; while (x > 0) { x = x - 1; }")
        prover = TerminationProver(automaton)
        prover.check_certificates = False
        prover.lp_mode = "cold"
        result = prover.prove()
        assert result.proved
        assert not result.certificate_checked
        assert result.lp_statistics.warm_solves == 0

    def test_rebinding_automaton_honoured_at_prove_time(self):
        # Rebinding the automaton must invalidate the cached pipeline:
        # proving a diverging program after a terminating one must not
        # reuse the stale problem (that would be a soundness bug).
        terminating = compile_program("var x; while (x > 0) { x = x - 1; }")
        diverging = compile_program(
            "var x; assume(x >= 1); while (x > 0) { x = x + 1; }"
        )
        prover = TerminationProver(terminating)
        assert prover.prove().proved
        prover.automaton = diverging
        assert not prover.prove().proved
