"""Tests for Algorithms 1–3 at the API level (below the prover driver)."""


import pytest

from repro.core.monodim import synthesize_monodim
from repro.core.multidim import synthesize_multidim
from repro.synthesis.oracles import avoid_space
from repro.core.termination import TerminationProver
from repro.linalg.vector import Vector
from repro.smt.solver import SmtSolver


def build_problem(automaton):
    return TerminationProver(automaton).build_problem()


class TestMonodim:
    def test_example1_strict_component(self, example1_automaton):
        problem = build_problem(example1_automaton)
        result = synthesize_monodim(problem)
        assert result.strict
        assert not result.is_trivial
        assert result.statistics.counterexamples >= 1

    def test_stutter_gives_non_strict(self, stutter_automaton):
        problem = build_problem(stutter_automaton)
        result = synthesize_monodim(problem)
        assert not result.strict

    def test_lexicographic_needs_more_than_one_dimension(
        self, lexicographic_automaton
    ):
        problem = build_problem(lexicographic_automaton)
        result = synthesize_monodim(problem)
        # A single component cannot strictly decrease both transitions unless
        # it cleverly combines them; either way it must be a quasi component.
        assert result.ranking is not None

    def test_iteration_budget_enforced(self, example1_automaton):
        problem = build_problem(example1_automaton)
        from repro.core.monodim import MaxIterationsExceeded

        with pytest.raises(MaxIterationsExceeded):
            synthesize_monodim(problem, max_iterations=0)


class TestAvoidSpace:
    def test_empty_basis_excludes_zero(self, example1_automaton):
        problem = build_problem(example1_automaton)
        formula = avoid_space(problem, [])
        solver = SmtSolver()
        solver.assert_formula(formula)
        for name in problem.difference_variables():
            solver.assert_formula(
                __import__("repro.linexpr.expr", fromlist=["var"]).var(name).eq(0)
            )
        assert solver.check().is_unsat

    def test_basis_direction_excluded(self, example1_automaton):
        problem = build_problem(example1_automaton)
        names = problem.difference_variables()
        basis = [Vector([1 if i == 0 else 0 for i in range(len(names))])]
        formula = avoid_space(problem, basis)
        solver = SmtSolver()
        solver.assert_formula(formula)
        from repro.linexpr.expr import var

        # Force u to be exactly the basis vector: must be unsatisfiable.
        for index, name in enumerate(names):
            solver.assert_formula(var(name).eq(1 if index == 0 else 0))
        assert solver.check().is_unsat

    def test_off_basis_direction_allowed(self, example1_automaton):
        problem = build_problem(example1_automaton)
        names = problem.difference_variables()
        basis = [Vector([1 if i == 0 else 0 for i in range(len(names))])]
        formula = avoid_space(problem, basis)
        solver = SmtSolver()
        solver.assert_formula(formula)
        from repro.linexpr.expr import var

        for index, name in enumerate(names):
            solver.assert_formula(var(name).eq(1 if index == 1 else 0))
        assert solver.check().is_sat


class TestMultidim:
    def test_example1_dimension_one(self, example1_automaton):
        problem = build_problem(example1_automaton)
        outcome = synthesize_multidim(problem)
        assert outcome.success
        assert outcome.dimension == 1

    def test_lexicographic_success(self, lexicographic_automaton):
        problem = build_problem(lexicographic_automaton)
        outcome = synthesize_multidim(problem)
        assert outcome.success
        assert 1 <= outcome.dimension <= 2

    def test_failure_reported(self, stutter_automaton):
        problem = build_problem(stutter_automaton)
        outcome = synthesize_multidim(problem)
        assert not outcome.success
        assert outcome.ranking is None

    def test_max_dimension_cap(self, lexicographic_automaton):
        problem = build_problem(lexicographic_automaton)
        outcome = synthesize_multidim(problem, max_dimension=1)
        # With the cap at 1 the synthesis either finds a 1-D witness or fails.
        assert outcome.dimension <= 1
