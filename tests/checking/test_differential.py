"""The cross-prover differential harness catches planted unsoundness."""

import pytest

from repro.api import AnalysisConfig
from repro.api.registry import (
    Prover,
    _REGISTRY,
    register_prover,
)
from repro.api.result import AnalysisResult, AnalysisStatus
from repro.checking.differential import (
    audit_generated_program,
    audit_source,
    default_fuzz_config,
    fuzz,
    run_differential,
)
from repro.checking.generator import ProgramGenerator


class BogusProver(Prover):
    """Deliberately unsound: proves everything with a junk certificate."""

    name = "bogus_test_prover"
    summary = "test stub: claims TERMINATING with the zero ranking"

    def prove(self, problem, config):
        ranking_source = problem.zero_ranking()
        from repro.core.ranking import LexicographicRankingFunction

        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.TERMINATING,
            ranking=LexicographicRankingFunction([ranking_source]),
            dimension=1,
        )


class BogusNontermProver(Prover):
    """Deliberately unsound the other way: disproves everything, no lasso."""

    name = "bogus_nonterm_test_prover"
    summary = "test stub: claims NONTERMINATING without a witness"

    def prove(self, problem, config):
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.NONTERMINATING,
        )


@pytest.fixture
def bogus_prover():
    register_prover(BogusProver())
    try:
        yield BogusProver.name
    finally:
        _REGISTRY.pop(BogusProver.name, None)


@pytest.fixture
def bogus_nonterm_prover():
    register_prover(BogusNontermProver())
    try:
        yield BogusNontermProver.name
    finally:
        _REGISTRY.pop(BogusNontermProver.name, None)


class TestAuditSource:
    def test_sound_tools_pass_clean(self):
        audit = audit_source(
            "var x; while (x > 0) { x = x - 1; }",
            tools=["termite", "heuristic"],
        )
        assert audit.build_error is None
        assert not audit.violations
        assert audit.verdicts["termite"].accepted

    def test_malformed_source_is_a_build_error_not_a_crash(self):
        audit = audit_source("var x; while (x > 0) {")
        assert audit.build_error is not None
        assert not audit.results

    def test_zero_ranking_is_rejected(self, bogus_prover):
        audit = audit_source(
            "var x; while (x > 0) { x = x - 1; }", tools=[bogus_prover]
        )
        kinds = {violation.kind for violation in audit.violations}
        assert "certificate_rejected" in kinds
        violation = audit.violations[0]
        assert violation.failures, "rejection must carry obligation failures"

    def test_nonterminating_ground_truth(self, bogus_prover):
        program = ProgramGenerator(0).generate(6)  # a nonterm gadget
        audit = audit_generated_program(program, tools=[bogus_prover])
        kinds = {violation.kind for violation in audit.violations}
        assert "proved_nonterminating" in kinds


class TestTwoSidedGroundTruth:
    def test_nonterm_claim_on_terminating_program(self, bogus_nonterm_prover):
        program = ProgramGenerator(2).generate(0)  # a countdown
        assert program.expected == "terminating"
        audit = audit_generated_program(program, tools=[bogus_nonterm_prover])
        kinds = {violation.kind for violation in audit.violations}
        assert "nonterm_on_terminating" in kinds
        assert "lasso_rejected" in kinds  # the claim carried no witness

    def test_missing_lasso_is_rejected_even_without_ground_truth(
        self, bogus_nonterm_prover
    ):
        audit = audit_source(
            "var x; while (x >= 0) { x = x + 1; }",
            tools=[bogus_nonterm_prover],
        )
        kinds = {violation.kind for violation in audit.violations}
        assert kinds == {"lasso_rejected"}
        assert "without a lasso witness" in audit.violations[0].detail

    def test_real_nontermination_verdict_is_audited_clean(self):
        audit = audit_source(
            "var x; while (x >= 0) { x = x + 1; }",
            tools=["termite"],
            config=default_fuzz_config(),
        )
        assert not audit.violations
        verdict = audit.lasso_verdicts["termite"]
        assert verdict.status == "valid"

    def test_report_counts_lassos(self):
        report = fuzz(
            seed=6,
            count=8,
            tools=["termite"],
            config=default_fuzz_config(),
        )
        assert report.ok, report.summary()
        document = report.to_dict()
        assert document["lassos_valid"] <= document["lassos_checked"]
        assert "lassos audited" in report.summary()


class TestCampaign:
    def test_small_campaign_is_clean_and_deterministic(self):
        report = fuzz(
            seed=1,
            count=4,
            tools=["heuristic", "dnf"],
            config=default_fuzz_config(),
        )
        assert report.ok, report.summary()
        assert report.programs == 4
        again = fuzz(
            seed=1,
            count=4,
            tools=["heuristic", "dnf"],
            config=default_fuzz_config(),
        )
        assert report.outcomes == again.outcomes

    def test_violations_are_shrunk(self, bogus_prover):
        programs = [ProgramGenerator(2).generate(0)]  # a countdown
        report = run_differential(
            programs, tools=[bogus_prover], shrink=True, max_shrink_checks=40
        )
        assert not report.ok
        violation = next(
            v for v in report.violations if v.kind == "certificate_rejected"
        )
        assert violation.original_source, "shrinking should have bitten"
        assert len(violation.source) < len(violation.original_source)
        assert "while" in violation.source

    def test_report_serialises(self):
        report = fuzz(seed=1, count=2, tools=["heuristic"])
        import json

        document = json.loads(json.dumps(report.to_dict()))
        assert document["schema_version"] == 1
        assert document["programs"] == 2
        assert document["ok"] is True

    def test_timeout_is_reported_not_fatal(self):
        report = fuzz(
            seed=1, count=2, tools=["heuristic"], timeout=0.000001
        )
        assert report.programs == 2
        assert report.timeouts
        assert report.ok  # timeouts are not soundness violations


class TestDefaultConfig:
    def test_default_fuzz_config_is_lean(self):
        config = default_fuzz_config()
        assert config.check_certificates is False
        assert isinstance(config, AnalysisConfig)
