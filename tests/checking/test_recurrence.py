"""The independent lasso-witness checker: valid claims pass, tampering fails."""

import dataclasses
from fractions import Fraction

import pytest

from repro.checking.checker import CertificateVerdict
from repro.checking.recurrence import check_recurrence
from repro.frontend.lowering import compile_program
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.nontermination import synthesize_recurrence

COUNTUP = "var x; while (x >= 0) { x = x + 1; }"
NONDET = "var x, y; while (x >= 0) { y = nondet(); x = x + y; }"


@pytest.fixture(scope="module")
def countup():
    automaton = compile_program(COUNTUP, "countup")
    outcome = synthesize_recurrence(automaton)
    assert outcome.success
    return automaton, outcome.lasso


@pytest.fixture(scope="module")
def nondet():
    automaton = compile_program(NONDET, "nondet")
    outcome = synthesize_recurrence(automaton)
    assert outcome.success
    return automaton, outcome.lasso


class TestValid:
    def test_engine_witness_is_valid(self, countup):
        automaton, lasso = countup
        verdict = check_recurrence(automaton, lasso)
        assert verdict.status == CertificateVerdict.VALID
        assert verdict.obligations > 0
        assert verdict.refuted == verdict.obligations

    def test_nondeterministic_witness_is_valid(self, nondet):
        automaton, lasso = nondet
        verdict = check_recurrence(automaton, lasso)
        assert verdict.status == CertificateVerdict.VALID

    def test_round_tripped_witness_still_valid(self, countup):
        from repro.nontermination.witness import Lasso

        automaton, lasso = countup
        replica = Lasso.from_dict(lasso.to_dict())
        assert check_recurrence(automaton, replica).status == (
            CertificateVerdict.VALID
        )


class TestTampering:
    def test_unsound_rows_are_refuted(self, countup):
        automaton, lasso = countup
        # Claim the recurrence set is x <= -5 — disjoint from the guard.
        forged = dataclasses.replace(
            lasso,
            rows=[
                Constraint(
                    LinExpr({"x": Fraction(1)}, Fraction(5)), Relation.LE
                )
            ],
        )
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID
        assert verdict.failures

    def test_transition_index_out_of_range(self, countup):
        automaton, lasso = countup
        forged = dataclasses.replace(
            lasso,
            cycle=[
                dataclasses.replace(step, transition=999)
                for step in lasso.cycle
            ],
        )
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID

    def test_initial_state_outside_the_program(self, countup):
        automaton, lasso = countup
        forged = dataclasses.replace(
            lasso, initial={name: Fraction(-10**6) for name in lasso.initial}
        )
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID

    def test_wrong_cutpoint_location(self, countup):
        automaton, lasso = countup
        forged = dataclasses.replace(lasso, cutpoint="no_such_location")
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID

    def test_missing_havoc_choice(self, nondet):
        automaton, lasso = nondet
        forged = dataclasses.replace(
            lasso,
            cycle=[
                dataclasses.replace(step, choices={})
                for step in lasso.cycle
            ],
        )
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID

    def test_foreign_variable_in_rows(self, countup):
        automaton, lasso = countup
        forged = dataclasses.replace(
            lasso,
            rows=lasso.rows
            + [Constraint(LinExpr({"ghost": Fraction(1)}), Relation.LE)],
        )
        verdict = check_recurrence(automaton, forged)
        assert verdict.status == CertificateVerdict.INVALID
