"""Replay the checked-in corpus as fast deterministic unit tests.

Every corpus program must build, analyse without crashing, and survive
the independent certificate audit; no prover may claim termination of a
nonterminating-by-construction gadget.  The expensive shapes run with
termite only; the cheap nonterminating gadgets are cross-examined by
every registered prover.
"""

import os

import pytest

from repro.checking.corpus import load_corpus
from repro.checking.differential import audit_source, default_fuzz_config
from repro.checking.generator import NONTERMINATING

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(CORPUS) >= 25
    assert any(entry.expected == NONTERMINATING for entry in CORPUS)


@pytest.mark.parametrize(
    "entry", CORPUS, ids=[entry.name for entry in CORPUS]
)
def test_corpus_program_audits_clean(entry):
    tools = None if entry.expected == NONTERMINATING else ["termite"]
    audit = audit_source(
        entry.source,
        tools=tools,
        config=default_fuzz_config(),
        name=entry.name,
        expected=entry.expected,
    )
    assert audit.build_error is None, audit.build_error
    assert not audit.violations, [
        (violation.kind, violation.tool, violation.detail)
        for violation in audit.violations
    ]
    for tool, verdict in audit.verdicts.items():
        assert verdict.status in ("valid", "inconclusive"), (tool, verdict)
