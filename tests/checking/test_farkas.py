"""The exact rational Gauss/Fourier–Motzkin decision engine."""

from fractions import Fraction

import pytest

from repro.checking.farkas import (
    FarkasBudgetExceeded,
    Refutation,
    Witness,
    decide_system,
    is_infeasible,
    tighten_integer_strict,
)
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr, var

x, y, z = var("x"), var("y"), var("z")


class TestRefutations:
    def test_contradictory_bounds(self):
        decision = decide_system([x >= 1, x <= 0])
        assert isinstance(decision, Refutation)
        assert decision.eliminated_variables == 1

    def test_strict_cycle(self):
        assert is_infeasible([x > 0, x < 0])

    def test_strict_against_equal_bound(self):
        assert is_infeasible([x > 3, x <= 3])
        assert not is_infeasible([x >= 3, x <= 3])

    def test_equality_chain(self):
        assert is_infeasible([x.eq(y + 1), y.eq(3), x <= 3])
        assert not is_infeasible([x.eq(y + 1), y.eq(3), x <= 4])

    def test_transitive_chain(self):
        assert is_infeasible([x - y <= 0, y - z <= 0, z - x <= -1])

    def test_constant_false(self):
        decision = decide_system([Constraint(LinExpr({}, 1), Relation.LE)])
        assert isinstance(decision, Refutation)

    def test_inconsistent_equalities(self):
        assert is_infeasible([x.eq(1), x.eq(2)])

    def test_rational_coefficients(self):
        half = LinExpr({"x": Fraction(1, 2)})
        assert is_infeasible([Constraint(half - 1, Relation.LT), x >= 2])


class TestWitnesses:
    def satisfies(self, witness, constraints):
        for constraint in constraints:
            assert constraint.satisfied_by(
                {name: witness.assignment.get(name, Fraction(0))
                 for name in constraint.variables()}
            ), constraint

    def test_empty_system(self):
        decision = decide_system([])
        assert isinstance(decision, Witness)

    def test_box(self):
        constraints = [x >= 1, x <= 5, y > x, y <= 100]
        decision = decide_system(constraints)
        assert isinstance(decision, Witness)
        self.satisfies(decision, constraints)

    def test_witness_prefers_integers(self):
        decision = decide_system([x > 0, x < 10])
        assert isinstance(decision, Witness)
        assert decision.assignment["x"].denominator == 1

    def test_fractional_interval_gets_fractional_witness(self):
        constraints = [2 * x > 1, 2 * x < 3]  # x in (1/2, 3/2) minus endpoints
        decision = decide_system(constraints)
        assert isinstance(decision, Witness)
        self.satisfies(decision, constraints)

    def test_equalities_propagate_into_witness(self):
        decision = decide_system([x.eq(y + 2), y >= 10])
        assert isinstance(decision, Witness)
        a = decision.assignment
        assert a["x"] == a["y"] + 2 and a["y"] >= 10

    def test_strict_and_nonstrict_bound_at_the_same_value(self):
        # Regression: at equal bound values the *strict* bound is the
        # binding one; picking the non-strict twin used to produce a
        # witness on the forbidden boundary.
        for constraints in (
            [x <= 5, x < 5],
            [x >= 5, x > 5],
            [x >= 2, x > 2, x <= 5, x < 5],
            [x.eq(y), y <= 0, y < 0],
        ):
            decision = decide_system(constraints)
            assert isinstance(decision, Witness), constraints
            self.satisfies(decision, constraints)

    def test_one_sided_variables(self):
        # x only bounded below, y only above: both eliminated for free.
        decision = decide_system([x >= 7, y <= -7])
        assert isinstance(decision, Witness)
        assert decision.assignment["x"] >= 7
        assert decision.assignment["y"] <= -7

    def test_is_integral(self):
        witness = Witness({"a": Fraction(3), "b": Fraction(1, 2)})
        assert witness.is_integral(["a"])
        assert not witness.is_integral(["a", "b"])
        assert not witness.is_integral()


class TestBudget:
    def test_budget_raises_instead_of_guessing(self):
        n = 14
        names = ["v%d" % i for i in range(n)]
        constraints = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                constraints.append(var(a) + var(b) >= 1)
                constraints.append(var(a) - var(b) <= 3)
        with pytest.raises(FarkasBudgetExceeded):
            decide_system(constraints, row_budget=40)


class TestIntegerTightening:
    def test_tightens_integral_strict_atoms(self):
        tightened = tighten_integer_strict([x > 0], lambda name: True)
        assert len(tightened) == 1
        assert not tightened[0].is_strict()
        # x > 0 became x >= 1, so x >= 1 must still be feasible and
        # 2x < 2 (x < 1) now contradicts it.
        assert is_infeasible(tightened + [2 * x < 2])

    def test_leaves_rational_variables_alone(self):
        tightened = tighten_integer_strict([x > 0], lambda name: False)
        assert tightened[0].is_strict()

    def test_integer_refutation_beyond_rationals(self):
        # 2x = 1 has rational but no integer solutions... the engine is
        # rational, so only the tightened strict form shows this kind of
        # gap: 0 < x < 1 is rationally feasible, integrally not.
        system = [x > 0, x < 1]
        assert not is_infeasible(system)
        assert is_infeasible(tighten_integer_strict(system, lambda name: True))
