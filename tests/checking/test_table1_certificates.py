"""Table-1 certificates survive the independent checker (regression slice).

The full sweep — ``repro check --suite all --tool termite`` — validated
165/165 of termite's Table-1 ranking functions with zero rejections and
zero inconclusives (2026-07).  This regression test pins a fast,
representative slice of that result so a regression in synthesis,
ranking serialisation, or the checker itself shows up in tier-1; the
full sweep stays a CI/manual job because polybench- and sort-sized
programs take seconds each.
"""

import pytest

from repro.api import Analysis
from repro.benchsuite.registry import get_program
from repro.checking.checker import check_ranking

#: (suite, name) pairs chosen to cover both suites' styles while staying
#: cheap (< ~0.5 s each, measured): plain countdowns, parametric strides,
#: gap-closing races, multi-variable chases, and one polybench kernel.
SLICE = [
    ("wtc", "chase_6"),
    ("wtc", "strided_3"),
    ("wtc", "speedup"),
    ("termcomp", "countdown_step13"),
    ("termcomp", "shift_pair_5"),
    ("termcomp", "race_gap4"),
    ("termcomp", "parametric_step_10"),
    ("termcomp", "gap_closing_12"),
    ("termcomp", "terminate_by_wraparound"),
    ("termcomp", "count_up_to_100000"),
    ("termcomp", "two_phase_reset6"),
    ("polybench", "gemm_init"),
]


@pytest.mark.parametrize(
    "suite,name", SLICE, ids=["%s/%s" % pair for pair in SLICE]
)
def test_termite_certificate_validates_independently(suite, name):
    program = get_program(suite, name)
    assert program.terminating, "slice programs are all terminating"
    analysis = Analysis(program.build(), name=name)
    problem = analysis.problem()
    result = analysis.run("termite")
    assert result.proved, "termite regressed on %s/%s" % (suite, name)
    assert result.ranking is not None
    verdict = check_ranking(problem, result.ranking)
    assert verdict.accepted, (
        "independent checker rejected %s/%s: %s"
        % (suite, name, [f.to_dict() for f in verdict.failures] or verdict.notes)
    )
    assert verdict.refuted == verdict.obligations


def test_serialised_ranking_still_validates():
    """The JSON round-trip of a ranking is certificate-equivalent.

    Guards the fraction-string serialisation: an off-by-one or lossy
    coefficient would make the deserialised ranking fail the checker
    even though the in-memory one passes.
    """
    from repro.api.result import ranking_from_dict, ranking_to_dict

    program = get_program("wtc", "chase_6")
    analysis = Analysis(program.build(), name="chase_6")
    problem = analysis.problem()
    result = analysis.run("termite")
    assert result.proved
    round_tripped = ranking_from_dict(ranking_to_dict(result.ranking))
    verdict = check_ranking(problem, round_tripped)
    assert verdict.accepted
