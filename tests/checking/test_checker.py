"""The independent certificate checker against real and corrupted proofs."""

import copy
from fractions import Fraction

from repro.api import Analysis, AnalysisConfig
from repro.checking.checker import (
    CertificateVerdict,
    check_ranking,
    check_result,
)
from repro.core.ranking import LexicographicRankingFunction

LISTING1 = """
var x, y;
while (x > 0 and y > 0) {
    if (nondet()) { x = x - 1; y = nondet(); } else { y = y - 1; }
}
"""

COUNTDOWN = """
var x;
while (x > 0) { x = x - 1; }
"""

STRAIGHT_LINE = """
var x;
x = x + 1;
x = x - 2;
"""


def analyse(source, tool="termite", **config_kwargs):
    analysis = Analysis(source, config=AnalysisConfig(**config_kwargs))
    return analysis.problem(), analysis.run(tool)


class TestAcceptsRealCertificates:
    def test_countdown(self):
        problem, result = analyse(COUNTDOWN)
        verdict = check_ranking(problem, result.ranking)
        assert verdict.accepted
        assert verdict.refuted == verdict.obligations > 0

    def test_listing1_lexicographic(self):
        problem, result = analyse(LISTING1)
        assert result.dimension == 2
        verdict = check_ranking(problem, result.ranking)
        assert verdict.accepted

    def test_baseline_certificates_accepted(self):
        for tool in ("eager_farkas", "podelski_rybalchenko", "heuristic", "dnf"):
            problem, result = analyse(COUNTDOWN, tool=tool)
            assert result.proved, tool
            verdict = check_ranking(problem, result.ranking)
            assert verdict.accepted, (tool, verdict)

    def test_integer_mode(self):
        problem, result = analyse(COUNTDOWN, integer_mode=True)
        verdict = check_ranking(problem, result.ranking, integer_mode=True)
        assert verdict.accepted


class TestRejectsCorruptedCertificates:
    def corrupt(self, ranking, scale):
        bad = copy.deepcopy(ranking)
        component = bad.components[0]
        for location in component.coefficients:
            component.coefficients[location] = (
                component.coefficients[location] * Fraction(scale)
            )
        return bad

    def test_flipped_sign_is_rejected_with_witness(self):
        problem, result = analyse(COUNTDOWN)
        verdict = check_ranking(problem, self.corrupt(result.ranking, -1))
        assert verdict.status == CertificateVerdict.INVALID
        assert verdict.failures
        assert verdict.failures[0].witness  # concrete counterexample state

    def test_zeroed_certificate_is_rejected(self):
        problem, result = analyse(COUNTDOWN)
        verdict = check_ranking(problem, self.corrupt(result.ranking, 0))
        assert verdict.status == CertificateVerdict.INVALID
        cases = {failure.case for failure in verdict.failures}
        assert any("no component decreased" in case for case in cases)

    def test_truncated_lexicographic_certificate(self):
        problem, result = analyse(LISTING1)
        truncated = LexicographicRankingFunction(result.ranking.components[1:])
        verdict = check_ranking(problem, truncated)
        assert verdict.status == CertificateVerdict.INVALID

    def test_empty_certificate_on_cyclic_program(self):
        problem, _ = analyse(COUNTDOWN)
        verdict = check_ranking(problem, LexicographicRankingFunction())
        assert verdict.status == CertificateVerdict.INVALID

    def test_certificate_missing_a_cut_point_is_invalid_not_a_crash(self):
        problem, result = analyse(COUNTDOWN)
        mangled = copy.deepcopy(result.ranking)
        for component in mangled.components:
            component.coefficients.clear()
            component.offsets.clear()
        verdict = check_ranking(problem, mangled)
        assert verdict.status == CertificateVerdict.INVALID
        assert any(
            "undefined at cut point" in failure.case
            for failure in verdict.failures
        )


class TestEdges:
    def test_acyclic_program_trivially_valid(self):
        problem, result = analyse(STRAIGHT_LINE)
        assert result.proved
        verdict = check_ranking(
            problem, result.ranking or LexicographicRankingFunction()
        )
        assert verdict.accepted
        assert verdict.obligations == 0

    def test_check_result_without_ranking(self):
        problem, _ = analyse(COUNTDOWN)
        assert check_result(problem, None) is None

    def test_disjunct_cap_yields_inconclusive(self):
        problem, result = analyse(LISTING1)
        verdict = check_ranking(problem, result.ranking, disjunct_cap=1)
        assert verdict.status == CertificateVerdict.INCONCLUSIVE
        assert verdict.notes

    def test_verdict_serialises(self):
        import json

        problem, result = analyse(COUNTDOWN)
        verdict = check_ranking(problem, result.ranking)
        document = json.loads(json.dumps(verdict.to_dict()))
        assert document["status"] == "valid"
        assert document["obligations"] == verdict.obligations
