"""The seeded program generator and the greedy shrinker."""

from repro.checking.generator import (
    GAssign,
    GIf,
    GWhile,
    GeneratedProgram,
    NONTERMINATING,
    ProgramGenerator,
    SHAPES,
    TERMINATING,
    _cmp,
    expected_from_source,
    render_expression,
    shrink_program,
)
from repro.frontend import compile_program, parse_program


class TestDeterminism:
    def test_same_seed_same_source(self):
        first = [ProgramGenerator(7).generate(i).source for i in range(14)]
        second = [ProgramGenerator(7).generate(i).source for i in range(14)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [ProgramGenerator(0).generate(i).source for i in range(14)]
        b = [ProgramGenerator(1).generate(i).source for i in range(14)]
        assert a != b

    def test_index_addressable(self):
        # generate(i) must not depend on which programs were generated
        # before it — the printed (seed, index) pair is the reproducer.
        generator = ProgramGenerator(3)
        eager = [generator.generate(i).source for i in range(10)]
        assert ProgramGenerator(3).generate(9).source == eager[9]


class TestWellFormedness:
    def test_every_shape_parses_and_lowers(self):
        generator = ProgramGenerator(11)
        seen = set()
        for index in range(len(SHAPES) * 3):
            program = generator.generate(index)
            seen.add(program.shape)
            parse_program(program.source, program.name)
            automaton = compile_program(program.source, program.name)
            assert automaton.name == program.name
        assert seen == set(SHAPES)

    def test_expected_header_round_trips(self):
        program = ProgramGenerator(0).generate(6)
        assert program.expected == NONTERMINATING
        assert expected_from_source(program.source) == NONTERMINATING

    def test_shape_cycle_covers_ground_truths(self):
        generator = ProgramGenerator(0)
        expectations = {generator.generate(i).expected for i in range(len(SHAPES))}
        assert TERMINATING in expectations
        assert NONTERMINATING in expectations


class TestRendering:
    def test_expression_rendering(self):
        assert render_expression([(1, "x")], 0) == "x"
        assert render_expression([(-1, "x")], 0) == "-x"
        assert render_expression([(2, "x"), (-1, "y")], 3) == "2*x - y + 3"
        assert render_expression([], -4) == "-4"
        assert render_expression([(0, "x")], 0) == "0"


class TestShrinking:
    def build(self, statements):
        return GeneratedProgram(
            name="shrink-me",
            seed=0,
            index=0,
            shape="random",
            expected="unknown",
            statements=statements,
        )

    def test_shrinks_to_the_failing_core(self):
        # Predicate: "the program still contains a while loop whose guard
        # mentions x" — everything else should be stripped away.
        program = self.build(
            [
                GAssign("y", [(1, "y")], 1),
                GIf(
                    _cmp([(1, "y")], ">", 0),
                    [GAssign("y", [(1, "y")], -1)],
                    [GAssign("x", [(1, "x")], 2)],
                ),
                GWhile(
                    _cmp([(1, "x")], ">", 0),
                    [GAssign("x", [(1, "x")], -1), GAssign("y", [(1, "y")], 1)],
                ),
            ]
        )

        def still_failing(candidate):
            return any(
                isinstance(s, GWhile)
                and "x" in candidate.source.split("while", 1)[-1].split(")")[0]
                for s in candidate.statements
            )

        shrunk = shrink_program(program, still_failing)
        assert len(shrunk.statements) == 1
        assert isinstance(shrunk.statements[0], GWhile)
        assert len(shrunk.statements[0].body) == 1

    def test_flaky_predicate_returns_original(self):
        program = self.build([GAssign("x", [(1, "x")], 1)])
        shrunk = shrink_program(program, lambda candidate: False)
        assert shrunk is program

    def test_shrunk_programs_still_render_and_parse(self):
        program = ProgramGenerator(5).generate(5)  # a random-shape program

        def still_failing(candidate):
            parse_program(candidate.source)  # must never crash
            return bool(candidate.statements)

        shrunk = shrink_program(program, still_failing, max_checks=40)
        parse_program(shrunk.source)
        assert len(shrunk.statements) <= len(program.statements)
