"""The ``repro check`` and ``repro fuzz`` subcommands (in-process)."""

import json

import pytest

from repro.cli import main

COUNTDOWN = "var x;\nwhile (x > 0) { x = x - 1; }\n"


@pytest.fixture
def countdown_file(tmp_path):
    path = tmp_path / "countdown.imp"
    path.write_text(COUNTDOWN)
    return str(path)


class TestCheckCommand:
    def test_file_mode_validates(self, countdown_file, capsys):
        assert main(["check", countdown_file]) == 0
        out = capsys.readouterr().out
        assert "certificate valid" in out

    def test_file_mode_json(self, countdown_file, capsys):
        assert main(["check", countdown_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["totals"]["certificates_valid"] == 1
        assert document["totals"]["certificates_rejected"] == 0
        assert document["programs"][0]["verdict"]["status"] == "valid"

    def test_unproved_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "spin.imp"
        path.write_text("var x;\nwhile (x > 0) { skip; }\n")
        assert main(["check", str(path)]) == 2

    def test_unknown_tool_exits_1(self, countdown_file, capsys):
        assert main(["check", countdown_file, "--tool", "nope"]) == 1

    def test_missing_operands_exits_1(self, capsys):
        assert main(["check"]) == 1

    def test_file_and_suite_together_exit_1(self, countdown_file, capsys):
        assert main(["check", countdown_file, "--suite", "wtc"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_error_rows_exit_1(self, tmp_path, capsys):
        path = tmp_path / "broken.imp"
        path.write_text("var x;\nwhile (x > 0) {\n")
        assert main(["check", str(path)]) == 1
        assert "ParseError" in capsys.readouterr().out

    def test_inconclusive_exits_4(self, countdown_file, capsys):
        # A zero disjunct cap forces every block expansion over budget.
        code = main(["check", countdown_file, "--max-disjuncts", "0"])
        assert code == 4
        assert "inconclusive" in capsys.readouterr().out

    def test_unknown_suite_exits_1(self, capsys):
        assert main(["check", "--suite", "nope"]) == 1

    def test_terminating_claim_without_ranking_exits_3(
        self, countdown_file, capsys
    ):
        from repro.api.registry import Prover, _REGISTRY, register_prover
        from repro.api.result import AnalysisResult, AnalysisStatus

        class Rankingless(Prover):
            name = "rankingless_test_prover"
            summary = "test stub: TERMINATING with no certificate"

            def prove(self, problem, config):
                return AnalysisResult(
                    tool=self.name, status=AnalysisStatus.TERMINATING
                )

        register_prover(Rankingless())
        try:
            code = main(["check", countdown_file, "--tool", Rankingless.name])
        finally:
            _REGISTRY.pop(Rankingless.name, None)
        assert code == 3
        assert "without a ranking function" in capsys.readouterr().out


class TestFuzzCommand:
    def test_tiny_campaign(self, tmp_path, capsys):
        report_path = tmp_path / "fuzz.json"
        code = main(
            [
                "fuzz",
                "--seed", "1",
                "--count", "2",
                "--tool", "heuristic",
                "--json", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "soundness violations: 0" in out
        document = json.loads(report_path.read_text())
        assert document["ok"] is True
        assert document["programs"] == 2

    def test_unknown_tool_exits_1(self, capsys):
        assert main(["fuzz", "--count", "1", "--tool", "nope"]) == 1
