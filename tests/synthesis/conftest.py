"""Reuse the core fixtures (paper examples) for the synthesis-engine tests."""

from tests.core.conftest import (  # noqa: F401
    countdown_automaton,
    example1_automaton,
    example3_automaton,
    example4_automaton,
    lexicographic_automaton,
    stutter_automaton,
)
