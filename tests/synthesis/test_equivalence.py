"""Oracle × strategy differential equivalence against the seed path.

Two properties anchor the pluggable engine to the paper's algorithm:

* **Verdict identity** — swapping the counterexample *oracle* (SMT
  extremal search → DD enumeration → seeded sampling) never changes a
  verdict: both alternative oracles back exhaustion with a complete SMT
  check, so every oracle × strategy × batch combination built on them is
  verdict-identical to the seed extremal path on the whole corpus.
* **Soundness under ablation** — the non-extremal *strategies* on the
  SMT oracle (``arbitrary``/``random``) are the paper's §4.2 ablation:
  they are *expected* to cost more iterations and may conclude
  differently (an arbitrary counterexample can escape a dead end the
  extremal heuristic walks into, and conversely can exhaust the budget).
  Whenever they do diverge, the divergence must be sound: every extra
  ``TERMINATING`` verdict carries a ranking the independent Farkas
  checker validates, and a lost verdict is only ever ``UNKNOWN``, never
  a wrong claim.

A seeded fuzz campaign over every combination closes the loop: zero
soundness violations tolerated.
"""

import itertools

import pytest

from repro.api import Analysis, AnalysisConfig
from repro.checking.checker import CertificateVerdict, check_ranking
from repro.checking.corpus import load_corpus
from repro.checking.differential import default_fuzz_config, fuzz

CORPUS = load_corpus("tests/corpus")

#: Combinations that must be verdict-identical to the seed extremal path.
IDENTICAL_COMBOS = [
    ("smt", "extremal", 1),
    ("smt", "extremal", 4),
    ("dd", "extremal", 1),
    ("dd", "arbitrary", 1),
    ("dd", "random", 1),
    ("dd", "extremal", 4),
    ("dd", "arbitrary", 4),
    ("dd", "random", 4),
    ("sampling", "extremal", 1),
    ("sampling", "arbitrary", 1),
    ("sampling", "random", 1),
    ("sampling", "random", 4),
]

#: The §4.2 ablation: may diverge, but only soundly.
ABLATION_COMBOS = [
    ("smt", "arbitrary", 1),
    ("smt", "random", 1),
    ("smt", "arbitrary", 4),
]

BASE_CONFIG = AnalysisConfig(
    check_certificates=False, max_iterations=200, max_dimension=4
)


def run_corpus(config):
    """{program: (status, ranking, problem)} over the checked-in corpus."""
    outcomes = {}
    for entry in CORPUS:
        analysis = Analysis(entry.source, config=config, name=entry.name)
        problem = analysis.problem()
        result = analysis.run("termite")
        outcomes[entry.name] = (result.status.value, result.ranking, problem)
    return outcomes


@pytest.fixture(scope="module")
def baseline():
    """The seed path: SMT oracle, extremal counterexamples, one row each."""
    return run_corpus(BASE_CONFIG)


class TestVerdictIdentity:
    @pytest.mark.parametrize("oracle,strategy,batch", IDENTICAL_COMBOS)
    def test_combo_matches_seed_extremal_path(
        self, baseline, oracle, strategy, batch
    ):
        config = BASE_CONFIG.replace(
            cex_oracle=oracle, cex_strategy=strategy, cex_batch=batch
        )
        for name, (status, _, _) in run_corpus(config).items():
            assert status == baseline[name][0], (
                "%s: %s/%s/batch=%d gave %s, seed extremal path gave %s"
                % (name, oracle, strategy, batch, status, baseline[name][0])
            )


class TestAblationSoundness:
    @pytest.mark.parametrize("oracle,strategy,batch", ABLATION_COMBOS)
    def test_divergence_is_only_ever_sound(
        self, baseline, oracle, strategy, batch
    ):
        config = BASE_CONFIG.replace(
            cex_oracle=oracle, cex_strategy=strategy, cex_batch=batch
        )
        for name, (status, ranking, problem) in run_corpus(config).items():
            base_status = baseline[name][0]
            if status == base_status:
                continue
            # Divergences must stay within {unknown, terminating} and a
            # new TERMINATING claim must carry an independently valid
            # certificate — the ablation may cost or gain power, it must
            # never lie.
            assert {status, base_status} <= {"unknown", "terminating"}, (
                "%s: unexpected divergence %s vs %s"
                % (name, status, base_status)
            )
            if status == "terminating":
                assert ranking is not None
                verdict = check_ranking(problem, ranking)
                assert verdict.status == CertificateVerdict.VALID, (
                    "%s: %s/%s proof rejected by the independent checker"
                    % (name, oracle, strategy)
                )


class TestFuzzSeedZero:
    @pytest.mark.parametrize(
        "oracle,strategy",
        list(itertools.product(("smt", "dd", "sampling"),
                               ("extremal", "arbitrary", "random"))),
    )
    def test_no_soundness_violations(self, oracle, strategy):
        config = default_fuzz_config().replace(
            cex_oracle=oracle,
            cex_strategy=strategy,
            cex_batch=1 if strategy == "extremal" else 2,
        )
        report = fuzz(
            seed=0, count=20, tools=["termite"], config=config, shrink=False
        )
        assert report.ok, "violations: %r, build errors: %r" % (
            report.violations,
            report.build_errors,
        )
        assert not report.violations
