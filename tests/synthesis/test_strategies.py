"""Strategy selection policies and batching."""

from fractions import Fraction

import pytest

from repro.synthesis.oracles import Witness
from repro.synthesis.strategies import (
    ArbitraryStrategy,
    ExtremalStrategy,
    RandomStrategy,
    make_strategy,
)
from repro.linalg.vector import Vector


def group(value):
    return [
        Witness(
            vector=Vector([Fraction(value)]),
            kind="vertex",
            objective_value=Fraction(value),
        )
    ]


GROUPS = [group(-1), group(-5), group(-3), group(0)]


class TestExtremal:
    def test_picks_most_violating_first(self):
        chosen = ExtremalStrategy(batch=2).select(GROUPS)
        values = [g[0].objective_value for g in chosen]
        assert values == [Fraction(-5), Fraction(-3)]

    def test_declares_extremal_intent(self):
        assert ExtremalStrategy().wants_extremal
        assert not ArbitraryStrategy().wants_extremal
        assert not RandomStrategy().wants_extremal

    def test_groups_without_value_sort_last(self):
        anonymous = [Witness(vector=Vector([Fraction(0)]), kind="vertex")]
        chosen = ExtremalStrategy(batch=1).select([anonymous, group(-2)])
        assert chosen[0][0].objective_value == Fraction(-2)


class TestArbitrary:
    def test_takes_first_in_order(self):
        chosen = ArbitraryStrategy(batch=2).select(GROUPS)
        values = [g[0].objective_value for g in chosen]
        assert values == [Fraction(-1), Fraction(-5)]


class TestRandom:
    def test_seeded_and_reproducible(self):
        first = RandomStrategy(batch=2, seed=11).select(GROUPS)
        second = RandomStrategy(batch=2, seed=11).select(GROUPS)
        assert [g[0].objective_value for g in first] == [
            g[0].objective_value for g in second
        ]

    def test_small_pool_returned_whole(self):
        assert RandomStrategy(batch=5, seed=0).select(GROUPS) == list(GROUPS)

    def test_seed_pins_selection_across_pool_orders(self):
        """The oracle's enumeration order must not influence sampling.

        The strategy sorts the pool by a canonical content key before
        sampling, so the same seed picks the same *witnesses* no matter
        how the oracle happened to order its candidates.
        """
        import itertools

        baseline = None
        for permutation in itertools.permutations(GROUPS):
            chosen = RandomStrategy(batch=2, seed=7).select(list(permutation))
            picked = sorted(g[0].objective_value for g in chosen)
            if baseline is None:
                baseline = picked
            assert picked == baseline


class TestBatchedExtremalDeterminism:
    def test_objective_ties_break_canonically(self):
        """Equally violating groups must not be picked by pool order."""
        import itertools

        tied = [
            [
                Witness(
                    vector=Vector([Fraction(value)]),
                    kind="vertex",
                    objective_value=Fraction(-2),
                )
            ]
            for value in (3, 1, 2)
        ]
        baseline = None
        for permutation in itertools.permutations(tied):
            chosen = ExtremalStrategy(batch=2).select(list(permutation))
            vectors = [g[0].vector for g in chosen]
            if baseline is None:
                baseline = vectors
            assert vectors == baseline


class TestFactory:
    def test_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            make_strategy("extremal", batch=0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown counterexample strategy"):
            make_strategy("greedy")

    def test_instances_pass_through(self):
        instance = RandomStrategy(batch=3, seed=5)
        assert make_strategy(instance) is instance

    def test_names_resolve(self):
        for name in ("extremal", "arbitrary", "random"):
            assert make_strategy(name, batch=2).name == name
