"""The CEGIS engine: budgets, events, and the shared elimination loop."""

import pytest

from repro.core.termination import TerminationProver
from repro.synthesis.engine import (
    CegisEngine,
    MaxIterationsExceeded,
    eliminate_lexicographic,
)
from repro.synthesis.oracles import make_oracle
from repro.synthesis.strategies import make_strategy
from repro.synthesis.templates import LexicographicTemplate, LinearTemplate


def build_problem(automaton):
    return TerminationProver(automaton).build_problem()


def make_engine(observers=(), max_iterations=200, oracle="smt",
                strategy="extremal", batch=1):
    return CegisEngine(
        make_oracle(oracle),
        make_strategy(strategy, batch=batch),
        max_iterations=max_iterations,
        observers=observers,
    )


class TestComponentSynthesis:
    def test_example1_strict_component(self, example1_automaton):
        problem = build_problem(example1_automaton)
        result = make_engine().synthesize_component(LinearTemplate(problem))
        assert result.strict
        assert not result.is_trivial
        assert result.statistics.counterexamples >= 1

    def test_stutter_gives_non_strict(self, stutter_automaton):
        problem = build_problem(stutter_automaton)
        result = make_engine().synthesize_component(LinearTemplate(problem))
        assert not result.strict

    def test_iteration_budget_enforced(self, example1_automaton):
        problem = build_problem(example1_automaton)
        with pytest.raises(MaxIterationsExceeded):
            make_engine(max_iterations=0).synthesize_component(
                LinearTemplate(problem)
            )

    def test_unified_counters_folded_into_lp_statistics(
        self, example1_automaton
    ):
        from repro.core.lp_instance import LpStatistics

        problem = build_problem(example1_automaton)
        shared = LpStatistics()
        result = make_engine().synthesize_component(
            LinearTemplate(problem), lp_statistics=shared
        )
        assert shared.oracle_queries == result.statistics.iterations
        assert shared.cex_rows == (
            result.statistics.counterexamples + result.statistics.rays
        )
        assert shared.flat_directions == result.statistics.flat_directions
        # The counters survive the JSON round-trip.
        assert (
            LpStatistics.from_dict(shared.to_dict()).oracle_queries
            == shared.oracle_queries
        )


class TestLexicographic:
    def test_example1_dimension_one(self, example1_automaton):
        problem = build_problem(example1_automaton)
        outcome = make_engine().synthesize_lexicographic(
            LexicographicTemplate(problem)
        )
        assert outcome.success
        assert outcome.dimension == 1

    def test_failure_reported(self, stutter_automaton):
        problem = build_problem(stutter_automaton)
        outcome = make_engine().synthesize_lexicographic(
            LexicographicTemplate(problem)
        )
        assert not outcome.success
        assert outcome.ranking is None

    def test_max_dimension_cap(self, lexicographic_automaton):
        problem = build_problem(lexicographic_automaton)
        outcome = make_engine().synthesize_lexicographic(
            LexicographicTemplate(problem, max_dimension=1)
        )
        assert outcome.dimension <= 1


class TestEvents:
    def test_event_stream_is_well_bracketed(self, example1_automaton):
        problem = build_problem(example1_automaton)
        events = []
        engine = make_engine(observers=[events.append])
        engine.synthesize_lexicographic(LexicographicTemplate(problem))

        kinds = [event.kind for event in events]
        assert kinds[0] == "component_start"
        assert kinds[-1] == "component_end"
        assert kinds.count("component_start") == kinds.count("component_end")
        iterations = [e for e in events if e.kind == "iteration"]
        assert iterations, "no per-iteration events emitted"
        # Iterations are numbered 1.. within their component.
        for component in {event.component for event in iterations}:
            numbers = [
                event.iteration
                for event in iterations
                if event.component == component
            ]
            assert numbers == list(range(1, len(numbers) + 1))

    def test_component_start_names_oracle_and_strategy(
        self, countdown_automaton
    ):
        problem = build_problem(countdown_automaton)
        events = []
        engine = make_engine(
            observers=[events.append], oracle="dd", strategy="arbitrary"
        )
        engine.synthesize_component(LinearTemplate(problem))
        start = events[0]
        assert start.payload["oracle"] == "dd"
        assert start.payload["strategy"] == "arbitrary"


class TestEliminateLexicographic:
    def test_empty_items_trivially_proved(self):
        components, remaining, proved = eliminate_lexicographic(
            [], lambda remaining: pytest.fail("must not be called"), 4
        )
        assert proved and not components and not remaining

    def test_eliminates_until_done(self):
        calls = []

        def find(remaining):
            calls.append(list(remaining))
            return ("c%d" % len(calls), [0])

        components, remaining, proved = eliminate_lexicographic(
            ["a", "b", "c"], find, 10
        )
        assert proved
        assert components == ["c1", "c2", "c3"]
        assert calls == [["a", "b", "c"], ["b", "c"], ["c"]]

    def test_stops_without_progress(self):
        components, remaining, proved = eliminate_lexicographic(
            ["a", "b"], lambda remaining: None, 10
        )
        assert not proved
        assert remaining == ["a", "b"]
        assert components == []

    def test_dimension_cap(self):
        components, remaining, proved = eliminate_lexicographic(
            ["a", "b", "c"], lambda remaining: ("c", [0]), 2
        )
        assert not proved
        assert len(components) == 2
        assert remaining == ["c"]

    def test_batch_elimination(self):
        components, remaining, proved = eliminate_lexicographic(
            ["a", "b", "c"], lambda remaining: ("c", list(range(len(remaining)))), 4
        )
        assert proved and len(components) == 1 and not remaining


class TestSeedDeterminism:
    """``oracle_seed`` must fully pin the run, including event payloads."""

    def _event_stream(self, problem, seed):
        from repro.synthesis.oracles import make_oracle
        from repro.synthesis.strategies import make_strategy

        events = []
        engine = CegisEngine(
            make_oracle("dd", seed=seed),
            make_strategy("random", batch=2, seed=seed),
            max_iterations=200,
            observers=[events.append],
        )
        engine.synthesize_lexicographic(LexicographicTemplate(problem))
        return [
            (event.kind, event.component, event.iteration, repr(event.payload))
            for event in events
        ]

    def test_same_seed_identical_event_streams(self, example1_automaton):
        problem = build_problem(example1_automaton)
        first = self._event_stream(problem, seed=13)
        second = self._event_stream(problem, seed=13)
        assert first == second

    def test_same_seed_identical_streams_sampling_oracle(
        self, lexicographic_automaton
    ):
        from repro.synthesis.oracles import make_oracle
        from repro.synthesis.strategies import make_strategy

        problem = build_problem(lexicographic_automaton)
        streams = []
        for _ in range(2):
            events = []
            engine = CegisEngine(
                make_oracle("sampling", seed=5),
                make_strategy("random", batch=2, seed=5),
                max_iterations=200,
                observers=[events.append],
            )
            engine.synthesize_lexicographic(LexicographicTemplate(problem))
            streams.append(
                [
                    (e.kind, e.component, e.iteration, repr(e.payload))
                    for e in events
                ]
            )
        assert streams[0] == streams[1]
