"""Oracle/strategy selection round-trips: AnalysisConfig JSON and the CLI."""

import itertools
import json

import pytest

from repro.api import (
    AnalysisConfig,
    CEX_ORACLES,
    CEX_STRATEGIES,
    ConfigError,
    available_provers,
    prover_capabilities,
)
from repro.cli import _config_from_arguments, build_parser

ALL_COMBOS = list(itertools.product(CEX_ORACLES, CEX_STRATEGIES))


class TestConfigValidation:
    def test_defaults_replay_the_paper(self):
        config = AnalysisConfig()
        assert config.cex_oracle == "smt"
        assert config.cex_strategy == "extremal"
        assert config.cex_batch == 1
        assert config.oracle_seed == 0

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ConfigError, match="cex_oracle"):
            AnalysisConfig(cex_oracle="crystal-ball")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError, match="cex_strategy"):
            AnalysisConfig(cex_strategy="greedy")

    def test_batch_must_be_positive_int(self):
        with pytest.raises(ConfigError, match="cex_batch"):
            AnalysisConfig(cex_batch=0)
        with pytest.raises(ConfigError, match="cex_batch"):
            AnalysisConfig(cex_batch=True)

    def test_seed_must_be_nonnegative(self):
        with pytest.raises(ConfigError, match="oracle_seed"):
            AnalysisConfig(oracle_seed=-1)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("oracle,strategy", ALL_COMBOS)
    def test_every_combination_round_trips_exactly(self, oracle, strategy):
        config = AnalysisConfig(
            cex_oracle=oracle,
            cex_strategy=strategy,
            cex_batch=3,
            oracle_seed=17,
        )
        assert (
            AnalysisConfig.from_dict(json.loads(json.dumps(config.to_dict())))
            == config
        )
        assert AnalysisConfig.from_json(config.to_json()) == config


class TestCliRoundTrip:
    @pytest.mark.parametrize("oracle,strategy", ALL_COMBOS)
    def test_prove_flags_reach_the_config(self, oracle, strategy):
        parser = build_parser()
        arguments = parser.parse_args(
            [
                "prove",
                "program.imp",
                "--oracle",
                oracle,
                "--cex-strategy",
                strategy,
                "--cex-batch",
                "2",
                "--oracle-seed",
                "9",
            ]
        )
        config = _config_from_arguments(arguments)
        assert config.cex_oracle == oracle
        assert config.cex_strategy == strategy
        assert config.cex_batch == 2
        assert config.oracle_seed == 9

    def test_config_file_baseline_with_flag_override(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(
            AnalysisConfig(cex_oracle="dd", cex_strategy="random").to_json()
        )
        parser = build_parser()
        arguments = parser.parse_args(
            ["prove", "p.imp", "--config", str(path), "--cex-strategy", "arbitrary"]
        )
        config = _config_from_arguments(arguments)
        assert config.cex_oracle == "dd"  # from the file
        assert config.cex_strategy == "arbitrary"  # the flag wins

    def test_invalid_choice_rejected_by_argparse(self, capsys):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["prove", "p.imp", "--oracle", "magic"])
        assert "invalid choice" in capsys.readouterr().err


class TestCapabilityFlags:
    def test_termite_advertises_swappable_oracles(self):
        capabilities = prover_capabilities()
        assert "cex-oracles" in capabilities["termite"]
        assert "cex-strategies" in capabilities["termite"]
        assert "events" in capabilities["termite"]

    def test_capability_filter(self):
        assert available_provers("cex-oracles") == ["termite"]
        everyone = available_provers("certificates")
        assert set(everyone) == set(available_provers())

    def test_unknown_capability_rejected(self):
        with pytest.raises(KeyError, match="unknown capability"):
            available_provers("telepathy")

    def test_baselines_ignore_but_do_not_advertise(self):
        capabilities = prover_capabilities()
        for name in available_provers():
            if name == "termite":
                continue
            assert "cex-oracles" not in capabilities[name]


class TestPipelineEngineObservers:
    def test_engine_events_flow_through_analysis(self):
        from repro.api import Analysis

        source = "var x; while (x > 0) { x = x - 1; }"
        events = []
        analysis = Analysis(source, name="countdown")
        analysis.add_engine_observer(events.append)
        result = analysis.run("termite")
        assert result.proved
        kinds = {event.kind for event in events}
        assert {"component_start", "iteration", "component_end"} <= kinds

    def test_no_events_without_capability(self):
        from repro.api import Analysis

        source = "var x; while (x > 0) { x = x - 1; }"
        events = []
        analysis = Analysis(source, name="countdown")
        analysis.add_engine_observer(events.append)
        analysis.run("heuristic")
        assert events == []


class TestRemovedAliases:
    """The PR-5 deprecation shims are gone; repro.synthesis is the one path."""

    def test_core_avoid_space_alias_removed(self):
        import repro.core.monodim as monodim

        assert not hasattr(monodim, "avoid_space")
        from repro.synthesis.oracles import avoid_space  # noqa: F401

    def test_eager_generator_aliases_removed(self):
        import repro.baselines.eager_generators as eager

        for alias in ("_difference_map", "_one_offsets", "_disjunct_generators"):
            assert not hasattr(eager, alias)
        from repro.synthesis.oracles import (  # noqa: F401
            difference_map,
            disjunct_generators,
            one_offsets,
        )
