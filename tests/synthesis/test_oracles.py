"""Oracle unit behaviour: witnesses, exhaustion, determinism."""

from fractions import Fraction

import pytest

from repro.core.termination import TerminationProver
from repro.linexpr.constraint import Relation
from repro.synthesis.oracles import (
    DdEnumerationOracle,
    OracleRequest,
    SamplingOracle,
    SmtOptimizingOracle,
    constraint_in_state_space,
    make_oracle,
    objective_on_vector,
)
from repro.synthesis.templates import LinearTemplate


def template_for(automaton):
    problem = TerminationProver(automaton).build_problem()
    return LinearTemplate(problem)


def zero_request(template, **overrides):
    """The first engine query: refute the all-zero candidate."""
    defaults = dict(
        objective=template.objective(template.initial_candidate()),
        flat_basis=[],
        want_extremal=True,
        max_witnesses=1,
    )
    defaults.update(overrides)
    return OracleRequest(**defaults)


class TestSmtOracle:
    def test_extremal_witness_on_countdown(self, countdown_automaton):
        template = template_for(countdown_automaton)
        oracle = SmtOptimizingOracle()
        oracle.reset(template, ())
        groups = oracle.find(zero_request(template))
        assert groups, "the zero candidate must be refutable"
        witness = groups[0][0]
        assert witness.kind == "vertex"
        assert not witness.vector.is_zero()
        # The witness is a genuine non-increasing step: λ·u ≤ 0 with λ = 0.
        assert witness.objective_value == 0

    def test_arbitrary_model_also_violates(self, countdown_automaton):
        template = template_for(countdown_automaton)
        oracle = SmtOptimizingOracle()
        oracle.reset(template, ())
        groups = oracle.find(zero_request(template, want_extremal=False))
        assert groups and groups[0][0].kind == "vertex"

    def test_factory_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown counterexample oracle"):
            make_oracle("magic")
        assert make_oracle("smt").name == "smt"
        instance = SamplingOracle(seed=3)
        assert make_oracle(instance) is instance


class TestDdOracle:
    def test_returns_enumerated_generators(self, countdown_automaton):
        template = template_for(countdown_automaton)
        oracle = DdEnumerationOracle()
        oracle.reset(template, ())
        groups = oracle.find(zero_request(template, max_witnesses=8))
        assert groups
        names = template.problem.difference_variables()
        for group in groups:
            for witness in group:
                assert witness.origin == "dd"
                value = objective_on_vector(
                    zero_request(template).objective, witness.vector, names
                )
                assert value <= 0

    def test_consumed_generators_are_not_returned_again(
        self, countdown_automaton
    ):
        template = template_for(countdown_automaton)
        oracle = DdEnumerationOracle()
        oracle.reset(template, ())
        request = zero_request(template, max_witnesses=64)
        first = oracle.find(request)
        oracle.consumed(first)
        second = oracle.find(request)
        # Everything enumerable was consumed; anything further must come
        # from the SMT confirmation path (origin "smt"), or be empty.
        for group in second:
            for witness in group:
                assert witness.origin == "smt"

    def test_exhaustion_is_smt_confirmed(self, countdown_automaton):
        template = template_for(countdown_automaton)
        oracle = DdEnumerationOracle()
        oracle.reset(template, ())
        before = oracle.statistics["smt_queries"]
        # A candidate that strictly decreases on every step of
        # `while (x > 0) x = x - 1`: rank by x at the only cut point.
        from repro.core.ranking import AffineRankingFunction
        from repro.linalg.vector import Vector

        problem = template.problem
        location = problem.cutset[0]
        candidate = AffineRankingFunction(
            problem.variables,
            {location: Vector([Fraction(1)])},
            {location: Fraction(0)},
        )
        groups = oracle.find(
            zero_request(template, objective=template.objective(candidate))
        )
        assert groups == []
        assert oracle.statistics["smt_queries"] == before + 1


class TestSamplingOracle:
    def test_points_are_interior_but_still_violating(self, example1_automaton):
        template = template_for(example1_automaton)
        oracle = SamplingOracle(seed=0)
        oracle.reset(template, ())
        request = zero_request(template, max_witnesses=16)
        groups = oracle.find(request)
        assert groups
        names = template.problem.difference_variables()
        for group in groups:
            for witness in group:
                if witness.kind != "vertex":
                    continue
                value = objective_on_vector(
                    request.objective, witness.vector, names
                )
                assert value <= 0
                assert not witness.vector.is_zero()

    def test_same_seed_same_samples(self, example1_automaton):
        template = template_for(example1_automaton)
        request = zero_request(template, max_witnesses=16)

        def run(seed):
            oracle = SamplingOracle(seed=seed)
            oracle.reset(template, ())
            return [
                [witness.vector for witness in group]
                for group in oracle.find(request)
            ]

        assert run(7) == run(7)


class TestStateSpaceTranslation:
    def test_flatness_constraint_translates_exactly(self, example1_automaton):
        """λ·u = 0 over u-variables becomes the same linear fact in state space."""
        problem = TerminationProver(example1_automaton).build_problem()
        template = LinearTemplate(problem)
        # Use a non-trivial candidate: rank by x + 2y at the cut point.
        from repro.core.ranking import AffineRankingFunction
        from repro.linalg.vector import Vector
        from repro.linexpr.transform import prime_suffix

        location = problem.cutset[0]
        candidate = AffineRankingFunction(
            problem.variables,
            {location: Vector([Fraction(1), Fraction(2)])},
            {location: Fraction(3)},
        )
        from repro.linexpr.constraint import Constraint

        flat = Constraint(template.objective(candidate), Relation.EQ)
        translated = constraint_in_state_space(
            problem, flat, source=location, target=location
        )
        assert translated.relation is Relation.EQ
        # On a self-loop u = (x,1) − (x',1): the translated expression is
        # ρ(x) − ρ(x') = (x + 2y) − (x' + 2y') (offsets cancel).
        expr = translated.expr
        assert expr.coefficient("x") == 1
        assert expr.coefficient("y") == 2
        assert expr.coefficient(prime_suffix("x")) == -1
        assert expr.coefficient(prime_suffix("y")) == -2
        assert expr.constant_term == 0
