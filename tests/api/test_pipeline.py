"""The staged pipeline: hook ordering, problem caching, batch execution."""

import pytest

from repro.api import (
    Analysis,
    AnalysisConfig,
    STAGES,
    analyze,
    analyze_many,
)
from repro.api.pipeline import run_tools_on_program
from repro.core import TerminationProver
from repro.frontend import compile_program

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
NESTED = """
var i, j, n;
assume(n >= 0 and n <= 1000);
i = 0;
while (i < n) {
    j = 0;
    while (j < n) { j = j + 1; }
    i = i + 1;
}
"""


class TestStageHooks:
    def test_events_arrive_in_pipeline_order(self):
        events = []
        analysis = Analysis(
            COUNTDOWN,
            observers=[lambda event, stage, seconds: events.append((event, stage))],
        )
        analysis.run("termite")
        expected = []
        for stage in STAGES:
            expected.extend([("start", stage), ("end", stage)])
        assert events == expected

    def test_end_events_carry_seconds(self):
        seconds = []
        analysis = Analysis(
            COUNTDOWN,
            observers=[
                lambda event, stage, elapsed: seconds.append(elapsed)
                if event == "end"
                else None
            ],
        )
        analysis.run("termite")
        assert len(seconds) == len(STAGES)
        assert all(value >= 0.0 for value in seconds)

    def test_certificate_stage_skipped_when_disabled(self):
        events = []
        analysis = Analysis(
            COUNTDOWN,
            config=AnalysisConfig(check_certificates=False),
            observers=[lambda event, stage, seconds: events.append(stage)],
        )
        result = analysis.run("termite")
        assert result.proved
        assert "certificate" not in events

    def test_build_stages_fire_once_across_tools(self):
        events = []
        analysis = Analysis(
            COUNTDOWN,
            observers=[
                lambda event, stage, seconds: events.append(stage)
                if event == "start"
                else None
            ],
        )
        analysis.run("termite")
        analysis.run("heuristic")
        assert events.count("invariants") == 1
        assert events.count("synthesis") == 2


class TestProblemCache:
    def test_problem_is_cached_and_shared(self):
        analysis = Analysis(NESTED)
        first = analysis.problem()
        assert analysis.problem_built
        assert analysis.problem() is first
        analysis.run("heuristic")
        assert analysis.problem() is first

    def test_results_share_build_timings(self):
        analysis = Analysis(NESTED, config=AnalysisConfig(check_certificates=False))
        termite = analysis.run("termite")
        heuristic = analysis.run("heuristic")
        build = [(s.name, s.seconds) for s in termite.stages if s.name != "synthesis"]
        other = [(s.name, s.seconds) for s in heuristic.stages if s.name != "synthesis"]
        assert build == other
        assert analysis.build_seconds() > 0

    def test_automaton_input_records_zero_cost_frontend(self):
        automaton = compile_program(COUNTDOWN, "countdown")
        result = Analysis(automaton).run("termite")
        assert result.stage_seconds("frontend") == 0.0
        assert result.proved

    def test_matches_legacy_prover(self):
        automaton = compile_program(NESTED, "nested")
        legacy = TerminationProver(automaton).prove()
        modern = analyze(compile_program(NESTED, "nested"), tool="termite")
        assert legacy.proved == modern.proved is True
        assert legacy.dimension == modern.dimension

    def test_rejects_unknown_program_type(self):
        with pytest.raises(TypeError):
            Analysis(42)


class TestProjectionSavingsAttribution:
    def test_build_savings_reappear_in_every_result(self):
        # Like the shared build-stage timings, the LP calls the pruned
        # projection saved while building the problem belong to every
        # result of the Analysis, not just whichever tool ran first.
        analysis = Analysis(
            NESTED,
            config=AnalysisConfig(check_certificates=False),
            name="nested",
        )
        first = analysis.run("termite")
        second = analysis.run("heuristic")
        build_share = analysis._build_lp_saved
        assert build_share > 0
        assert first.lp_statistics.redundancy_lp_saved >= build_share
        assert second.lp_statistics.redundancy_lp_saved >= build_share


class TestBatchExecution:
    def test_run_tools_on_program_shares_one_build(self):
        results = run_tools_on_program(
            COUNTDOWN, ["termite", "heuristic", "dnf"],
            AnalysisConfig(check_certificates=False), name="countdown",
        )
        assert [r.tool for r in results] == ["termite", "heuristic", "dnf"]
        assert all(r.proved for r in results)
        builds = {
            tuple(
                (s.name, s.seconds) for s in r.stages if s.name != "synthesis"
            )
            for r in results
        }
        assert len(builds) == 1  # one shared problem build

    def test_build_failure_yields_error_result_per_tool(self):
        results = run_tools_on_program(
            "var x; while (", ["termite", "heuristic"], name="broken"
        )
        assert len(results) == 2
        assert all(r.status == "error" for r in results)
        assert all(r.error for r in results)

    def test_analyze_many_is_program_major_and_deterministic(self):
        inline = analyze_many(
            [COUNTDOWN, NESTED], tools=["heuristic", "dnf"],
            names=["countdown", "nested"],
        )
        assert [(r.program, r.tool) for r in inline] == [
            ("countdown", "heuristic"),
            ("countdown", "dnf"),
            ("nested", "heuristic"),
            ("nested", "dnf"),
        ]
        parallel = analyze_many(
            [COUNTDOWN, NESTED], tools=["heuristic", "dnf"],
            names=["countdown", "nested"], jobs=2, timeout=120,
        )
        assert [(r.program, r.tool, r.proved) for r in parallel] == [
            (r.program, r.tool, r.proved) for r in inline
        ]
