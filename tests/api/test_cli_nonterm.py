"""The nontermination surface of the ``repro`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.api import AnalysisResult

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

NONTERM = "var x; while (x >= 0) { x = x + 1; }"
TERM = "var x; while (x > 0) { x = x - 1; }"

#: Every trace line is exactly this CegisEvent shape.
TRACE_KEYS = {"kind", "component", "iteration", "payload"}


def run_cli(*args, stdin=None):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(SRC) + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=environment,
        cwd=str(REPO_ROOT),
        timeout=300,
    )


class TestProve:
    def test_nonterminating_exits_5_with_lasso(self):
        process = run_cli("prove", "-", "--nonterm", "auto", stdin=NONTERM)
        assert process.returncode == 5, process.stderr
        assert "nonterminating" in process.stdout
        assert "lasso witness" in process.stdout

    def test_json_result_round_trips_with_lasso(self):
        process = run_cli(
            "prove", "-", "--nonterm", "only", "--json", stdin=NONTERM
        )
        assert process.returncode == 5, process.stderr
        result = AnalysisResult.from_json(process.stdout)
        assert result.disproved
        assert result.lasso is not None
        assert AnalysisResult.from_json(result.to_json()) == result

    def test_terminating_still_exits_0_under_auto(self):
        process = run_cli("prove", "-", "--nonterm", "auto", stdin=TERM)
        assert process.returncode == 0, process.stderr

    def test_off_is_the_default(self):
        process = run_cli("prove", "-", stdin=NONTERM)
        assert process.returncode == 2

    def test_invalid_mode_is_a_usage_error(self):
        process = run_cli("prove", "-", "--nonterm", "race", stdin=NONTERM)
        assert process.returncode == 2
        assert "--nonterm" in process.stderr


class TestTrace:
    def test_trace_schema(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        process = run_cli(
            "prove",
            "-",
            "--nonterm",
            "auto",
            "--trace",
            str(trace),
            stdin=NONTERM,
        )
        assert process.returncode == 5, process.stderr
        lines = trace.read_text().splitlines()
        assert lines, "trace file is empty"
        events = [json.loads(line) for line in lines]
        for event in events:
            assert set(event) == TRACE_KEYS
            assert isinstance(event["kind"], str)
            assert isinstance(event["component"], int)
            assert isinstance(event["iteration"], int)
            assert isinstance(event["payload"], dict)
        assert any(event["kind"].startswith("nonterm_") for event in events)
        # Both race lanes flush their closing event; whichever lane loses
        # the race writes last, so only require that each lane closed.
        kinds = {event["kind"] for event in events}
        assert "nonterm_end" in kinds or "cancelled" in kinds

    def test_trace_on_termination_run_too(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        process = run_cli(
            "prove", "-", "--trace", str(trace), stdin=TERM
        )
        assert process.returncode == 0, process.stderr
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events
        assert all(set(event) == TRACE_KEYS for event in events)


class TestTraceStreaming:
    """The trace stream survives an engine that dies mid-iteration.

    Events are written and flushed one at a time inside a context
    manager, so a crash (or a cancelled race lane) still leaves a closed
    file of complete, individually parseable JSON lines — the buffered
    implementation used to leak the handle and truncate the final line.
    """

    def test_race_killed_early_leaves_complete_lines(self, tmp_path):
        # The nonterm lane wins quickly and cancels termination synthesis
        # mid-iteration; every line already on disk must parse.
        trace = tmp_path / "trace.jsonl"
        process = run_cli(
            "prove",
            "-",
            "--nonterm",
            "auto",
            "--max-iterations",
            "1",
            "--trace",
            str(trace),
            stdin=NONTERM,
        )
        assert process.returncode == 5, process.stderr
        text = trace.read_text()
        assert text.endswith("\n"), "final trace line is truncated"
        for line in text.splitlines():
            event = json.loads(line)  # every line parses individually
            assert set(event) == TRACE_KEYS

    def test_engine_crash_still_closes_and_flushes_the_trace(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        trace = tmp_path / "trace.jsonl"

        class _Event:
            kind = "candidate"
            component = 0
            iteration = 1
            payload = {"objective": "1"}

        def exploding_analyze(request, engine_observers=()):
            for observer in engine_observers:
                observer(_Event())
                observer(_Event())
            raise RuntimeError("engine died mid-iteration")

        monkeypatch.setattr(cli, "analyze", exploding_analyze)
        parser = cli.build_parser()
        arguments = parser.parse_args(
            ["prove", str(tmp_path / "prog.imp"), "--trace", str(trace)]
        )
        (tmp_path / "prog.imp").write_text(TERM)
        code = cli.command_prove(arguments)
        captured = capsys.readouterr()
        assert code == 1
        assert "engine died mid-iteration" in captured.err
        text = trace.read_text()
        lines = text.splitlines()
        assert len(lines) == 2  # both events hit the disk before the crash
        assert text.endswith("\n")
        for line in lines:
            assert set(json.loads(line)) == TRACE_KEYS

    def test_unwritable_trace_path_fails_before_analysis(self, tmp_path):
        trace = tmp_path / "missing" / "trace.jsonl"
        process = run_cli("prove", "-", "--trace", str(trace), stdin=TERM)
        assert process.returncode == 1
        assert "cannot write" in process.stderr


class TestCheck:
    def test_check_validates_a_nontermination_claim(self):
        process = run_cli("check", "-", "--nonterm", "only", stdin=NONTERM)
        assert process.returncode == 0, process.stdout + process.stderr
        assert "nonterminating" in process.stdout
        assert "1 disproved" in process.stdout

    def test_check_unknown_still_exits_2(self):
        process = run_cli("check", "-", stdin=NONTERM)
        assert process.returncode == 2
