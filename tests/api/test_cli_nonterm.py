"""The nontermination surface of the ``repro`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.api import AnalysisResult

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

NONTERM = "var x; while (x >= 0) { x = x + 1; }"
TERM = "var x; while (x > 0) { x = x - 1; }"

#: Every trace line is exactly this CegisEvent shape.
TRACE_KEYS = {"kind", "component", "iteration", "payload"}


def run_cli(*args, stdin=None):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(SRC) + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=environment,
        cwd=str(REPO_ROOT),
        timeout=300,
    )


class TestProve:
    def test_nonterminating_exits_5_with_lasso(self):
        process = run_cli("prove", "-", "--nonterm", "auto", stdin=NONTERM)
        assert process.returncode == 5, process.stderr
        assert "nonterminating" in process.stdout
        assert "lasso witness" in process.stdout

    def test_json_result_round_trips_with_lasso(self):
        process = run_cli(
            "prove", "-", "--nonterm", "only", "--json", stdin=NONTERM
        )
        assert process.returncode == 5, process.stderr
        result = AnalysisResult.from_json(process.stdout)
        assert result.disproved
        assert result.lasso is not None
        assert AnalysisResult.from_json(result.to_json()) == result

    def test_terminating_still_exits_0_under_auto(self):
        process = run_cli("prove", "-", "--nonterm", "auto", stdin=TERM)
        assert process.returncode == 0, process.stderr

    def test_off_is_the_default(self):
        process = run_cli("prove", "-", stdin=NONTERM)
        assert process.returncode == 2

    def test_invalid_mode_is_a_usage_error(self):
        process = run_cli("prove", "-", "--nonterm", "race", stdin=NONTERM)
        assert process.returncode == 2
        assert "--nonterm" in process.stderr


class TestTrace:
    def test_trace_schema(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        process = run_cli(
            "prove",
            "-",
            "--nonterm",
            "auto",
            "--trace",
            str(trace),
            stdin=NONTERM,
        )
        assert process.returncode == 5, process.stderr
        lines = trace.read_text().splitlines()
        assert lines, "trace file is empty"
        events = [json.loads(line) for line in lines]
        for event in events:
            assert set(event) == TRACE_KEYS
            assert isinstance(event["kind"], str)
            assert isinstance(event["component"], int)
            assert isinstance(event["iteration"], int)
            assert isinstance(event["payload"], dict)
        assert any(event["kind"].startswith("nonterm_") for event in events)
        # Both race lanes flush their closing event; whichever lane loses
        # the race writes last, so only require that each lane closed.
        kinds = {event["kind"] for event in events}
        assert "nonterm_end" in kinds or "cancelled" in kinds

    def test_trace_on_termination_run_too(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        process = run_cli(
            "prove", "-", "--trace", str(trace), stdin=TERM
        )
        assert process.returncode == 0, process.stderr
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert events
        assert all(set(event) == TRACE_KEYS for event in events)


class TestCheck:
    def test_check_validates_a_nontermination_claim(self):
        process = run_cli("check", "-", "--nonterm", "only", stdin=NONTERM)
        assert process.returncode == 0, process.stdout + process.stderr
        assert "nonterminating" in process.stdout
        assert "1 disproved" in process.stdout

    def test_check_unknown_still_exits_2(self):
        process = run_cli("check", "-", stdin=NONTERM)
        assert process.returncode == 2
