"""The prover registry: completeness, aliases, and soundness of every tool."""

import pytest

from repro.api import (
    AnalysisConfig,
    analyze,
    available_provers,
    canonical_name,
    get_prover,
    prover_summaries,
)

ALL_TOOLS = [
    "termite",
    "eager_farkas",
    "eager_generators",
    "podelski_rybalchenko",
    "heuristic",
    "dnf",
]

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
DIVERGING = "var x; assume(x >= 1); while (x > 0) { x = x + 1; }"


class TestRegistryCompleteness:
    def test_all_six_tools_registered(self):
        assert available_provers() == ALL_TOOLS

    def test_every_prover_has_a_summary(self):
        summaries = prover_summaries()
        assert set(summaries) == set(ALL_TOOLS)
        assert all(summaries.values())

    def test_get_prover_returns_named_prover(self):
        for name in ALL_TOOLS:
            assert get_prover(name).name == name

    def test_hyphen_aliases_resolve(self):
        assert canonical_name("eager-farkas") == "eager_farkas"
        assert canonical_name("eager-generators") == "eager_generators"
        assert canonical_name("podelski-rybalchenko") == "podelski_rybalchenko"
        assert get_prover("eager-farkas") is get_prover("eager_farkas")

    def test_unknown_tool_raises_key_error_listing_available(self):
        with pytest.raises(KeyError, match="termite"):
            get_prover("no-such-tool")


class TestEveryToolRuns:
    @pytest.mark.parametrize("tool", ALL_TOOLS)
    def test_countdown_proved_by_every_tool(self, tool):
        result = analyze(COUNTDOWN, tool=tool, name="countdown")
        assert result.tool == tool
        assert result.proved, "%s failed on the countdown loop" % tool

    @pytest.mark.parametrize("tool", ALL_TOOLS)
    def test_diverging_program_never_proved(self, tool):
        result = analyze(DIVERGING, tool=tool, name="diverging")
        assert not result.proved, "%s is unsound on a diverging loop" % tool

    def test_termite_certificate_checked_by_default(self):
        result = analyze(COUNTDOWN, tool="termite")
        assert result.certificate_checked

    def test_certificates_can_be_disabled(self):
        config = AnalysisConfig(check_certificates=False)
        result = analyze(COUNTDOWN, tool="termite", config=config)
        assert result.proved and not result.certificate_checked


class TestConfigForwarding:
    def test_max_dimension_caps_lexicographic_baselines(self):
        # listing1 needs two components under the per-disjunct dnf prover;
        # capping the dimension at 1 must make it give up, not overshoot.
        source = """
        var x, c;
        assume(x >= 0);
        while (x >= 0) {
            c = nondet();
            if (c >= 1) { x = x - 1; }
            if (c <= 0) { x = x - 1; }
        }
        """
        full = analyze(source, tool="dnf")
        assert full.proved and full.dimension == 2
        capped = analyze(
            source, tool="dnf", config=AnalysisConfig(max_dimension=1)
        )
        assert not capped.proved
