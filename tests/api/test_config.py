"""AnalysisConfig: validation, immutability, and exact JSON round-trips."""

import dataclasses
import json

import pytest

from repro.api import AnalysisConfig, ConfigError
from repro.smt.optimize import SearchMode


class TestValidation:
    def test_defaults_are_valid(self):
        config = AnalysisConfig()
        assert config.smt_mode == "local"
        assert config.lp_mode == "incremental"
        assert config.domain == "polyhedra"
        assert config.check_certificates and config.restrict_to_guarded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"smt_mode": "sideways"},
            {"lp_mode": "warm"},
            {"domain": "octagons"},
            {"max_iterations": 0},
            {"max_iterations": -3},
            {"max_iterations": "many"},
            {"max_iterations": True},
            {"max_dimension": 0},
            {"integer_mode": "yes"},
            {"check_certificates": 1},
            {"restrict_to_guarded": None},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AnalysisConfig(**kwargs)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            AnalysisConfig(lp_mode="warm")

    def test_frozen(self):
        config = AnalysisConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.lp_mode = "cold"

    def test_replace_revalidates(self):
        config = AnalysisConfig()
        assert config.replace(lp_mode="audit").lp_mode == "audit"
        with pytest.raises(ConfigError):
            config.replace(lp_mode="warm")

    def test_search_mode_view(self):
        assert AnalysisConfig(smt_mode="global").search_mode is SearchMode.GLOBAL


class TestSerialisation:
    def test_round_trip_is_exact(self):
        config = AnalysisConfig(
            smt_mode="global",
            lp_mode="audit",
            integer_mode=True,
            max_iterations=33,
            max_dimension=2,
            check_certificates=False,
            restrict_to_guarded=False,
            domain="intervals",
        )
        assert AnalysisConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config
        assert AnalysisConfig.from_json(config.to_json()) == config

    def test_default_round_trip(self):
        config = AnalysisConfig()
        assert AnalysisConfig.from_json(config.to_json()) == config

    def test_missing_keys_take_defaults(self):
        assert AnalysisConfig.from_dict({"lp_mode": "cold"}) == AnalysisConfig(
            lp_mode="cold"
        )

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown config keys: turbo"):
            AnalysisConfig.from_dict({"turbo": True})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            AnalysisConfig.from_json("{not json")

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            AnalysisConfig.from_dict(["lp_mode"])
