"""AnalysisResult: exact JSON round-trips, including rankings and stats."""

import json
from fractions import Fraction

import pytest

from repro.api import (
    AnalysisResult,
    AnalysisStatus,
    Provenance,
    StageTiming,
    analyze,
)
from repro.api.result import ranking_from_dict, ranking_to_dict
from repro.core.lp_instance import LpStatistics
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.vector import Vector

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"


def _sample_ranking() -> LexicographicRankingFunction:
    return LexicographicRankingFunction(
        [
            AffineRankingFunction(
                variables=("x", "y"),
                coefficients={
                    "k0": Vector([Fraction(11), Fraction(1)]),
                    "k1": Vector([Fraction(-2, 3), Fraction(0)]),
                },
                offsets={"k0": Fraction(-1), "k1": Fraction(5, 7)},
                strict=True,
            ),
            AffineRankingFunction(
                variables=("x", "y"),
                coefficients={"k0": Vector([Fraction(0), Fraction(1)])},
                offsets={"k0": Fraction(0)},
            ),
        ]
    )


class TestRankingSerialisation:
    def test_round_trip_is_exact(self):
        ranking = _sample_ranking()
        through_json = json.loads(json.dumps(ranking_to_dict(ranking)))
        assert ranking_from_dict(through_json) == ranking

    def test_fractions_survive_exactly(self):
        ranking = _sample_ranking()
        rebuilt = ranking_from_dict(ranking_to_dict(ranking))
        assert rebuilt.components[0].offsets["k1"] == Fraction(5, 7)
        assert rebuilt.components[0].coefficients["k1"][0] == Fraction(-2, 3)

    def test_empty_ranking(self):
        empty = LexicographicRankingFunction()
        assert ranking_from_dict(ranking_to_dict(empty)) == empty


class TestResultSerialisation:
    def test_synthetic_round_trip_is_exact(self):
        statistics = LpStatistics()
        statistics.record(5, 7)
        statistics.record_solve(3, warm=True)
        result = AnalysisResult(
            tool="termite",
            program="sample",
            status=AnalysisStatus.TERMINATING,
            ranking=_sample_ranking(),
            time_seconds=0.125,
            iterations=4,
            dimension=2,
            lp_statistics=statistics,
            certificate_checked=True,
            problem_statistics={"blocks": 2, "cutpoints": 1},
            stages=[StageTiming("invariants", 0.01), StageTiming("synthesis", 0.1)],
            message="all good",
            details={"disjuncts": 3},
        )
        rebuilt = AnalysisResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert AnalysisResult.from_json(result.to_json()) == result

    def test_failure_round_trip(self):
        result = AnalysisResult(
            tool="dnf",
            program="broken",
            status=AnalysisStatus.TIMEOUT,
            time_seconds=30.0,
            error="timeout after 30.0s",
            timed_out=True,
        )
        assert AnalysisResult.from_json(result.to_json()) == result

    def test_real_analysis_round_trips(self):
        result = analyze(COUNTDOWN, tool="termite", name="countdown")
        assert result.proved and result.ranking is not None
        rebuilt = AnalysisResult.from_json(result.to_json())
        assert rebuilt == result
        assert rebuilt.ranking.pretty() == result.ranking.pretty()

    def test_status_string_compatibility(self):
        # The enum inherits str: old-style string comparisons keep working.
        result = analyze(COUNTDOWN)
        assert result.status == "terminating"
        assert result.proved

    def test_derived_json_keys_present(self):
        document = analyze(COUNTDOWN).to_dict()
        assert document["proved"] is True
        assert document["time_ms"] > 0
        assert {"instances", "average_rows", "pivots"} <= set(document["lp"])

    def test_provenance_round_trips(self):
        result = AnalysisResult(
            tool="termite",
            program="sample",
            status=AnalysisStatus.TERMINATING,
            provenance=Provenance(
                cache="hit", key="ab" * 32, revalidated=True, worker_pid=42
            ),
        )
        rebuilt = AnalysisResult.from_json(result.to_json())
        assert rebuilt == result
        assert rebuilt.provenance.cache == "hit"
        assert rebuilt.provenance.revalidated is True
        assert rebuilt.provenance.worker_pid == 42

    def test_provenance_defaults_to_none(self):
        result = analyze(COUNTDOWN)
        assert result.provenance is None
        assert result.to_dict()["provenance"] is None
        assert AnalysisResult.from_json(result.to_json()).provenance is None

    def test_provenance_rejects_unknown_disposition(self):
        with pytest.raises(ValueError):
            Provenance(cache="maybe")

    def test_stage_seconds_helper(self):
        result = analyze(COUNTDOWN)
        stage_names = [stage.name for stage in result.stages]
        assert stage_names == [
            "frontend",
            "invariants",
            "cutset",
            "large_block",
            "synthesis",
            "certificate",
        ]
        assert result.time_seconds == sum(s.seconds for s in result.stages)
        assert result.stage_seconds("synthesis") > 0
