"""AnalysisRequest: validation, canonicalisation, keys, front doors."""

import json

import pytest

from repro.api import (
    AnalysisConfig,
    AnalysisRequest,
    RequestError,
    analyze,
    analyze_many,
    canonical_program_text,
)

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
PAIR = "var x, y; assume(y >= 1); while (x > 0) { x = x - y; }"


class TestCanonicalProgramText:
    def test_crlf_and_trailing_space_collapse(self):
        messy = "var x;\r\nwhile (x > 0) { x = x - 1; }   \r\n\r\n"
        assert canonical_program_text(messy) == (
            "var x;\nwhile (x > 0) { x = x - 1; }"
        )

    def test_leading_blank_lines_trimmed(self):
        assert canonical_program_text("\n\n" + COUNTDOWN) == COUNTDOWN

    def test_interior_structure_preserved(self):
        body = "var x;\n\n\nwhile (x > 0) { x = x - 1; }"
        assert canonical_program_text(body) == body


class TestConstruction:
    def test_defaults(self):
        request = AnalysisRequest(program=COUNTDOWN)
        assert request.tool == "termite"
        assert request.name == "program"
        assert request.request_id is None
        assert request.config == AnalysisConfig()

    def test_tool_name_canonicalised(self):
        assert AnalysisRequest(program=COUNTDOWN, tool="Termite").tool == (
            "termite"
        )

    def test_unknown_tool_rejected(self):
        with pytest.raises(RequestError):
            AnalysisRequest(program=COUNTDOWN, tool="no-such-prover")

    def test_non_string_program_rejected(self):
        with pytest.raises(RequestError):
            AnalysisRequest(program=42)

    def test_empty_program_rejected(self):
        with pytest.raises(RequestError):
            AnalysisRequest(program="   \n  ")

    def test_frozen(self):
        request = AnalysisRequest(program=COUNTDOWN)
        with pytest.raises(Exception):
            request.program = "other"

    def test_replace(self):
        request = AnalysisRequest(program=COUNTDOWN, name="a")
        other = request.replace(name="b")
        assert other.name == "b"
        assert other.program == request.program
        assert request.name == "a"


class TestJsonRoundTrip:
    def test_exact_round_trip(self):
        request = AnalysisRequest(
            program=PAIR,
            tool="termite",
            config=AnalysisConfig(integer_mode=True, oracle_seed=7),
            name="pair",
            request_id="req-1",
        )
        rebuilt = AnalysisRequest.from_json(request.to_json())
        assert rebuilt == request
        through = AnalysisRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert through == request

    def test_unknown_keys_rejected(self):
        with pytest.raises(RequestError):
            AnalysisRequest.from_dict({"program": COUNTDOWN, "bogus": 1})

    def test_missing_program_rejected(self):
        with pytest.raises(RequestError):
            AnalysisRequest.from_dict({"name": "x"})

    def test_config_document_accepted(self):
        request = AnalysisRequest.from_dict(
            {"program": COUNTDOWN, "config": {"integer_mode": True}}
        )
        assert request.config.integer_mode is True

    def test_null_config_and_name_default(self):
        request = AnalysisRequest.from_dict(
            {"program": COUNTDOWN, "config": None, "name": None}
        )
        assert request.config == AnalysisConfig()
        assert request.name == "program"


class TestCacheKey:
    def test_key_is_stable_hex(self):
        key = AnalysisRequest(program=COUNTDOWN).cache_key()
        assert len(key) == 64
        assert key == AnalysisRequest(program=COUNTDOWN).cache_key()

    def test_whitespace_variants_share_a_key(self):
        a = AnalysisRequest(program=COUNTDOWN)
        b = AnalysisRequest(program=COUNTDOWN + "   \r\n")
        assert a.cache_key() == b.cache_key()

    def test_name_and_request_id_excluded(self):
        a = AnalysisRequest(program=COUNTDOWN, name="a", request_id="1")
        b = AnalysisRequest(program=COUNTDOWN, name="b", request_id="2")
        assert a.cache_key() == b.cache_key()

    def test_config_changes_the_key(self):
        a = AnalysisRequest(program=COUNTDOWN)
        b = AnalysisRequest(
            program=COUNTDOWN, config=AnalysisConfig(oracle_seed=3)
        )
        assert a.cache_key() != b.cache_key()

    def test_program_changes_the_key(self):
        a = AnalysisRequest(program=COUNTDOWN)
        b = AnalysisRequest(program=PAIR)
        assert a.cache_key() != b.cache_key()


class TestAnalyzeFrontDoor:
    def test_analyze_accepts_a_request(self):
        result = analyze(AnalysisRequest(program=COUNTDOWN, name="countdown"))
        assert result.proved
        assert result.program == "countdown"
        assert result.provenance is None  # direct library call: no cache

    def test_analyze_rejects_conflicting_arguments(self):
        request = AnalysisRequest(program=COUNTDOWN)
        with pytest.raises(TypeError):
            analyze(request, config=AnalysisConfig())

    def test_analyze_many_accepts_requests(self):
        requests = [
            AnalysisRequest(program=COUNTDOWN, name="countdown"),
            AnalysisRequest(program=PAIR, name="pair"),
        ]
        results = analyze_many(requests)
        assert [r.program for r in results] == ["countdown", "pair"]
        assert all(r.proved for r in results)

    def test_analyze_many_rejects_mixed_lists(self):
        with pytest.raises(TypeError):
            analyze_many([AnalysisRequest(program=COUNTDOWN), COUNTDOWN])
