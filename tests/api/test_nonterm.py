"""Nontermination through the API: config knobs, results, pipeline, race."""

import json

import pytest

from repro.api import (
    AnalysisConfig,
    AnalysisResult,
    AnalysisStatus,
    Analysis,
    ConfigError,
    NONTERM_MODES,
    analyze,
    available_provers,
)

NONTERM = "var x; while (x >= 0) { x = x + 1; }"
TERM = "var x; while (x > 0) { x = x - 1; }"


class TestConfig:
    def test_default_is_off(self):
        config = AnalysisConfig()
        assert config.nonterm == "off"
        assert config.nonterm_budget == 64

    @pytest.mark.parametrize("mode", NONTERM_MODES)
    def test_modes_round_trip(self, mode):
        config = AnalysisConfig(nonterm=mode, nonterm_budget=7)
        replica = AnalysisConfig.from_json(config.to_json())
        assert replica == config

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigError):
            AnalysisConfig(nonterm="race")

    @pytest.mark.parametrize("budget", [0, -1, True, "many"])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(ConfigError):
            AnalysisConfig(nonterm_budget=budget)


class TestRegistry:
    def test_termite_advertises_nontermination(self):
        assert "termite" in available_provers("nontermination")

    def test_baselines_do_not(self):
        assert available_provers("nontermination") == ["termite"]


class TestResultSerialisation:
    def test_lasso_round_trips_exactly(self):
        result = analyze(NONTERM, config=AnalysisConfig(nonterm="only"))
        assert result.status is AnalysisStatus.NONTERMINATING
        assert result.lasso is not None
        document = json.loads(result.to_json())
        assert document["lasso"] == result.lasso.to_dict()
        replica = AnalysisResult.from_json(result.to_json())
        assert replica == result
        assert replica.lasso == result.lasso

    def test_lasso_key_absent_without_witness(self):
        result = analyze(TERM)
        assert "lasso" not in result.to_dict()

    def test_disproved_property(self):
        result = AnalysisResult(status="nonterminating")
        assert result.disproved and not result.proved


class TestPipeline:
    def test_only_mode_certifies_the_lasso(self):
        analysis = Analysis(NONTERM, config=AnalysisConfig(nonterm="only"))
        result = analysis.run("termite")
        assert result.status is AnalysisStatus.NONTERMINATING
        assert result.certificate_checked
        assert result.details["lasso_verdict"]["status"] == "valid"
        assert result.stage_seconds("certificate") >= 0
        assert any(stage.name == "certificate" for stage in result.stages)

    def test_only_mode_on_terminating_program_is_unknown(self):
        result = analyze(TERM, config=AnalysisConfig(nonterm="only"))
        assert result.status is AnalysisStatus.UNKNOWN
        assert result.lasso is None

    def test_off_mode_never_attaches_a_lasso(self):
        result = analyze(NONTERM)
        assert result.status is AnalysisStatus.UNKNOWN
        assert result.lasso is None

    def test_baseline_prover_ignores_nonterm(self):
        result = analyze(
            NONTERM, tool="heuristic", config=AnalysisConfig(nonterm="auto")
        )
        assert result.status is AnalysisStatus.UNKNOWN


class TestRace:
    def test_auto_mode_disproves_the_nonterminating_loop(self):
        result = analyze(NONTERM, config=AnalysisConfig(nonterm="auto"))
        assert result.status is AnalysisStatus.NONTERMINATING
        assert result.lasso is not None
        assert result.certificate_checked

    def test_auto_mode_still_proves_the_terminating_loop(self):
        result = analyze(TERM, config=AnalysisConfig(nonterm="auto"))
        assert result.status is AnalysisStatus.TERMINATING
        assert result.ranking is not None
        assert result.certificate_checked

    def test_auto_mode_unknown_keeps_both_messages(self):
        # Neither side can decide this one within the tiny budgets.
        source = (
            "var x, y; while (x + y > 0) "
            "{ x = nondet(); y = nondet(); assume(x + y < 100); }"
        )
        result = analyze(
            source,
            config=AnalysisConfig(
                nonterm="auto", max_iterations=3, nonterm_budget=1
            ),
        )
        assert result.status in (
            AnalysisStatus.UNKNOWN,
            AnalysisStatus.NONTERMINATING,
        )

    def test_acyclic_program_short_circuits(self):
        result = analyze("var x; x = 1;", config=AnalysisConfig(nonterm="auto"))
        assert result.status is AnalysisStatus.TERMINATING
