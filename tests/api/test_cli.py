"""Smoke tests of the ``python -m repro`` command line."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import AnalysisResult

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
LISTING1 = REPO_ROOT / "examples" / "listing1.imp"

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
DIVERGING = "var x; assume(x >= 1); while (x > 0) { x = x + 1; }"


def run_cli(*args, stdin=None):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(SRC) + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        env=environment,
        cwd=str(REPO_ROOT),
        timeout=300,
    )


class TestListProvers:
    def test_lists_all_six_tools(self):
        process = run_cli("list-provers")
        assert process.returncode == 0
        for name in [
            "termite",
            "eager_farkas",
            "eager_generators",
            "podelski_rybalchenko",
            "heuristic",
            "dnf",
        ]:
            assert name in process.stdout

    def test_json_output(self):
        process = run_cli("list-provers", "--json")
        assert process.returncode == 0
        document = json.loads(process.stdout)
        assert len(document["provers"]) == 6


class TestProve:
    def test_proves_the_paper_example_file(self):
        process = run_cli("prove", str(LISTING1))
        assert process.returncode == 0, process.stderr
        assert "terminating" in process.stdout
        assert "synthesis" in process.stdout  # stage breakdown printed

    def test_json_result_parses_and_round_trips(self):
        process = run_cli("prove", str(LISTING1), "--json", "--name", "listing1")
        assert process.returncode == 0, process.stderr
        result = AnalysisResult.from_json(process.stdout)
        assert result.proved and result.program == "listing1"
        assert AnalysisResult.from_json(result.to_json()) == result

    def test_reads_stdin(self):
        process = run_cli("prove", "-", "--tool", "dnf", stdin=COUNTDOWN)
        assert process.returncode == 0, process.stderr

    def test_unproved_program_exits_2(self):
        process = run_cli("prove", "-", stdin=DIVERGING)
        assert process.returncode == 2

    def test_unknown_tool_exits_1(self):
        process = run_cli("prove", "-", "--tool", "nope", stdin=COUNTDOWN)
        assert process.returncode == 1
        assert "unknown tool" in process.stderr

    def test_bad_config_value_rejected(self):
        process = run_cli(
            "prove", "-", "--max-iterations", "0", stdin=COUNTDOWN
        )
        assert process.returncode == 1
        assert "max_iterations" in process.stderr

    def test_missing_file_exits_1(self):
        process = run_cli("prove", "does-not-exist.imp")
        assert process.returncode == 1

    def test_config_file_baseline_with_flag_override(self, tmp_path):
        config_path = tmp_path / "config.json"
        config_path.write_text(
            '{"lp_mode": "cold", "check_certificates": false}'
        )
        process = run_cli(
            "prove", "-", "--json",
            "--config", str(config_path), "--lp-mode", "audit",
            stdin=COUNTDOWN,
        )
        assert process.returncode == 0, process.stderr
        result = json.loads(process.stdout)
        assert result["certificate_checked"] is False
        assert result["lp"]["cold_solves"] > 0  # audit shadow-solves cold


@pytest.mark.slow
class TestTable1Subcommand:
    def test_tiny_slice_runs(self, tmp_path):
        json_path = tmp_path / "table1.json"
        process = run_cli(
            "table1",
            "--suite", "sorts",
            "--tool", "heuristic", "--tool", "dnf",
            "--limit", "1",
            "--json", str(json_path),
        )
        assert process.returncode == 0, process.stderr
        document = json.loads(json_path.read_text())
        assert document["schema_version"] == 2
        assert document["totals"]["programs"] == 2
        assert document["totals"]["problem_sharing"]["rebuilds_avoided"] == 1
