"""Tests for the formula AST and smart constructors."""

import pytest

from repro.linexpr.expr import var
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Not,
    Or,
    TRUE,
    atom,
    conjunction,
    disjunction,
)


class TestSmartConstructors:
    def test_conjunction_flattens(self):
        formula = conjunction([var("x") <= 0, conjunction([var("y") <= 0, var("z") <= 0])])
        assert isinstance(formula, And)
        assert len(formula.operands) == 3

    def test_conjunction_identity(self):
        assert conjunction([]) is TRUE
        assert conjunction([TRUE, TRUE]) is TRUE

    def test_conjunction_annihilator(self):
        assert conjunction([var("x") <= 0, FALSE]) is FALSE

    def test_disjunction_flattens(self):
        formula = disjunction([var("x") <= 0, disjunction([var("y") <= 0])])
        assert isinstance(formula, Or) or isinstance(formula, Atom)

    def test_disjunction_identity(self):
        assert disjunction([]) is FALSE
        assert disjunction([FALSE]) is FALSE

    def test_disjunction_annihilator(self):
        assert disjunction([TRUE, var("x") <= 0]) is TRUE

    def test_single_operand_unwrapped(self):
        assert isinstance(conjunction([var("x") <= 0]), Atom)

    def test_atom_coercion(self):
        assert isinstance(atom(var("x") <= 0), Atom)
        assert atom(True) is TRUE
        assert atom(False) is FALSE
        with pytest.raises(TypeError):
            atom(42)


class TestOperators:
    def test_and_operator(self):
        formula = atom(var("x") <= 0) & (var("y") <= 0)
        assert isinstance(formula, And)

    def test_or_operator(self):
        formula = atom(var("x") <= 0) | (var("y") <= 0)
        assert isinstance(formula, Or)

    def test_invert(self):
        formula = ~atom(var("x") <= 0)
        assert isinstance(formula, Not)

    def test_children(self):
        inner = atom(var("x") <= 0)
        assert And([inner, inner]).children() == (inner, inner)
        assert Exists(["t"], inner).children() == (inner,)
        assert inner.children() == ()


class TestExists:
    def test_variables_recorded(self):
        formula = Exists(["a", "b"], var("a") <= var("x"))
        assert formula.variables == ("a", "b")

    def test_atom_required(self):
        assert isinstance(Exists(["a"], var("a") <= 0).body, Atom)
