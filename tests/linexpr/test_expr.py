"""Tests for affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.linexpr.expr import LinExpr, const, var

coeffs = st.fractions(min_value=-9, max_value=9, max_denominator=4)
exprs = st.builds(
    lambda a, b, c: LinExpr({"x": a, "y": b}, c), coeffs, coeffs, coeffs
)


class TestConstruction:
    def test_variable(self):
        assert var("x").terms == {"x": 1}

    def test_constant(self):
        assert const(5).constant_term == 5

    def test_zero_coefficients_dropped(self):
        assert LinExpr({"x": 0, "y": 2}).variables() == frozenset({"y"})

    def test_from_terms_sums_duplicates(self):
        expr = LinExpr.from_terms([("x", 1), ("x", 2)], 3)
        assert expr.coefficient("x") == 3
        assert expr.constant_term == 3


class TestArithmetic:
    def test_add(self):
        expr = var("x") + var("y") + 2
        assert expr.coefficient("x") == 1
        assert expr.constant_term == 2

    def test_sub(self):
        expr = var("x") - var("x")
        assert expr.is_constant()

    def test_rsub(self):
        expr = 5 - var("x")
        assert expr.coefficient("x") == -1
        assert expr.constant_term == 5

    def test_mul_div(self):
        expr = (var("x") * 3) / 2
        assert expr.coefficient("x") == Fraction(3, 2)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            var("x") / 0

    @given(exprs, exprs)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(exprs, coeffs)
    def test_scaling_distributes(self, a, k):
        assert (a + a) * k == a * k + a * k


class TestSubstitutionEvaluation:
    def test_substitute(self):
        expr = var("x") + 2 * var("y")
        substituted = expr.substitute({"y": var("x") + 1})
        assert substituted.coefficient("x") == 3
        assert substituted.constant_term == 2

    def test_rename(self):
        expr = (var("x") + var("y")).rename({"x": "z"})
        assert expr.variables() == frozenset({"z", "y"})

    def test_evaluate(self):
        expr = 2 * var("x") - var("y") + 1
        assert expr.evaluate({"x": 3, "y": 2}) == 5

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_coefficient_vector(self):
        expr = 2 * var("x") + 3 * var("z")
        assert list(expr.coefficient_vector(["x", "y", "z"])) == [2, 0, 3]


class TestComparisons:
    def test_le_builds_constraint(self):
        constraint = var("x") <= 3
        assert constraint.satisfied_by({"x": 3})
        assert not constraint.satisfied_by({"x": 4})

    def test_lt_is_strict(self):
        assert (var("x") < 3).is_strict()

    def test_ge_normalised(self):
        constraint = var("x") >= 3
        assert constraint.satisfied_by({"x": 3})
        assert not constraint.satisfied_by({"x": 2})

    def test_eq(self):
        constraint = var("x").eq(var("y"))
        assert constraint.satisfied_by({"x": 2, "y": 2})
        assert not constraint.satisfied_by({"x": 2, "y": 3})

    def test_structural_equality(self):
        assert var("x") + 1 == var("x") + 1
        assert hash(var("x")) == hash(var("x"))

    def test_str_round_trip_readable(self):
        text = str(2 * var("x") - var("y") + 3)
        assert "x" in text and "y" in text
