"""Tests for formula transformations (NNF, renaming, DNF, …)."""

import pytest

from repro.linexpr.expr import var
from repro.linexpr.formula import (
    Exists,
    FALSE,
    Not,
    Or,
    TRUE,
    conjunction,
    disjunction,
)
from repro.linexpr.transform import (
    dnf_conjunctions,
    formula_atoms,
    formula_size,
    formula_variables,
    negate_constraint,
    prime_suffix,
    rename_formula,
    substitute_formula,
    to_nnf,
)

x, y = var("x"), var("y")


class TestNnf:
    def test_double_negation(self):
        formula = to_nnf(Not(Not(x <= 0)))
        assert formula_atoms(formula) == [(x <= 0).normalized()]

    def test_de_morgan(self):
        formula = to_nnf(Not(conjunction([x <= 0, y <= 0])))
        assert isinstance(formula, Or)

    def test_negated_equality_splits(self):
        formula = to_nnf(Not(x.eq(0)))
        assert isinstance(formula, Or)
        assert len(formula.operands) == 2

    def test_constants(self):
        assert to_nnf(Not(TRUE)) is FALSE
        assert to_nnf(Not(FALSE)) is TRUE

    def test_negating_exists_rejected(self):
        with pytest.raises(ValueError):
            to_nnf(Not(Exists(["t"], x <= var("t"))))


class TestNegateConstraint:
    def test_le(self):
        negated = negate_constraint(x <= 0)
        atoms = formula_atoms(negated)
        assert len(atoms) == 1 and atoms[0].is_strict()

    def test_equality(self):
        assert isinstance(negate_constraint(x.eq(0)), Or)


class TestRenameSubstitute:
    def test_rename_free(self):
        renamed = rename_formula(conjunction([x <= 0, y <= 0]), {"x": "z"})
        assert "z" in formula_variables(renamed)
        assert "x" not in formula_variables(renamed)

    def test_rename_respects_binding(self):
        formula = Exists(["x"], x <= y)
        renamed = rename_formula(formula, {"x": "z"})
        assert "z" not in formula_variables(renamed)

    def test_substitute(self):
        formula = substitute_formula(conjunction([x <= 5]), {"x": y + 1})
        assert formula_variables(formula) == frozenset({"y"})

    def test_prime_suffix(self):
        assert prime_suffix("x") == "x'"


class TestQueries:
    def test_formula_variables(self):
        formula = conjunction([x <= 0, Exists(["t"], var("t") <= y)])
        assert formula_variables(formula) == frozenset({"x", "y"})

    def test_formula_atoms_dedup(self):
        formula = conjunction([x <= 0, disjunction([x <= 0, y <= 0])])
        assert len(formula_atoms(formula)) == 2

    def test_formula_size_counts_shared_once(self):
        shared = conjunction([x <= 0, y <= 0])
        formula = disjunction([shared, shared])
        assert formula_size(formula) == formula_size(shared) + 1


class TestDnf:
    def test_simple_or(self):
        conjunctions = dnf_conjunctions(disjunction([x <= 0, y <= 0]))
        assert len(conjunctions) == 2

    def test_distribution(self):
        formula = conjunction(
            [disjunction([x <= 0, x >= 5]), disjunction([y <= 0, y >= 5])]
        )
        assert len(dnf_conjunctions(formula)) == 4

    def test_false_disjunct_dropped(self):
        formula = disjunction([FALSE, x <= 0])
        assert len(dnf_conjunctions(formula)) == 1

    def test_true_gives_empty_conjunction(self):
        assert dnf_conjunctions(TRUE) == [[]]

    def test_exists_renames_bound_variables(self):
        formula = Exists(["t"], conjunction([var("t") >= 0, x <= var("t")]))
        (conjunct,) = dnf_conjunctions(formula)
        names = set()
        for constraint in conjunct:
            names |= constraint.variables()
        assert "t" not in names
        assert "x" in names
