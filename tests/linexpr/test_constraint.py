"""Tests for atomic constraints."""

from fractions import Fraction

import pytest

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import var


class TestBasics:
    def test_relations(self):
        assert (var("x") <= 0).relation is Relation.LE
        assert (var("x") < 0).relation is Relation.LT
        assert var("x").eq(0).relation is Relation.EQ

    def test_trivially_true_false(self):
        assert (var("x") * 0 <= 1).is_trivially_true()
        assert (var("x") * 0 >= 1).is_trivially_false()
        assert not (var("x") <= 1).is_trivially_true()

    def test_requires_linexpr(self):
        with pytest.raises(TypeError):
            Constraint("x", Relation.LE)


class TestTransformations:
    def test_negate_le(self):
        negated = (var("x") <= 3).negate()
        assert negated.is_strict()
        assert negated.satisfied_by({"x": 4})
        assert not negated.satisfied_by({"x": 3})

    def test_negate_equality_raises(self):
        with pytest.raises(ValueError):
            var("x").eq(0).negate()

    def test_weaken(self):
        assert not (var("x") < 0).weaken().is_strict()
        assert (var("x") <= 0).weaken().relation is Relation.LE

    def test_tighten_for_integers(self):
        tightened = (var("x") < 5).tighten_for_integers()
        assert tightened.relation is Relation.LE
        assert tightened.satisfied_by({"x": 4})
        assert not tightened.satisfied_by({"x": 5})

    def test_tighten_skips_fractional(self):
        constraint = Constraint(var("x") * Fraction(1, 2), Relation.LT)
        assert constraint.tighten_for_integers().is_strict()

    def test_normalized(self):
        constraint = (2 * var("x") + 4 * var("y") <= 6).normalized()
        assert constraint.expr.coefficient("x") == 1
        assert constraint.expr.constant_term == -3

    def test_substitute_and_rename(self):
        constraint = (var("x") + var("y") <= 0).rename({"x": "z"})
        assert "z" in constraint.variables()
        substituted = constraint.substitute({"z": var("y")})
        assert substituted.variables() == frozenset({"y"})


class TestEvaluation:
    def test_satisfied_by_le(self):
        assert (var("x") - 1 <= 0).satisfied_by({"x": 1})

    def test_satisfied_by_strict(self):
        assert not (var("x") < 0).satisfied_by({"x": 0})

    def test_satisfied_by_eq(self):
        assert (var("x") - var("y")).eq(0).satisfied_by({"x": 7, "y": 7})

    def test_homogeneous_row(self):
        row = (2 * var("x") - var("y") + 3 <= 0).homogeneous_row(("x", "y"))
        assert row == (2, -1, 3)
