"""The interned canonical normal form of constraints."""

from fractions import Fraction

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr, var

x, y = var("x"), var("y")


class TestCanonicalInterning:
    def test_scalar_multiples_normalise_to_the_same_object(self):
        first = (2 * x <= 4).normalized()
        second = (3 * x <= 6).normalized()
        assert first is second

    def test_different_routes_same_object(self):
        from_guard = (x + y <= 1).normalized()
        from_parts = Constraint(
            LinExpr({"x": Fraction(2), "y": Fraction(2)}, Fraction(-2)),
            Relation.LE,
        ).normalized()
        assert from_guard is from_parts

    def test_normalized_is_idempotent_and_cached(self):
        constraint = Fraction(1, 2) * x <= Fraction(3, 2)
        canonical = constraint.normalized()
        assert canonical.normalized() is canonical
        assert constraint.normalized() is canonical

    def test_already_canonical_instance_interns_itself(self):
        constraint = x - y <= 0
        assert constraint.normalized() is constraint.normalized()
        # A primitive-integer constraint is its own canonical form.
        assert constraint.normalized().expr == constraint.expr

    def test_relations_do_not_collide(self):
        le = (x <= 1).normalized()
        lt = (x < 1).normalized()
        eq = x.eq(1).normalized()
        assert len({le.relation, lt.relation, eq.relation}) == 3
        assert le is not lt

    def test_structural_equality_unchanged(self):
        # Interning must not weaken equality semantics: x ≤ 1 and
        # 2x ≤ 2 stay structurally different until normalised.
        assert (x <= 1) != (2 * x <= 2)
        assert (x <= 1).normalized() == (2 * x <= 2).normalized()

    def test_hash_stable_and_cached(self):
        constraint = x + 2 * y <= 3
        assert hash(constraint) == hash(constraint)
        twin = x + 2 * y <= 3
        assert constraint == twin
        assert hash(constraint) == hash(twin)

    def test_direction_preserved(self):
        forward = (x <= 1).normalized()
        backward = (-1 * x <= -1).normalized()  # i.e. x >= 1
        assert forward is not backward
