"""Tests for the linear-arithmetic theory solver."""



from repro.linexpr.expr import var
from repro.smt.theory import check_conjunction

x, y = var("x"), var("y")


class TestSatisfiable:
    def test_simple(self):
        result = check_conjunction([x >= 0, x <= 5])
        assert result.satisfiable
        assert 0 <= result.model["x"] <= 5

    def test_strict_rational(self):
        result = check_conjunction([x > 0, x < 1])
        assert result.satisfiable
        assert 0 < result.model["x"] < 1

    def test_strict_integer_tightened(self):
        result = check_conjunction([x > 0, x < 2], integer_variables={"x"})
        assert result.satisfiable
        assert result.model["x"] == 1

    def test_integer_model_integral(self):
        result = check_conjunction(
            [2 * x >= 1, 2 * x <= 5], integer_variables={"x"}
        )
        assert result.satisfiable
        assert result.model["x"].denominator == 1

    def test_model_satisfies_all(self):
        constraints = [x + y <= 4, x - y >= 1, y >= 0]
        result = check_conjunction(constraints)
        assert result.satisfiable
        for constraint in constraints:
            assert constraint.satisfied_by(result.model)


class TestUnsatisfiable:
    def test_simple_conflict(self):
        result = check_conjunction([x >= 1, x <= 0])
        assert not result.satisfiable

    def test_strict_boundary(self):
        result = check_conjunction([x > 0, x < 0])
        assert not result.satisfiable

    def test_strict_rational_gap(self):
        # 0 < x < 1 has no integer solution.
        result = check_conjunction([x > 0, x < 1], integer_variables={"x"})
        assert not result.satisfiable

    def test_trivially_false(self):
        result = check_conjunction([x * 0 >= 1])
        assert not result.satisfiable
        assert result.core == [0]

    def test_core_is_unsat_and_minimal(self):
        constraints = [x >= 0, y >= 0, x <= 5, x >= 10]
        result = check_conjunction(constraints, minimize_core=True)
        assert not result.satisfiable
        core = [constraints[i] for i in result.core]
        assert not check_conjunction(core, minimize_core=False).satisfiable
        assert len(core) == 2

    def test_core_without_minimisation_covers_conflict(self):
        constraints = [x >= 10, x <= 5]
        result = check_conjunction(constraints, minimize_core=False)
        subset = [constraints[i] for i in result.core]
        assert not check_conjunction(subset, minimize_core=False).satisfiable
