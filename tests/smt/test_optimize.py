"""Tests for the optimisation-modulo-theory layer."""



from repro.linexpr.expr import var
from repro.linexpr.formula import And, Or
from repro.smt.optimize import OptimizingSmtSolver, SearchMode

x, y = var("x"), var("y")


def example1_solver(mode="global"):
    xp, yp = var("x'"), var("y'")
    tau = Or(
        [
            And([x <= 10, y >= 0, xp.eq(x + 1), yp.eq(y - 1)]),
            And([x >= 0, y >= 0, xp.eq(x - 1), yp.eq(y - 1)]),
        ]
    )
    invariant = And([x + 1 >= 0, x <= 11, y + 1 >= 0, y <= x + 5, x + y <= 15])
    solver = OptimizingSmtSolver(mode=mode)
    solver.assert_formula(invariant)
    solver.assert_formula(tau)
    return solver


class TestMinimize:
    def test_simple_minimum(self):
        solver = OptimizingSmtSolver()
        solver.assert_formula(And([x >= 3, x <= 9]))
        result = solver.minimize(x)
        assert result.is_sat
        assert result.objective_value == 3

    def test_global_searches_all_disjuncts(self):
        solver = OptimizingSmtSolver(mode=SearchMode.GLOBAL)
        solver.assert_formula(Or([And([x >= 5, x <= 6]), And([x >= 1, x <= 2])]))
        assert solver.minimize(x).objective_value == 1

    def test_local_stays_in_one_disjunct(self):
        solver = OptimizingSmtSolver(mode=SearchMode.LOCAL)
        solver.assert_formula(Or([And([x >= 5, x <= 6]), And([x >= 1, x <= 2])]))
        result = solver.minimize(x)
        assert result.objective_value in (1, 5)

    def test_unsat(self):
        solver = OptimizingSmtSolver()
        solver.assert_formula(And([x >= 1, x <= 0]))
        assert solver.minimize(x).is_unsat

    def test_unbounded_gives_ray(self):
        solver = OptimizingSmtSolver()
        solver.assert_formula(And([x <= 0, Or([y >= 0, y <= -1])]))
        result = solver.minimize(x)
        assert result.unbounded
        assert result.ray.get("x", 0) < 0

    def test_integer_minimisation(self):
        solver = OptimizingSmtSolver(integer_variables=["x"])
        solver.assert_formula(And([2 * x >= 1, x <= 3]))
        assert solver.minimize(x).objective_value == 1

    def test_strict_constraints_respected(self):
        solver = OptimizingSmtSolver()
        solver.assert_formula(And([x >= -5, x <= 5, Or([x > 0, x < 0])]))
        result = solver.minimize(x)
        assert result.is_sat
        assert result.model["x"] != 0

    def test_check_without_objective(self):
        solver = OptimizingSmtSolver()
        solver.assert_formula(x >= 2)
        assert solver.check().is_sat


class TestPaperExample1Queries:
    def test_y_decreases_by_one(self):
        solver = example1_solver()
        result = solver.minimize(y - var("y'"))
        assert result.objective_value == 1
        assert not result.unbounded

    def test_candidate_y_plus_one_is_strict(self):
        solver = example1_solver()
        solver.assert_formula((y - var("y'")) <= 0)
        assert solver.check().is_unsat

    def test_x_can_increase(self):
        solver = example1_solver()
        result = solver.minimize(x - var("x'"))
        assert result.objective_value == -1
