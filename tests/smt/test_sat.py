"""Tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SatSolver


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(lit) - 1] if lit > 0 else not bits[abs(lit) - 1] for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def make_solver(num_vars, clauses):
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_variable()
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    return solver, ok


class TestBasics:
    def test_single_unit(self):
        solver, _ = make_solver(1, [[1]])
        assert solver.solve() == {1: True}

    def test_contradiction(self):
        solver, ok = make_solver(1, [[1], [-1]])
        assert not ok or solver.solve() is None

    def test_empty_clause_rejected(self):
        solver, ok = make_solver(1, [[]])
        assert not ok

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        solver.new_variable()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_tautology_ignored(self):
        solver, ok = make_solver(1, [[1, -1]])
        assert ok and solver.solve() is not None

    def test_implication_chain(self):
        clauses = [[1], [-1, 2], [-2, 3], [-3, 4]]
        solver, _ = make_solver(4, clauses)
        model = solver.solve()
        assert model == {1: True, 2: True, 3: True, 4: True}

    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: unsatisfiable.
        clauses = [[1], [2], [-1, -2]]
        solver, ok = make_solver(2, clauses)
        assert not ok or solver.solve() is None

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        solver, _ = make_solver(3, clauses)
        model = solver.solve()
        assert model is not None
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)

    def test_assumptions_conflict(self):
        solver, _ = make_solver(2, [[1, 2]])
        assert solver.solve(assumptions=[-1, -2]) is None
        assert solver.solve() is not None

    def test_incremental_clause_addition(self):
        solver, _ = make_solver(2, [[1, 2]])
        assert solver.solve() is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None


clause_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=5).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=14,
)


class TestAgainstBruteForce:
    @given(clause_strategy)
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_truth_table(self, clauses):
        solver, ok = make_solver(5, clauses)
        expected = brute_force(5, clauses)
        if not ok:
            assert not expected
            return
        model = solver.solve()
        assert (model is not None) == expected
        if model is not None:
            for clause in clauses:
                assert any(model[abs(lit)] == (lit > 0) for lit in clause)
