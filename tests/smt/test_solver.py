"""Tests for the lazy DPLL(T) solver."""


from repro.linexpr.expr import var
from repro.linexpr.formula import And, Exists, Or
from repro.smt.solver import SmtSolver

x, y, z = var("x"), var("y"), var("z")


class TestSat:
    def test_conjunction(self):
        solver = SmtSolver()
        solver.assert_formula(And([x >= 0, x <= 5, y.eq(x + 1)]))
        result = solver.check()
        assert result.is_sat
        assert result.model["y"] == result.model["x"] + 1

    def test_disjunction_picks_feasible_branch(self):
        solver = SmtSolver()
        solver.assert_formula(And([x >= 3, Or([x <= 1, x <= 10])]))
        result = solver.check()
        assert result.is_sat
        assert result.model["x"] >= 3

    def test_bare_constraint_accepted(self):
        solver = SmtSolver()
        solver.assert_formula(x >= 7)
        assert solver.check().model["x"] >= 7

    def test_existential(self):
        solver = SmtSolver()
        solver.assert_formula(Exists(["t"], And([var("t") >= 0, x.eq(var("t") + 1)])))
        result = solver.check()
        assert result.is_sat
        assert result.model["x"] >= 1

    def test_integer_variables(self):
        solver = SmtSolver(integer_variables=["x"])
        solver.assert_formula(And([2 * x >= 1, 2 * x <= 3]))
        result = solver.check()
        assert result.is_sat
        assert result.model["x"] == 1

    def test_model_covers_free_variables(self):
        solver = SmtSolver()
        solver.assert_formula(Or([x >= 0, y >= 0]))
        model = solver.check().model
        assert "x" in model and "y" in model


class TestUnsat:
    def test_conjunction_conflict(self):
        solver = SmtSolver()
        solver.assert_formula(And([x >= 3, Or([x <= 1, x <= 2])]))
        assert solver.check().is_unsat

    def test_boolean_level_conflict(self):
        solver = SmtSolver()
        solver.assert_formula(x >= 1)
        solver.assert_formula(x <= 0)
        assert solver.check().is_unsat

    def test_integer_gap(self):
        solver = SmtSolver(integer_variables=["x"])
        solver.assert_formula(And([3 * x >= 1, 3 * x <= 2]))
        assert solver.check().is_unsat

    def test_statistics_recorded(self):
        solver = SmtSolver()
        solver.assert_formula(And([x >= 3, Or([x <= 1, x <= 2])]))
        solver.check()
        assert solver.statistics["theory_calls"] >= 1


class TestEnumeration:
    def test_enumerate_disjuncts(self):
        solver = SmtSolver()
        solver.assert_formula(Or([And([x >= 0, x <= 1]), And([x >= 10, x <= 11])]))
        regions = []
        for constraints, model in solver.enumerate_assignments():
            regions.append(model["x"])
        assert len(regions) >= 2
        assert any(value <= 1 for value in regions)
        assert any(value >= 10 for value in regions)

    def test_enumeration_terminates_on_unsat(self):
        solver = SmtSolver()
        solver.assert_formula(And([x >= 1, x <= 0]))
        assert list(solver.enumerate_assignments()) == []
