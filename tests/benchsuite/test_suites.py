"""Tests for the benchmark suites and the reporting harness."""

import pytest

from repro.benchsuite import get_suite, suite_names
from repro.benchsuite.registry import get_program
from repro.program.cutset import compute_cutset
from repro.reporting import format_table, run_suite
from repro.reporting.table import TABLE1_HEADERS, format_table1_row


class TestSuiteShapes:
    def test_suite_sizes_match_paper(self):
        assert len(get_suite("polybench")) == 30
        assert len(get_suite("sorts")) == 6
        assert len(get_suite("termcomp")) == 129
        assert len(get_suite("wtc")) == 58

    def test_names_unique_within_suite(self):
        for suite in suite_names():
            names = [program.name for program in get_suite(suite)]
            assert len(names) == len(set(names))

    def test_unknown_suite(self):
        with pytest.raises(KeyError):
            get_suite("nope")

    def test_lookup_single_program(self):
        program = get_program("wtc", "easy1")
        assert program.terminating

    def test_every_suite_contains_nonterminating_controls(self):
        for suite in ("termcomp", "wtc"):
            assert any(not p.terminating for p in get_suite(suite))

    @pytest.mark.parametrize("suite", suite_names())
    def test_all_programs_compile(self, suite):
        for program in get_suite(suite):
            automaton = program.build()
            assert automaton.variables
            assert automaton.transitions

    def test_loopy_programs_have_cutsets(self):
        for program in get_suite("sorts"):
            automaton = program.build()
            assert compute_cutset(automaton)


class TestReporting:
    def test_run_suite_quick(self):
        programs = get_suite("termcomp")[10:13]  # three tiny countdown loops
        report = run_suite("termcomp", programs, tool="termite")
        assert report.total == 3
        assert report.successes >= 2
        assert not report.unsound

    def test_heuristic_tool(self):
        programs = get_suite("termcomp")[10:12]
        report = run_suite("termcomp", programs, tool="heuristic")
        assert report.total == 2

    def test_unknown_tool(self):
        with pytest.raises(KeyError):
            run_suite("termcomp", [], tool="does-not-exist")

    def test_table_rendering(self):
        programs = get_suite("termcomp")[10:12]
        report = run_suite("termcomp", programs, tool="termite")
        row = format_table1_row(report)
        text = format_table(TABLE1_HEADERS, [row])
        assert "termcomp" in text
        assert "termite" in text
