"""The content-addressed cache: hits, revalidation, eviction, soundness."""

import pytest

from repro.api import AnalysisConfig, AnalysisRequest, analyze
from repro.api.result import AnalysisResult, AnalysisStatus
from repro.service import ResultCache

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
PAIR = "var x, y; assume(y >= 1); while (x > 0) { x = x - y; }"
STRAIGHT = "var x; x = 1;"


def _request(program=COUNTDOWN, **kwargs) -> AnalysisRequest:
    return AnalysisRequest(program=program, **kwargs)


def _computed(request: AnalysisRequest) -> AnalysisResult:
    return analyze(request.program, config=request.config, name=request.name)


class TestMissStoreHit:
    def test_empty_cache_misses(self):
        cache = ResultCache()
        assert cache.lookup(_request()) is None
        assert cache.stats().misses == 1

    def test_store_then_hit_with_provenance(self):
        cache = ResultCache()
        request = _request(name="countdown")
        assert cache.store(request, _computed(request))
        hit = cache.lookup(request)
        assert hit is not None and hit.proved
        assert hit.provenance.cache == "hit"
        assert hit.provenance.key == request.cache_key()
        assert hit.provenance.revalidated is True
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.revalidations) == (1, 0, 1)
        assert stats.revalidation_failures == 0

    def test_hits_are_fresh_deserialisations(self):
        cache = ResultCache()
        request = _request()
        cache.store(request, _computed(request))
        first = cache.lookup(request)
        first.message = "mutated by one caller"
        second = cache.lookup(request)
        assert second.message != "mutated by one caller"

    def test_whitespace_variant_shares_the_entry(self):
        cache = ResultCache()
        request = _request()
        cache.store(request, _computed(request))
        assert cache.lookup(_request(COUNTDOWN + "  \r\n")) is not None

    def test_config_variant_misses(self):
        cache = ResultCache()
        request = _request()
        cache.store(request, _computed(request))
        other = _request(config=AnalysisConfig(oracle_seed=9))
        assert cache.lookup(other) is None

    def test_error_results_never_cached(self):
        cache = ResultCache()
        request = _request()
        failure = AnalysisResult(
            tool="termite",
            program="broken",
            status=AnalysisStatus.ERROR,
            error="boom",
        )
        assert not cache.store(request, failure)
        assert len(cache) == 0
        timeout = AnalysisResult(
            tool="termite",
            program="slow",
            status=AnalysisStatus.TIMEOUT,
            timed_out=True,
        )
        assert not cache.store(request, timeout)


class TestRevalidation:
    def test_problem_memoised_across_hits(self):
        cache = ResultCache()
        request = _request()
        cache.store(request, _computed(request))
        cache.lookup(request)
        cache.lookup(request)
        stats = cache.stats()
        assert stats.revalidations == 2
        assert stats.problems_resident == 1

    def test_corrupted_certificate_is_not_served(self):
        # Store countdown's proof under the *pair* program's key: the
        # checker must refuse to re-validate it, and the entry must die.
        cache = ResultCache()
        countdown = _request()
        pair = _request(PAIR)
        proof_of_wrong_program = _computed(countdown)
        cache.store(pair, proof_of_wrong_program)
        assert cache.lookup(pair) is None
        stats = cache.stats()
        assert stats.revalidation_failures == 1
        assert len(cache) == 0

    def test_acyclic_program_is_vacuously_revalidated(self):
        cache = ResultCache()
        request = _request(STRAIGHT)
        cache.store(request, _computed(request))
        hit = cache.lookup(request)
        assert hit is not None
        assert hit.provenance.revalidated is True

    def test_unproved_results_served_without_checking(self):
        cache = ResultCache()
        request = _request()
        unknown = AnalysisResult(
            tool="termite",
            program="program",
            status=AnalysisStatus.UNKNOWN,
        )
        cache.store(request, unknown)
        hit = cache.lookup(request)
        assert hit is not None
        assert hit.provenance.revalidated is False
        assert cache.stats().revalidations == 0

    def test_revalidation_can_be_disabled(self):
        cache = ResultCache(revalidate=False)
        request = _request()
        cache.store(request, _computed(request))
        hit = cache.lookup(request)
        assert hit is not None
        assert hit.provenance.revalidated is False
        assert cache.stats().revalidations == 0


class TestNonterminationRevalidation:
    NONTERM = "var x; while (x >= 0) { x = x + 1; }"

    def _nonterm_request(self) -> AnalysisRequest:
        return _request(
            self.NONTERM, config=AnalysisConfig(nonterm="only")
        )

    def test_lasso_replayed_on_every_hit(self):
        cache = ResultCache()
        request = self._nonterm_request()
        result = _computed(request)
        assert result.status is AnalysisStatus.NONTERMINATING
        cache.store(request, result)
        hit = cache.lookup(request)
        assert hit is not None and hit.disproved
        assert hit.lasso is not None
        assert hit.provenance.revalidated is True
        cache.lookup(request)
        stats = cache.stats()
        assert stats.revalidations == 2
        assert stats.revalidation_failures == 0
        # The rebuilt automaton is memoised on the entry.
        entry = cache._entries[request.cache_key()]
        assert entry.automaton is not None

    def test_corrupted_lasso_is_not_served(self):
        cache = ResultCache()
        request = self._nonterm_request()
        cache.store(request, _computed(request))
        entry = cache._entries[request.cache_key()]
        entry.result["lasso"]["cutpoint"] = "no_such_location"
        assert cache.lookup(request) is None
        stats = cache.stats()
        assert stats.revalidation_failures == 1
        assert len(cache) == 0

    def test_nonterminating_claim_without_lasso_is_refused(self):
        cache = ResultCache()
        request = self._nonterm_request()
        bare = AnalysisResult(
            tool="termite",
            program=self.NONTERM,
            status=AnalysisStatus.NONTERMINATING,
        )
        cache.store(request, bare)
        assert cache.lookup(request) is None
        assert cache.stats().revalidation_failures == 1

    def test_revalidation_can_be_disabled_for_lassos_too(self):
        cache = ResultCache(revalidate=False)
        request = self._nonterm_request()
        cache.store(request, _computed(request))
        hit = cache.lookup(request)
        assert hit is not None
        assert hit.provenance.revalidated is False
        assert cache.stats().revalidations == 0


class TestEviction:
    def test_lru_bound_holds(self):
        cache = ResultCache(max_entries=2, revalidate=False)
        requests = [
            _request(),
            _request(PAIR),
            _request(STRAIGHT),
        ]
        result = _computed(requests[0])
        for request in requests:
            cache.store(request, result)
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        assert requests[0] not in cache  # oldest evicted
        assert requests[1] in cache and requests[2] in cache

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2, revalidate=False)
        a, b, c = _request(), _request(PAIR), _request(STRAIGHT)
        result = _computed(a)
        cache.store(a, result)
        cache.store(b, result)
        cache.lookup(a)  # a is now most recent
        cache.store(c, result)
        assert a in cache and c in cache and b not in cache

    def test_clear(self):
        cache = ResultCache(revalidate=False)
        request = _request()
        cache.store(request, _computed(request))
        cache.clear()
        assert len(cache) == 0


class TestValidation:
    def test_max_entries_floor(self):
        assert ResultCache(max_entries=0).max_entries == 1

    def test_contains_uses_content_address(self):
        cache = ResultCache(revalidate=False)
        request = _request(name="a")
        cache.store(request, _computed(request))
        assert _request(name="b") in cache

    def test_stats_snapshot_is_detached(self):
        cache = ResultCache()
        snapshot = cache.stats()
        cache.lookup(_request())
        assert snapshot.misses == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
