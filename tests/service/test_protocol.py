"""The JSON-RPC layer: every failure mode yields an error *response*."""

import json

import pytest

from repro.service import (
    ANALYSIS_ERROR,
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    PROGRAM_TOO_LARGE,
    SHUTTING_DOWN,
    InlineExecutor,
    ResultCache,
    ServiceProtocol,
)

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"


@pytest.fixture
def protocol() -> ServiceProtocol:
    return ServiceProtocol(InlineExecutor(cache=ResultCache()))


def rpc(method, params=None, request_id=1):
    message = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        message["params"] = params
    return json.dumps(message)


def ask(protocol, line):
    response = protocol.handle_line(line)
    return None if response is None else json.loads(response)


class TestEnvelopeErrors:
    def test_malformed_json_is_a_parse_error(self, protocol):
        response = ask(protocol, '{"jsonrpc": "2.0", "id": 1,')
        assert response["error"]["code"] == PARSE_ERROR
        assert response["id"] is None

    def test_invalid_utf8_is_a_parse_error(self, protocol):
        response = ask(protocol, b'\xff\xfe{"jsonrpc": "2.0"}')
        assert response["error"]["code"] == PARSE_ERROR

    def test_non_object_request(self, protocol):
        response = ask(protocol, "[1, 2, 3]")
        assert response["error"]["code"] == INVALID_REQUEST

    def test_wrong_jsonrpc_version(self, protocol):
        response = ask(protocol, json.dumps({"id": 1, "method": "analyze"}))
        assert response["error"]["code"] == INVALID_REQUEST

    def test_unknown_method(self, protocol):
        response = ask(protocol, rpc("frobnicate"))
        assert response["error"]["code"] == METHOD_NOT_FOUND
        assert "analyze" in response["error"]["message"]

    def test_non_string_method(self, protocol):
        response = ask(
            protocol, json.dumps({"jsonrpc": "2.0", "id": 1, "method": 7})
        )
        assert response["error"]["code"] == INVALID_REQUEST

    def test_positional_params_rejected(self, protocol):
        response = ask(protocol, rpc("analyze", params_list(COUNTDOWN)))
        assert response["error"]["code"] == INVALID_PARAMS

    def test_blank_line_ignored(self, protocol):
        assert protocol.handle_line("   \n") is None

    def test_notification_gets_no_response(self, protocol):
        line = json.dumps({"jsonrpc": "2.0", "method": "cache_stats"})
        assert protocol.handle_line(line) is None


def params_list(program):
    # JSON-RPC by-position params: this service only speaks by-name.
    return [program]


class TestAnalyze:
    def test_analyze_round_trip(self, protocol):
        response = ask(
            protocol, rpc("analyze", {"program": COUNTDOWN, "name": "c"})
        )
        result = response["result"]
        assert result["status"] == "terminating"
        assert result["provenance"]["cache"] == "miss"

    def test_second_call_is_a_revalidated_hit(self, protocol):
        ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        response = ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        provenance = response["result"]["provenance"]
        assert provenance["cache"] == "hit"
        assert provenance["revalidated"] is True

    def test_invalid_request_document(self, protocol):
        response = ask(protocol, rpc("analyze", {"program": COUNTDOWN, "x": 1}))
        assert response["error"]["code"] == INVALID_PARAMS

    def test_unparsable_program_is_an_analysis_error(self, protocol):
        response = ask(
            protocol, rpc("analyze", {"program": "while (x > 0) { }"})
        )
        assert response["error"]["code"] == ANALYSIS_ERROR

    def test_oversized_program_rejected(self):
        protocol = ServiceProtocol(InlineExecutor(), max_program_bytes=64)
        big = COUNTDOWN + " " * 100
        response = ask(protocol, rpc("analyze", {"program": big}))
        assert response["error"]["code"] == PROGRAM_TOO_LARGE
        assert response["error"]["data"]["limit"] == 64

    def test_responses_carry_the_request_id(self, protocol):
        response = ask(
            protocol,
            rpc("analyze", {"program": COUNTDOWN}, request_id="alpha-7"),
        )
        assert response["id"] == "alpha-7"


class TestBatch:
    def test_batch_stays_rectangular(self, protocol):
        params = {
            "requests": [
                {"program": COUNTDOWN, "name": "good"},
                {"program": "while (x) { }", "name": "bad"},
            ]
        }
        response = ask(protocol, rpc("analyze_batch", params))
        results = response["result"]["results"]
        assert len(results) == 2
        assert results[0]["status"] == "terminating"
        assert results[1]["status"] == "error"

    def test_batch_member_validation_is_batch_level(self, protocol):
        params = {"requests": [{"program": COUNTDOWN}, {"bogus": True}]}
        response = ask(protocol, rpc("analyze_batch", params))
        assert response["error"]["code"] == INVALID_PARAMS

    def test_batch_requires_the_requests_key(self, protocol):
        response = ask(protocol, rpc("analyze_batch", {}))
        assert response["error"]["code"] == INVALID_PARAMS


class TestIntrospection:
    def test_list_provers(self, protocol):
        response = ask(protocol, rpc("list_provers"))
        assert "termite" in response["result"]["provers"]
        assert "termite" in response["result"]["capabilities"]

    def test_cache_stats_shape(self, protocol):
        ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        response = ask(protocol, rpc("cache_stats"))
        stats = response["result"]["stats"]
        assert response["result"]["enabled"] is True
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["revalidations"] == 1
        assert stats["revalidation_failures"] == 0

    def test_cache_stats_without_a_cache(self):
        protocol = ServiceProtocol(InlineExecutor(cache=None))
        response = ask(protocol, rpc("cache_stats"))
        assert response["result"] == {
            "enabled": False,
            "stats": None,
            "kernels": {"overflow_fallbacks": 0},
        }

    def test_bypass_provenance_without_a_cache(self):
        protocol = ServiceProtocol(InlineExecutor(cache=None))
        response = ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        assert response["result"]["provenance"]["cache"] == "bypass"


class TestShutdown:
    def test_shutdown_acknowledges_then_gates(self, protocol):
        response = ask(protocol, rpc("shutdown"))
        assert response["result"] == {"stopping": True}
        assert protocol.shutdown_requested
        late = ask(protocol, rpc("analyze", {"program": COUNTDOWN}))
        assert late["error"]["code"] == SHUTTING_DOWN
        again = ask(protocol, rpc("shutdown"))
        assert again["result"] == {"stopping": True}
