"""The fault-injection plan language and the seeded injector."""

import pytest

from repro.service.faults import (
    INERT_INJECTOR,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
)


class TestFaultPlanParse:
    def test_none_and_off_are_inert(self):
        assert FaultPlan.parse(None).inert
        assert FaultPlan.parse("off").inert
        assert FaultPlan.parse("").inert

    def test_seed_preset_mix(self):
        plan = FaultPlan.parse("seed7")
        assert plan.seed == 7
        assert not plan.inert
        assert plan.kill_worker > 0 and plan.corrupt_cache > 0

    def test_explicit_rates_start_from_zero(self):
        plan = FaultPlan.parse("seed3:kill=0.5,delay=0.25")
        assert plan.seed == 3
        assert plan.kill_worker == 0.5
        assert plan.delay_worker == 0.25
        assert plan.corrupt_cache == 0.0  # unnamed faults stay off

    def test_delay_seconds_is_tunable(self):
        plan = FaultPlan.parse("seed0:delay=1,delay_seconds=0.25")
        assert plan.delay_seconds == 0.25

    def test_bad_specs_raise(self):
        for spec in ("banana", "seedX", "seed0:kill", "seed0:nosuch=0.5",
                     "seed0:kill=lots"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(spec)

    def test_out_of_range_rate_raises(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(kill_worker=1.5)

    def test_describe_round_trips_the_active_faults(self):
        plan = FaultPlan.parse("seed2:kill=0.5")
        assert "seed2" in plan.describe()
        assert "kill_worker=0.5" in plan.describe()


class TestFaultInjector:
    def test_inert_injector_never_fires(self):
        for _ in range(100):
            assert not INERT_INJECTOR.decide("kill_worker")
        assert INERT_INJECTOR.log.total == 0
        assert not INERT_INJECTOR.active

    def test_schedule_is_deterministic_per_seed(self):
        plan = FaultPlan.parse("seed5")
        first = [FaultInjector(plan).decide("kill_worker") for _ in range(1)]
        runs = [
            [FaultInjector(plan).decide("kill_worker") for _ in range(50)]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert first[0] == runs[0][0]

    def test_decisions_are_logged(self):
        injector = FaultInjector(FaultPlan(seed=1, kill_worker=1.0))
        assert injector.decide("kill_worker")
        assert injector.log.kill_worker == 1
        assert injector.log.total == 1

    def test_annotate_stamps_kill_marker(self):
        injector = FaultInjector(FaultPlan(seed=0, kill_worker=1.0))
        document = injector.annotate_worker_message({"program": "p"})
        assert document["__fault__"] == "kill"
        assert document["program"] == "p"

    def test_annotate_stamps_delay_marker(self):
        injector = FaultInjector(
            FaultPlan(seed=0, delay_worker=1.0, delay_seconds=0.5)
        )
        document = injector.annotate_worker_message({"program": "p"})
        assert document["__fault__"] == "delay"
        assert document["__fault_delay__"] == 0.5

    def test_annotate_leaves_the_original_untouched(self):
        injector = FaultInjector(FaultPlan(seed=0, kill_worker=1.0))
        original = {"program": "p"}
        injector.annotate_worker_message(original)
        assert original == {"program": "p"}
