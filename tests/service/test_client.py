"""The retry helper: which failures retry, how long it waits, when it
gives up.  All with a stubbed sleep — no sockets, no real time."""

import random

import pytest

from repro.service.client import (
    RETRYABLE_CODES,
    ServiceError,
    ServiceUnavailable,
    call_with_retry,
)
from repro.service.protocol import (
    ANALYSIS_ERROR,
    INVALID_PARAMS,
    OVERLOADED,
    REQUEST_TIMEOUT,
    SHUTTING_DOWN,
    WORKER_CRASH,
)


class Flaky:
    """Fails ``failures`` times with *error*, then returns ``"ok"``."""

    def __init__(self, error, failures):
        self.error = error
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


def run(call, **kwargs):
    sleeps = []
    kwargs.setdefault("rng", random.Random(0))
    kwargs.setdefault("sleep", sleeps.append)
    result = call_with_retry(call, **kwargs)
    return result, sleeps


class TestRetryableCodes:
    def test_the_three_codes(self):
        assert set(RETRYABLE_CODES) == {
            REQUEST_TIMEOUT,
            WORKER_CRASH,
            OVERLOADED,
        }

    @pytest.mark.parametrize("code", sorted(RETRYABLE_CODES))
    def test_retries_then_succeeds(self, code):
        call = Flaky(ServiceError(code, "transient"), failures=2)
        result, sleeps = run(call)
        assert result == "ok"
        assert call.calls == 3
        assert len(sleeps) == 2

    def test_connection_drop_is_retried(self):
        call = Flaky(ServiceUnavailable("gone"), failures=1)
        result, _ = run(call)
        assert result == "ok"

    @pytest.mark.parametrize(
        "code", [INVALID_PARAMS, ANALYSIS_ERROR, SHUTTING_DOWN]
    )
    def test_non_retryable_raises_immediately(self, code):
        call = Flaky(ServiceError(code, "wrong"), failures=1)
        with pytest.raises(ServiceError):
            run(call)
        assert call.calls == 1


class TestBackoff:
    def test_waits_grow_exponentially_with_jitter(self):
        call = Flaky(ServiceError(WORKER_CRASH, "boom"), failures=4)
        result, sleeps = run(call, base_delay=0.1, max_attempts=6)
        assert result == "ok"
        # Jittered into (delay/2, delay]; delays 0.1, 0.2, 0.4, 0.8.
        for wait, ceiling in zip(sleeps, (0.1, 0.2, 0.4, 0.8)):
            assert ceiling / 2.0 < wait <= ceiling

    def test_overloaded_honours_the_server_hint(self):
        error = ServiceError(
            OVERLOADED, "shed", data={"retry_after_seconds": 3.0}
        )
        call = Flaky(error, failures=1)
        result, sleeps = run(call, base_delay=0.1)
        assert result == "ok"
        assert 1.5 < sleeps[0] <= 3.0  # the hint, jittered — not 0.1

    def test_max_delay_caps_the_wait(self):
        error = ServiceError(
            OVERLOADED, "shed", data={"retry_after_seconds": 500.0}
        )
        call = Flaky(error, failures=1)
        _, sleeps = run(call, max_delay=2.0)
        assert sleeps[0] <= 2.0

    def test_exhaustion_raises_the_last_error(self):
        call = Flaky(ServiceError(REQUEST_TIMEOUT, "slow"), failures=99)
        with pytest.raises(ServiceError) as caught:
            run(call, max_attempts=3)
        assert caught.value.code == REQUEST_TIMEOUT
        assert call.calls == 3

    def test_on_retry_sees_every_attempt(self):
        seen = []
        call = Flaky(ServiceError(WORKER_CRASH, "boom"), failures=2)
        call_with_retry(
            call,
            rng=random.Random(0),
            sleep=lambda _: None,
            on_retry=lambda attempt, wait, error: seen.append(
                (attempt, type(error).__name__)
            ),
        )
        assert seen == [(0, "ServiceError"), (1, "ServiceError")]

    def test_no_sleep_after_the_final_attempt(self):
        call = Flaky(ServiceError(WORKER_CRASH, "boom"), failures=99)
        sleeps = []
        with pytest.raises(ServiceError):
            call_with_retry(
                call,
                max_attempts=2,
                rng=random.Random(0),
                sleep=sleeps.append,
            )
        assert len(sleeps) == 1
