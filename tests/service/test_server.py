"""The socket front door, the worker pool and the stdio loop.

The error-path contract under test: a timeout, a worker crash or an
oversized line always comes back as a JSON-RPC *error response* — never a
dropped connection — and the follow-up request on the same server
succeeds, i.e. no failure mode poisons a worker.
"""

import io
import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.reporting.parallel import WorkerPool
from repro.service import (
    PARSE_ERROR,
    REQUEST_TIMEOUT,
    WORKER_CRASH,
    run_server_in_thread,
    serve_stdio,
)

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
PAIR = "var x, y; assume(y >= 1); while (x > 0) { x = x - y; }"


def rpc_line(method, params=None, request_id=1) -> bytes:
    message = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        message["params"] = params
    return json.dumps(message).encode("utf-8") + b"\n"


class Client:
    """One newline-delimited JSON-RPC connection."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=120)
        self.stream = self.sock.makefile("rwb")

    def call(self, method, params=None, request_id=1) -> dict:
        self.stream.write(rpc_line(method, params, request_id))
        self.stream.flush()
        line = self.stream.readline()
        assert line, "connection dropped instead of answering"
        return json.loads(line)

    def close(self) -> None:
        self.stream.close()
        self.sock.close()


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------


def _echo_handler(message):
    if message == "sleep":
        time.sleep(60)
    if message == "die":
        os._exit(13)
    if message == "raise":
        raise RuntimeError("handler failure")
    return {"echo": message, "pid": os.getpid()}


class TestWorkerPool:
    def test_round_trip_and_residency(self):
        with WorkerPool(_echo_handler, jobs=2) as pool:
            first = pool.submit("a")
            second = pool.submit("b")
            assert first.ok and first.value["echo"] == "a"
            assert second.ok
            assert first.value["pid"] in pool.pids()

    def test_handler_exception_is_an_error_not_a_crash(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            result = pool.submit("raise")
            assert result.kind == "error"
            assert "handler failure" in result.message
            assert pool.submit("after").ok  # same worker still alive

    def test_timeout_kills_and_respawns(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            before = pool.pids()
            result = pool.submit("sleep", timeout=0.2)
            assert result.kind == "timeout"
            follow_up = pool.submit("after", timeout=30)
            assert follow_up.ok
            assert follow_up.value["pid"] not in before

    def test_crash_is_detected_and_the_pool_recovers(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            result = pool.submit("die")
            assert result.kind == "crash"
            assert pool.submit("after").ok

    def test_externally_killed_worker_is_replaced(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            result = pool.submit("anything")
            assert result.kind == "crash"
            revived = pool.submit("after")
            assert revived.ok and revived.value["pid"] != victim


# ---------------------------------------------------------------------------
# the socket server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def server():
    running = run_server_in_thread(port=0, jobs=2)
    yield running
    running.stop()


@pytest.mark.usefixtures("server")
class TestSocketServer:
    def test_miss_then_revalidated_hit(self, server):
        client = Client(server.host, server.port)
        try:
            first = client.call("analyze", {"program": COUNTDOWN, "name": "c"})
            assert first["result"]["status"] == "terminating"
            assert first["result"]["provenance"]["cache"] == "miss"
            # The miss was computed in a pool worker, not the server.
            assert first["result"]["provenance"]["worker_pid"] != os.getpid()
            second = client.call("analyze", {"program": COUNTDOWN})
            provenance = second["result"]["provenance"]
            assert provenance["cache"] == "hit"
            assert provenance["revalidated"] is True
        finally:
            client.close()

    def test_concurrent_duplicates_all_answered(self, server):
        responses = []
        lock = threading.Lock()

        def one_client(index):
            client = Client(server.host, server.port)
            try:
                reply = client.call(
                    "analyze", {"program": PAIR, "name": "p%d" % index}, index
                )
                with lock:
                    responses.append(reply)
            finally:
                client.close()

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(responses) == 8
        assert all(r["result"]["status"] == "terminating" for r in responses)
        assert any(
            r["result"]["provenance"]["cache"] == "hit" for r in responses
        )
        stats = server.cache_stats()["stats"]
        assert stats["revalidation_failures"] == 0
        assert stats["hits"] >= 1

    def test_nonterminating_verdict_served_and_revalidated(self, server):
        params = {
            "program": "var x; while (x >= 0) { x = x + 1; }",
            "config": {"nonterm": "only"},
            "name": "nt-smoke",
        }
        client = Client(server.host, server.port)
        try:
            first = client.call("analyze", params)
            assert first["result"]["status"] == "nonterminating"
            assert first["result"]["lasso"] is not None
            assert first["result"]["provenance"]["cache"] == "miss"
            second = client.call("analyze", params)
            assert second["result"]["status"] == "nonterminating"
            provenance = second["result"]["provenance"]
            assert provenance["cache"] == "hit"
            assert provenance["revalidated"] is True
        finally:
            client.close()

    def test_malformed_json_answers_and_keeps_the_connection(self, server):
        client = Client(server.host, server.port)
        try:
            client.stream.write(b'{"jsonrpc": "2.0", "id":\n')
            client.stream.flush()
            reply = json.loads(client.stream.readline())
            assert reply["error"]["code"] == PARSE_ERROR
            # Same connection still serves real requests.
            good = client.call("list_provers")
            assert "termite" in good["result"]["provers"]
        finally:
            client.close()


class TestFailureIsolation:
    def test_timeout_then_recovery(self):
        running = run_server_in_thread(port=0, jobs=1, timeout=0.05)
        try:
            client = Client(running.host, running.port)
            try:
                slow = client.call("analyze", {"program": PAIR})
                assert slow["error"]["code"] == REQUEST_TIMEOUT
            finally:
                client.close()
            # The worker was killed and respawned; a cheap request must
            # succeed on a fresh connection within the same budget...
            running.server.executor.timeout = None
            client = Client(running.host, running.port)
            try:
                good = client.call("analyze", {"program": COUNTDOWN})
                assert good["result"]["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()

    def test_worker_crash_mid_request_then_recovery(self):
        running = run_server_in_thread(port=0, jobs=1)
        try:
            victim = running.server.executor.pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            client = Client(running.host, running.port)
            try:
                crashed = client.call("analyze", {"program": COUNTDOWN})
                assert crashed["error"]["code"] == WORKER_CRASH
                good = client.call("analyze", {"program": COUNTDOWN})
                assert good["result"]["status"] == "terminating"
                assert good["result"]["provenance"]["worker_pid"] != victim
            finally:
                client.close()
        finally:
            running.stop()

    def test_shutdown_method_stops_the_server(self):
        running = run_server_in_thread(port=0, jobs=1)
        client = Client(running.host, running.port)
        try:
            reply = client.call("shutdown")
            assert reply["result"] == {"stopping": True}
        finally:
            client.close()
        running.thread.join(timeout=30)
        assert not running.thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection((running.host, running.port), timeout=2)


# ---------------------------------------------------------------------------
# the stdio front door
# ---------------------------------------------------------------------------


class TestStdio:
    def run_lines(self, *messages) -> list:
        source = "".join(json.dumps(m) + "\n" for m in messages)
        output = io.StringIO()
        code = serve_stdio(io.StringIO(source), output)
        assert code == 0
        return [json.loads(line) for line in output.getvalue().splitlines()]

    def test_miss_hit_shutdown(self):
        replies = self.run_lines(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
            {
                "jsonrpc": "2.0",
                "id": 2,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
            {"jsonrpc": "2.0", "id": 3, "method": "shutdown"},
            {"jsonrpc": "2.0", "id": 4, "method": "cache_stats"},
        )
        assert [r["id"] for r in replies] == [1, 2, 3]  # post-shutdown: EOF
        assert replies[0]["result"]["provenance"]["cache"] == "miss"
        assert replies[1]["result"]["provenance"]["revalidated"] is True

    def test_cache_disabled_serves_bypass(self):
        replies = self.run_lines(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
        )
        # (cache on by default; this exercises the off switch)
        output = io.StringIO()
        source = io.StringIO(
            json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": 9,
                    "method": "analyze",
                    "params": {"program": COUNTDOWN},
                }
            )
            + "\n"
        )
        serve_stdio(source, output, cache=False)
        reply = json.loads(output.getvalue())
        assert reply["result"]["provenance"]["cache"] == "bypass"
        assert replies[0]["result"]["provenance"]["cache"] == "miss"
