"""The socket front door, the worker pool and the stdio loop.

The error-path contract under test: a timeout, a worker crash or an
oversized line always comes back as a JSON-RPC *error response* — never a
dropped connection — and the follow-up request on the same server
succeeds, i.e. no failure mode poisons a worker.
"""

import functools
import io
import json
import os
import random
import signal
import socket
import threading
import time

import pytest

from repro.api.request import AnalysisRequest
from repro.reporting.parallel import WorkerPool
from repro.service import (
    OVERLOADED,
    PARSE_ERROR,
    REQUEST_TIMEOUT,
    SHUTTING_DOWN,
    WORKER_CRASH,
    ServiceClient,
    call_with_retry,
    run_server_in_thread,
    serve_stdio,
)
from repro.service.admission import AdmissionGate, CircuitBreaker
from repro.service.protocol import ProtocolError
from repro.service.server import InlineExecutor

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
PAIR = "var x, y; assume(y >= 1); while (x > 0) { x = x - y; }"


def rpc_line(method, params=None, request_id=1) -> bytes:
    message = {"jsonrpc": "2.0", "id": request_id, "method": method}
    if params is not None:
        message["params"] = params
    return json.dumps(message).encode("utf-8") + b"\n"


class Client:
    """One newline-delimited JSON-RPC connection."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=120)
        self.stream = self.sock.makefile("rwb")

    def call(self, method, params=None, request_id=1) -> dict:
        self.stream.write(rpc_line(method, params, request_id))
        self.stream.flush()
        line = self.stream.readline()
        assert line, "connection dropped instead of answering"
        return json.loads(line)

    def close(self) -> None:
        self.stream.close()
        self.sock.close()


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------


def _echo_handler(message):
    if message == "sleep":
        time.sleep(60)
    if message == "die":
        os._exit(13)
    if message == "raise":
        raise RuntimeError("handler failure")
    return {"echo": message, "pid": os.getpid()}


class TestWorkerPool:
    def test_round_trip_and_residency(self):
        with WorkerPool(_echo_handler, jobs=2) as pool:
            first = pool.submit("a")
            second = pool.submit("b")
            assert first.ok and first.value["echo"] == "a"
            assert second.ok
            assert first.value["pid"] in pool.pids()

    def test_handler_exception_is_an_error_not_a_crash(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            result = pool.submit("raise")
            assert result.kind == "error"
            assert "handler failure" in result.message
            assert pool.submit("after").ok  # same worker still alive

    def test_timeout_kills_and_respawns(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            before = pool.pids()
            result = pool.submit("sleep", timeout=0.2)
            assert result.kind == "timeout"
            follow_up = pool.submit("after", timeout=30)
            assert follow_up.ok
            assert follow_up.value["pid"] not in before

    def test_crash_is_detected_and_the_pool_recovers(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            result = pool.submit("die")
            assert result.kind == "crash"
            assert pool.submit("after").ok

    def test_externally_killed_worker_is_replaced(self):
        with WorkerPool(_echo_handler, jobs=1) as pool:
            victim = pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            result = pool.submit("anything")
            assert result.kind == "crash"
            revived = pool.submit("after")
            assert revived.ok and revived.value["pid"] != victim


# ---------------------------------------------------------------------------
# the socket server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="class")
def server():
    running = run_server_in_thread(port=0, jobs=2)
    yield running
    running.stop()


@pytest.mark.usefixtures("server")
class TestSocketServer:
    def test_miss_then_revalidated_hit(self, server):
        client = Client(server.host, server.port)
        try:
            first = client.call("analyze", {"program": COUNTDOWN, "name": "c"})
            assert first["result"]["status"] == "terminating"
            assert first["result"]["provenance"]["cache"] == "miss"
            # The miss was computed in a pool worker, not the server.
            assert first["result"]["provenance"]["worker_pid"] != os.getpid()
            second = client.call("analyze", {"program": COUNTDOWN})
            provenance = second["result"]["provenance"]
            assert provenance["cache"] == "hit"
            assert provenance["revalidated"] is True
        finally:
            client.close()

    def test_concurrent_duplicates_all_answered(self, server):
        responses = []
        lock = threading.Lock()

        def one_client(index):
            client = Client(server.host, server.port)
            try:
                reply = client.call(
                    "analyze", {"program": PAIR, "name": "p%d" % index}, index
                )
                with lock:
                    responses.append(reply)
            finally:
                client.close()

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(responses) == 8
        assert all(r["result"]["status"] == "terminating" for r in responses)
        assert any(
            r["result"]["provenance"]["cache"] == "hit" for r in responses
        )
        stats = server.cache_stats()["stats"]
        assert stats["revalidation_failures"] == 0
        assert stats["hits"] >= 1

    def test_nonterminating_verdict_served_and_revalidated(self, server):
        params = {
            "program": "var x; while (x >= 0) { x = x + 1; }",
            "config": {"nonterm": "only"},
            "name": "nt-smoke",
        }
        client = Client(server.host, server.port)
        try:
            first = client.call("analyze", params)
            assert first["result"]["status"] == "nonterminating"
            assert first["result"]["lasso"] is not None
            assert first["result"]["provenance"]["cache"] == "miss"
            second = client.call("analyze", params)
            assert second["result"]["status"] == "nonterminating"
            provenance = second["result"]["provenance"]
            assert provenance["cache"] == "hit"
            assert provenance["revalidated"] is True
        finally:
            client.close()

    def test_malformed_json_answers_and_keeps_the_connection(self, server):
        client = Client(server.host, server.port)
        try:
            client.stream.write(b'{"jsonrpc": "2.0", "id":\n')
            client.stream.flush()
            reply = json.loads(client.stream.readline())
            assert reply["error"]["code"] == PARSE_ERROR
            # Same connection still serves real requests.
            good = client.call("list_provers")
            assert "termite" in good["result"]["provers"]
        finally:
            client.close()


class TestFailureIsolation:
    def test_timeout_then_recovery(self):
        running = run_server_in_thread(port=0, jobs=1, timeout=0.005)
        try:
            client = Client(running.host, running.port)
            try:
                slow = client.call("analyze", {"program": PAIR})
                assert slow["error"]["code"] == REQUEST_TIMEOUT
            finally:
                client.close()
            # The worker was killed and respawned; a cheap request must
            # succeed on a fresh connection within the same budget...
            running.server.executor.timeout = None
            client = Client(running.host, running.port)
            try:
                good = client.call("analyze", {"program": COUNTDOWN})
                assert good["result"]["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()

    def test_worker_crash_mid_request_then_recovery(self):
        running = run_server_in_thread(port=0, jobs=1)
        try:
            victim = running.server.executor.pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            client = Client(running.host, running.port)
            try:
                crashed = client.call("analyze", {"program": COUNTDOWN})
                assert crashed["error"]["code"] == WORKER_CRASH
                good = client.call("analyze", {"program": COUNTDOWN})
                assert good["result"]["status"] == "terminating"
                assert good["result"]["provenance"]["worker_pid"] != victim
            finally:
                client.close()
        finally:
            running.stop()

    def test_shutdown_method_stops_the_server(self):
        running = run_server_in_thread(port=0, jobs=1)
        client = Client(running.host, running.port)
        try:
            reply = client.call("shutdown")
            assert reply["result"] == {"stopping": True}
        finally:
            client.close()
        running.thread.join(timeout=30)
        assert not running.thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection((running.host, running.port), timeout=2)


# ---------------------------------------------------------------------------
# the stdio front door
# ---------------------------------------------------------------------------


class TestStdio:
    def run_lines(self, *messages) -> list:
        source = "".join(json.dumps(m) + "\n" for m in messages)
        output = io.StringIO()
        code = serve_stdio(io.StringIO(source), output)
        assert code == 0
        return [json.loads(line) for line in output.getvalue().splitlines()]

    def test_miss_hit_shutdown(self):
        replies = self.run_lines(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
            {
                "jsonrpc": "2.0",
                "id": 2,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
            {"jsonrpc": "2.0", "id": 3, "method": "shutdown"},
            {"jsonrpc": "2.0", "id": 4, "method": "cache_stats"},
        )
        assert [r["id"] for r in replies] == [1, 2, 3]  # post-shutdown: EOF
        assert replies[0]["result"]["provenance"]["cache"] == "miss"
        assert replies[1]["result"]["provenance"]["revalidated"] is True

    def test_cache_disabled_serves_bypass(self):
        replies = self.run_lines(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "analyze",
                "params": {"program": COUNTDOWN},
            },
        )
        # (cache on by default; this exercises the off switch)
        output = io.StringIO()
        source = io.StringIO(
            json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": 9,
                    "method": "analyze",
                    "params": {"program": COUNTDOWN},
                }
            )
            + "\n"
        )
        serve_stdio(source, output, cache=False)
        reply = json.loads(output.getvalue())
        assert reply["result"]["provenance"]["cache"] == "bypass"
        assert replies[0]["result"]["provenance"]["cache"] == "miss"


# ---------------------------------------------------------------------------
# worker supervision (respawn budgets, backoff, hung-worker watchdog)
# ---------------------------------------------------------------------------


class TestSupervision:
    def test_respawn_budget_exhaustion_fails_fast(self):
        with WorkerPool(
            _echo_handler, jobs=1, respawn_budget=2, respawn_backoff=0.01
        ) as pool:
            for _ in range(3):
                assert pool.submit("die").kind == "crash"
            final = pool.submit("after")
            assert final.kind == "crash"
            assert "respawn budget" in final.message
            assert pool.capacity() == 0
            stats = pool.stats()
            assert stats["slots_lost"] == 1
            assert stats["respawns"] == 2

    def test_backoff_respawn_still_recovers(self):
        with WorkerPool(
            _echo_handler, jobs=1, respawn_budget=8, respawn_backoff=0.05
        ) as pool:
            assert pool.submit("die").kind == "crash"
            follow_up = pool.submit("after")  # waits through the backoff
            assert follow_up.ok

    def test_hung_worker_watchdog_fires_without_a_timeout(self):
        with WorkerPool(_echo_handler, jobs=1, hung_deadline=0.3) as pool:
            result = pool.submit("sleep")  # no per-request timeout at all
            assert result.kind == "timeout"
            assert "watchdog" in result.message
            assert pool.stats()["hung_kills"] == 1
            assert pool.submit("after").ok  # the slot was reclaimed

    def test_explicit_timeout_beats_the_watchdog(self):
        with WorkerPool(_echo_handler, jobs=1, hung_deadline=60.0) as pool:
            started = time.monotonic()
            result = pool.submit("sleep", timeout=0.2)
            assert result.kind == "timeout"
            assert time.monotonic() - started < 10.0
            assert pool.stats()["hung_kills"] == 0


# ---------------------------------------------------------------------------
# admission control on the wire
# ---------------------------------------------------------------------------


#: Every pool request sleeps this long: compute takes a known while.
_SLOW_PLAN = "seed0:delay=1,delay_seconds=0.8"


class TestOverloadControl:
    def test_load_beyond_both_bounds_is_shed_with_retry_after(self):
        running = run_server_in_thread(
            port=0, jobs=1, max_inflight=1, max_queue=0,
            fault_plan=_SLOW_PLAN,
        )
        try:
            slow_replies = []

            def slow_caller():
                client = Client(running.host, running.port)
                try:
                    slow_replies.append(
                        client.call("analyze", {"program": COUNTDOWN})
                    )
                finally:
                    client.close()

            thread = threading.Thread(target=slow_caller)
            thread.start()
            time.sleep(0.3)  # let the slow request occupy the only slot
            client = Client(running.host, running.port)
            try:
                shed = client.call("analyze", {"program": PAIR})
            finally:
                client.close()
            thread.join(30.0)
            assert shed["error"]["code"] == OVERLOADED
            assert shed["error"]["data"]["retry_after_seconds"] > 0
            # The in-flight request was untouched by the shedding.
            assert slow_replies[0]["result"]["status"] == "terminating"
        finally:
            running.stop()

    def test_pressure_degrades_and_stamps_provenance(self):
        running = run_server_in_thread(
            port=0, jobs=1, max_inflight=1, max_queue=2,
            fault_plan=_SLOW_PLAN,
        )
        try:
            replies = []
            lock = threading.Lock()

            def caller(program, config):
                client = Client(running.host, running.port)
                try:
                    params = {"program": program}
                    if config:
                        params["config"] = config
                    reply = client.call("analyze", params)
                    with lock:
                        replies.append(reply)
                finally:
                    client.close()

            threads = [
                threading.Thread(
                    target=caller, args=(COUNTDOWN, None)
                ),
            ]
            threads[0].start()
            time.sleep(0.3)  # in flight; the next two will queue
            for program in (PAIR, "var z; while (z > 3) { z = z - 2; }"):
                thread = threading.Thread(
                    target=caller, args=(program, {"nonterm": "auto"})
                )
                threads.append(thread)
                thread.start()
                time.sleep(0.1)
            for thread in threads:
                thread.join(60.0)
            assert len(replies) == 3
            assert all("result" in r for r in replies)
            degraded = [
                r["result"]["provenance"]["degraded"]
                for r in replies
                if r["result"]["provenance"]["degraded"]
            ]
            # The queued request admitted while the other still waited
            # ran under pressure: its nonterm race was shed — and said so.
            assert degraded
            assert all(d == ["nonterm:auto->off"] for d in degraded)
        finally:
            running.stop()

    def test_circuit_breaker_opens_after_consecutive_crashes(self):
        running = run_server_in_thread(
            port=0, jobs=1, fault_plan="seed0:kill=1"
        )
        try:
            client = Client(running.host, running.port)
            try:
                programs = [
                    COUNTDOWN,
                    PAIR,
                    "var a; while (a > 1) { a = a - 1; }",
                    "var b; while (b > 2) { b = b - 1; }",
                ]
                codes = [
                    client.call("analyze", {"program": p})["error"]["code"]
                    for p in programs
                ]
            finally:
                client.close()
            assert codes[:3] == [WORKER_CRASH] * 3
            assert codes[3] == OVERLOADED  # the breaker is open now
        finally:
            running.stop()

    def test_respawn_budget_exhaustion_answers_overloaded(self):
        running = run_server_in_thread(
            port=0, jobs=1, respawn_budget=1, fault_plan="seed0:kill=1"
        )
        try:
            client = Client(running.host, running.port)
            try:
                codes = [
                    client.call("analyze", {"program": p})["error"]["code"]
                    for p in (COUNTDOWN, PAIR, COUNTDOWN)
                ]
            finally:
                client.close()
            # The first kill still had a respawn in the budget: a plain
            # crash.  The second kill exhausts the last slot, so the very
            # crash that emptied the pool — and everything after it — is
            # answered as OVERLOADED rather than a retryable crash.
            assert codes[0] == WORKER_CRASH
            assert codes[1:] == [OVERLOADED] * 2
        finally:
            running.stop()

    def test_half_open_probe_released_when_admission_sheds(self):
        # Regression: the half-open probe granted by breaker.check() used
        # to leak when gate.admit() shed the request — every later call
        # for the tool then failed fast forever ("a probe is already in
        # flight") with nothing left in flight to close the circuit.
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=lambda: now[0]
        )
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        executor = InlineExecutor(gate=gate, breaker=breaker)
        breaker.record_crash("termite")
        now[0] = 6.0  # cooldown elapsed: the next check grants the probe
        held = gate.admit()  # saturate the gate so the probe is shed
        request = AnalysisRequest(program=COUNTDOWN)
        with pytest.raises(ProtocolError) as caught:
            executor.run(request)
        assert caught.value.code == OVERLOADED
        held.release()
        # The shed probe was released with the request: the tool can be
        # probed again and the retry computes instead of failing fast.
        result = executor.run(request)
        assert result.status.value == "terminating"

    def test_cache_hits_are_served_even_while_shedding(self):
        running = run_server_in_thread(
            port=0, jobs=1, max_inflight=1, max_queue=0,
            fault_plan=_SLOW_PLAN,
        )
        try:
            client = Client(running.host, running.port)
            try:
                warm = client.call("analyze", {"program": PAIR})
                assert warm["result"]["provenance"]["cache"] == "miss"
            finally:
                client.close()

            def slow_caller():
                inner = Client(running.host, running.port)
                try:
                    inner.call("analyze", {"program": COUNTDOWN})
                finally:
                    inner.close()

            thread = threading.Thread(target=slow_caller)
            thread.start()
            time.sleep(0.3)
            client = Client(running.host, running.port)
            try:
                # The compute line is full — but a hit needs no compute.
                hit = client.call("analyze", {"program": PAIR})
                assert hit["result"]["provenance"]["cache"] == "hit"
            finally:
                client.close()
            thread.join(30.0)
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# per-request deadlines (both doors)
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_deadline_on_the_socket_door(self):
        running = run_server_in_thread(port=0, jobs=1)
        try:
            client = Client(running.host, running.port)
            try:
                bounded = client.call(
                    "analyze",
                    {"program": PAIR, "deadline_seconds": 0.005},
                )
                assert bounded["error"]["code"] == REQUEST_TIMEOUT
                # Same request without the deadline: computes fine.
                free = client.call("analyze", {"program": PAIR})
                assert free["result"]["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()

    def test_deadline_is_capped_by_the_server_budget(self):
        running = run_server_in_thread(port=0, jobs=1, timeout=0.005)
        try:
            client = Client(running.host, running.port)
            try:
                reply = client.call(
                    "analyze",
                    {"program": PAIR, "deadline_seconds": 120.0},
                )
                assert reply["error"]["code"] == REQUEST_TIMEOUT
            finally:
                client.close()
        finally:
            running.stop()

    def test_deadline_on_the_stdio_door(self):
        source = io.StringIO(
            json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": 1,
                    "method": "analyze",
                    "params": {
                        "program": PAIR,
                        "deadline_seconds": 0.002,
                    },
                }
            )
            + "\n"
            + json.dumps(
                {
                    "jsonrpc": "2.0",
                    "id": 2,
                    "method": "analyze",
                    "params": {"program": COUNTDOWN},
                }
            )
            + "\n"
        )
        output = io.StringIO()
        assert serve_stdio(source, output) == 0
        replies = [json.loads(line) for line in output.getvalue().splitlines()]
        assert replies[0]["error"]["code"] == REQUEST_TIMEOUT
        assert replies[1]["result"]["status"] == "terminating"

    def test_invalid_deadline_is_rejected(self):
        running = run_server_in_thread(port=0, jobs=1)
        try:
            client = Client(running.host, running.port)
            try:
                reply = client.call(
                    "analyze",
                    {"program": COUNTDOWN, "deadline_seconds": -1},
                )
                assert reply["error"]["code"] == -32602  # INVALID_PARAMS
            finally:
                client.close()
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# graceful drain under load
# ---------------------------------------------------------------------------


class TestDrainUnderLoad:
    def test_queued_refused_inflight_finish_idle_dropped(self):
        running = run_server_in_thread(
            port=0, jobs=1, max_inflight=1, max_queue=4,
            fault_plan="seed0:delay=1,delay_seconds=1.0",
        )
        try:
            idle = Client(running.host, running.port)  # never sends
            replies = {}
            lock = threading.Lock()

            def caller(tag, program):
                client = Client(running.host, running.port)
                try:
                    reply = client.call("analyze", {"program": program})
                    with lock:
                        replies[tag] = reply
                finally:
                    client.close()

            inflight = threading.Thread(
                target=caller, args=("inflight", COUNTDOWN)
            )
            inflight.start()
            time.sleep(0.3)  # the slow request holds the only slot
            queued = threading.Thread(target=caller, args=("queued", PAIR))
            queued.start()
            time.sleep(0.3)  # now parked in the admission queue

            running.server.request_stop()
            inflight.join(20.0)
            queued.join(20.0)
            assert not inflight.is_alive() and not queued.is_alive()

            # In-flight work finished normally within the grace period...
            assert replies["inflight"]["result"]["status"] == "terminating"
            # ...the queued admission was woken and refused...
            assert replies["queued"]["error"]["code"] == SHUTTING_DOWN
            # ...and the idle connection was dropped, not kept alive.
            idle.sock.settimeout(10.0)
            assert idle.stream.readline() == b""
            idle.close()

            running.thread.join(20.0)
            assert not running.thread.is_alive()
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# framing recovery (oversized lines must not kill the connection)
# ---------------------------------------------------------------------------


class TestFramingRecovery:
    def test_oversized_line_answers_and_the_connection_keeps_serving(self):
        running = run_server_in_thread(
            port=0, jobs=1, max_program_bytes=1024
        )
        try:
            client = Client(running.host, running.port)
            try:
                # Way past the frame cap (2 * max_program_bytes + 64 KiB),
                # in one line with no newline until the very end.
                client.stream.write(b"x" * 200_000 + b"\n")
                client.stream.flush()
                reply = json.loads(client.stream.readline())
                assert reply["error"]["code"] == PARSE_ERROR
                assert "frame limit" in reply["error"]["message"]
                # The same connection still frames and serves correctly.
                good = client.call("analyze", {"program": COUNTDOWN})
                assert good["result"]["status"] == "terminating"
                # And recovery is repeatable, not one-shot.
                client.stream.write(b"y" * 150_000 + b"\n")
                client.stream.flush()
                again = json.loads(client.stream.readline())
                assert again["error"]["code"] == PARSE_ERROR
                final = client.call("list_provers")
                assert "termite" in final["result"]["provers"]
            finally:
                client.close()
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# analyze_batch fan-out
# ---------------------------------------------------------------------------


class TestBatchFanout:
    def test_members_fan_out_and_stay_positionally_aligned(self):
        running = run_server_in_thread(
            port=0, jobs=2, fault_plan="seed0:delay=1,delay_seconds=0.3"
        )
        try:
            client = Client(running.host, running.port)
            try:
                names = ["m0", "m1", "m2", "m3"]
                requests = [
                    {
                        "program": COUNTDOWN,
                        "name": name,
                        "config": {"oracle_seed": index},
                    }
                    for index, name in enumerate(names)
                ]
                reply = client.call("analyze_batch", {"requests": requests})
                results = reply["result"]["results"]
                assert [r["program"] for r in results] == names
                assert all(r["status"] == "terminating" for r in results)
                # Both pool workers actually served members concurrently.
                pids = {r["provenance"]["worker_pid"] for r in results}
                assert len(pids) == 2
            finally:
                client.close()
        finally:
            running.stop()

    def test_failing_member_keeps_the_batch_rectangular(self):
        running = run_server_in_thread(port=0, jobs=2)
        try:
            client = Client(running.host, running.port)
            try:
                reply = client.call(
                    "analyze_batch",
                    {
                        "requests": [
                            {"program": COUNTDOWN, "name": "good"},
                            {"program": "while {", "name": "broken"},
                            {"program": PAIR, "name": "also-good"},
                        ]
                    },
                )
                results = reply["result"]["results"]
                assert [r["program"] for r in results] == [
                    "good", "broken", "also-good",
                ]
                assert results[0]["status"] == "terminating"
                assert results[1]["status"] == "error"
                assert results[2]["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# the retry client against real injected faults
# ---------------------------------------------------------------------------


class TestRetryClientAgainstFaults:
    def test_rides_out_worker_kills(self):
        running = run_server_in_thread(
            port=0, jobs=1, fault_plan="seed1:kill=0.3"
        )
        try:
            client = ServiceClient(running.host, running.port)
            try:
                for index in range(4):
                    result = call_with_retry(
                        functools.partial(
                            client.analyze,
                            {"program": COUNTDOWN, "name": "r%d" % index},
                        ),
                        max_attempts=10,
                        base_delay=0.02,
                        rng=random.Random(index),
                    )
                    assert result["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()

    def test_rides_out_dropped_connections(self):
        running = run_server_in_thread(
            port=0, jobs=1, fault_plan="seed2:drop=0.5"
        )
        try:
            client = ServiceClient(running.host, running.port)
            try:
                for index in range(4):
                    result = call_with_retry(
                        functools.partial(
                            client.analyze, {"program": COUNTDOWN}
                        ),
                        max_attempts=10,
                        base_delay=0.02,
                        rng=random.Random(index),
                    )
                    assert result["status"] == "terminating"
            finally:
                client.close()
        finally:
            running.stop()
