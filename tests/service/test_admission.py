"""The admission gate and the circuit breaker (no sockets involved).

Contract under test: load beyond both bounds is shed immediately with a
retry hint, queued waiters make progress as slots free, a drain wakes
and refuses every waiter, and the breaker opens only on *consecutive*
crashes, probes half-open, and backs its cooldown off exponentially.
"""

import threading
import time

import pytest

from repro.service.admission import (
    AdmissionGate,
    CircuitBreaker,
    Overloaded,
    ShuttingDown,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionGate:
    def test_admit_and_release_tracks_inflight(self):
        gate = AdmissionGate(max_inflight=2, max_queue=1)
        first = gate.admit()
        second = gate.admit()
        assert gate.stats()["inflight"] == 2
        first.release()
        second.release()
        assert gate.stats()["inflight"] == 0
        assert gate.stats()["admitted"] == 2

    def test_release_is_idempotent(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        ticket = gate.admit()
        ticket.release()
        ticket.release()
        assert gate.stats()["inflight"] == 0
        # The slot really is free again.
        gate.admit().release()

    def test_sheds_when_both_bounds_are_saturated(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        ticket = gate.admit()
        with pytest.raises(Overloaded) as caught:
            gate.admit()
        assert caught.value.retry_after_seconds > 0
        assert gate.stats()["shed"] == 1
        ticket.release()

    def test_queued_waiter_gets_the_freed_slot(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        ticket = gate.admit()
        admitted = []

        def waiter():
            inner = gate.admit()
            admitted.append(inner.waited)
            inner.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(100):
            if gate.stats()["queued"] == 1:
                break
            time.sleep(0.01)
        assert gate.stats()["queued"] == 1
        ticket.release()
        thread.join(5.0)
        assert admitted == [True]

    def test_unqueued_admission_did_not_wait(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        assert gate.admit().waited is False

    def test_admission_timeout_sheds(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        ticket = gate.admit()
        with pytest.raises(Overloaded):
            gate.admit(timeout=0.05)
        ticket.release()

    def test_close_refuses_new_and_wakes_queued(self):
        gate = AdmissionGate(max_inflight=1, max_queue=2)
        ticket = gate.admit()
        outcomes = []

        def waiter():
            try:
                gate.admit()
                outcomes.append("admitted")
            except ShuttingDown:
                outcomes.append("refused")

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(100):
            if gate.stats()["queued"] == 1:
                break
            time.sleep(0.01)
        gate.close()
        thread.join(5.0)
        assert outcomes == ["refused"]
        with pytest.raises(ShuttingDown):
            gate.admit()
        # In-flight work is untouched by the drain.
        ticket.release()

    def test_pressure_tiers(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1)
        assert gate.pressure_tier() == 0
        ticket = gate.admit()
        # A lone in-flight request is NOT pressure (it is us).
        assert gate.pressure_tier() == 0
        thread = threading.Thread(target=lambda: gate.admit().release())
        thread.start()
        for _ in range(100):
            if gate.stats()["queued"] == 1:
                break
            time.sleep(0.01)
        assert gate.pressure_tier() == 2  # queue of 1 is also full
        assert gate.stats()["pressure"] == "shedding"
        ticket.release()
        thread.join(5.0)

    def test_retry_after_tracks_service_time_ewma(self):
        clock = FakeClock()
        gate = AdmissionGate(max_inflight=1, max_queue=4, clock=clock)
        for _ in range(20):
            ticket = gate.admit()
            clock.advance(2.0)
            ticket.release()
        # EWMA has converged near 2s; an empty line retries in ~2 waves.
        assert 2.0 <= gate.retry_after_seconds() <= 8.0
        assert abs(gate.stats()["avg_service_seconds"] - 2.0) < 0.1


class TestCircuitBreaker:
    def test_opens_after_consecutive_crashes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5.0, clock=clock
        )
        for _ in range(2):
            breaker.record_crash("termite")
        breaker.check("termite")  # two crashes: still closed
        breaker.record_crash("termite")
        with pytest.raises(Overloaded) as caught:
            breaker.check("termite")
        assert caught.value.retry_after_seconds <= 5.0
        assert "termite" in breaker.stats()["open_tools"]

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_crash("termite")
        breaker.record_success("termite")
        breaker.record_crash("termite")
        breaker.check("termite")  # never two in a row

    def test_tools_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_crash("termite")
        with pytest.raises(Overloaded):
            breaker.check("termite")
        breaker.check("rankfinder")

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_crash("termite")
        clock.advance(6.0)
        breaker.check("termite")  # the probe goes through
        with pytest.raises(Overloaded):
            breaker.check("termite")  # concurrent callers still blocked
        breaker.record_success("termite")
        breaker.check("termite")  # closed again

    def test_failed_probe_doubles_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_crash("termite")
        clock.advance(6.0)
        breaker.check("termite")
        breaker.record_crash("termite")  # the probe crashed
        clock.advance(6.0)
        with pytest.raises(Overloaded):
            breaker.check("termite")  # 10s cooldown now, 6s elapsed
        clock.advance(5.0)
        breaker.check("termite")

    def test_neutral_outcome_releases_the_probe_without_opening(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_crash("termite")
        clock.advance(6.0)
        breaker.check("termite")
        breaker.record_neutral("termite")  # e.g. the probe timed out
        # The next caller may probe again — the circuit is not wedged.
        breaker.check("termite")
