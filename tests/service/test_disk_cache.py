"""The persistent disk tier: survival, integrity, eviction, soundness.

The headline guarantee under test: a disk entry — stale, truncated,
bit-flipped or outright replaced — can cost a cache miss but can never
cost soundness, because the load path checks parse/schema/key/checksum
and the serving path still runs the independent checker gate.
"""

import json
import os

from repro.api import AnalysisConfig, AnalysisRequest, analyze
from repro.service import ResultCache
from repro.service.faults import FaultInjector, FaultPlan

COUNTDOWN = "var x; while (x > 0) { x = x - 1; }"
PAIR = "var x, y; assume(y >= 1); while (x > 0) { x = x - y; }"


def _request(program=COUNTDOWN, **kwargs) -> AnalysisRequest:
    return AnalysisRequest(program=program, **kwargs)


def _computed(request):
    return analyze(request.program, config=request.config, name=request.name)


def _populated(tmp_path, program=COUNTDOWN, **cache_kwargs):
    cache = ResultCache(cache_dir=str(tmp_path), **cache_kwargs)
    request = _request(program)
    cache.store(request, _computed(request))
    return cache, request


class TestPersistence:
    def test_store_writes_one_file_per_key(self, tmp_path):
        cache, request = _populated(tmp_path)
        path = tmp_path / (request.cache_key() + ".json")
        assert path.exists()
        wrapper = json.loads(path.read_text())
        assert wrapper["key"] == request.cache_key()
        assert wrapper["schema"] == 1
        assert cache.stats().disk_stores == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        _populated(tmp_path)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_fresh_instance_serves_a_revalidated_hit(self, tmp_path):
        _, request = _populated(tmp_path)
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert len(reborn) == 0  # lazy: nothing resident until looked up
        hit = reborn.lookup(request)
        assert hit is not None and hit.proved
        assert hit.provenance.cache == "hit"
        assert hit.provenance.revalidated is True
        stats = reborn.stats()
        assert stats.disk_hits == 1
        assert stats.revalidation_failures == 0
        # Promoted into memory: the next hit never touches the disk.
        reborn.lookup(request)
        assert reborn.stats().disk_hits == 1

    def test_disk_tier_off_by_default(self, tmp_path):
        cache = ResultCache()
        request = _request()
        cache.store(request, _computed(request))
        assert cache.stats().disk_stores == 0
        assert cache.disk_keys() == []


class TestIntegrity:
    def test_truncated_entry_is_dropped_and_counted(self, tmp_path):
        cache, request = _populated(tmp_path)
        assert cache.corrupt_disk_entry(request.cache_key(), truncate=True)
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(request) is None
        stats = reborn.stats()
        assert stats.disk_drops == 1
        assert stats.disk_entries == 0  # the damaged file was deleted

    def test_bitflipped_entry_is_dropped_and_counted(self, tmp_path):
        cache, request = _populated(tmp_path)
        assert cache.corrupt_disk_entry(request.cache_key())
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(request) is None
        assert reborn.stats().disk_drops == 1

    def test_checksum_catches_a_tampered_payload(self, tmp_path):
        _, request = _populated(tmp_path)
        path = tmp_path / (request.cache_key() + ".json")
        wrapper = json.loads(path.read_text())
        wrapper["result"]["status"] = "nonterminating"  # forged verdict
        path.write_text(json.dumps(wrapper, sort_keys=True))
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(request) is None
        assert reborn.stats().disk_drops == 1

    def test_entry_under_the_wrong_key_is_refused(self, tmp_path):
        _, request = _populated(tmp_path)
        source = tmp_path / (request.cache_key() + ".json")
        other = _request(PAIR)
        target = tmp_path / (other.cache_key() + ".json")
        target.write_bytes(source.read_bytes())  # cross-wired entry
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(other) is None
        assert reborn.stats().disk_drops == 1

    def test_revalidation_failure_also_discards_the_disk_file(self, tmp_path):
        _, request = _populated(tmp_path)
        path = tmp_path / (request.cache_key() + ".json")
        wrapper = json.loads(path.read_text())
        # A well-formed, correctly checksummed entry whose certificate is
        # for the wrong program: only the checker gate can catch this.
        ranking = wrapper["result"]["ranking"]
        for component in ranking["components"]:
            for vector in component["coefficients"].values():
                vector[:] = ["-1"] * len(vector)  # x decreases ⇒ -x grows
        payload = json.dumps(wrapper["result"], sort_keys=True)
        import hashlib

        wrapper["sha256"] = hashlib.sha256(
            payload.encode("utf-8")
        ).hexdigest()
        path.write_text(json.dumps(wrapper, sort_keys=True))
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(request) is None
        stats = reborn.stats()
        assert stats.revalidation_failures == 1
        assert not path.exists()

    def test_fault_injector_corruption_is_caught_end_to_end(self, tmp_path):
        injector = FaultInjector(FaultPlan(seed=0, corrupt_cache=1.0))
        cache = ResultCache(
            cache_dir=str(tmp_path), fault_injector=injector
        )
        request = _request()
        cache.store(request, _computed(request))
        assert injector.log.corrupt_cache == 1
        reborn = ResultCache(cache_dir=str(tmp_path))
        assert reborn.lookup(request) is None
        assert reborn.stats().disk_drops == 1


class TestDiskEviction:
    def test_byte_bound_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=1)
        first = _request(COUNTDOWN)
        second = _request(PAIR)
        cache.store(first, _computed(first))
        cache.store(second, _computed(second))
        # The bound admits only the newest entry.
        assert cache.disk_keys() == [second.cache_key()]
        stats = cache.stats()
        assert stats.disk_evictions >= 1
        assert stats.disk_entries == 1

    def test_gauges_track_the_directory(self, tmp_path):
        cache, request = _populated(tmp_path)
        stats = cache.stats()
        assert stats.disk_entries == 1
        assert stats.disk_bytes == os.path.getsize(
            tmp_path / (request.cache_key() + ".json")
        )
