"""Tests for the warm-startable persistent simplex (:class:`SimplexState`).

The invariant under test throughout: a warm-started re-solve must agree
*exactly* (Fraction equality, no tolerance) with a cold one-shot
:func:`solve_lp` over the same accumulated constraint system — same
status, same optimal value, and an assignment that satisfies every
constraint — while performing strictly fewer pivots than re-solving every
prefix from scratch.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.linexpr.expr import LinExpr, var
from repro.lp.problem import LpStatus, Sense
from repro.lp.simplex import SimplexState, solve_lp

x, y, z = var("x"), var("y"), var("z")


def assert_matches_cold(state, constraints, objective, sense):
    """The state's solution must exactly match a from-scratch solve."""
    warm = state.solve()
    cold = solve_lp(objective, constraints, sense)
    assert warm.status == cold.status
    if warm.status is LpStatus.OPTIMAL:
        assert warm.objective == cold.objective
        for constraint in constraints:
            assert constraint.satisfied_by(warm.assignment)


class TestWarmRowAddition:
    def test_single_row_reoptimises_from_previous_basis(self):
        state = SimplexState(Sense.MAXIMIZE)
        constraints = [x <= 3, y <= 4, x >= 0, y >= 0]
        state.add_constraints(constraints)
        state.set_objective(x + y)
        first = state.solve()
        assert first.status is LpStatus.OPTIMAL
        assert first.objective == 7
        assert state.cold_solves == 1 and state.warm_solves == 0

        cutting = x + y <= 5
        state.add_constraint(cutting)
        constraints.append(cutting)
        second = state.solve()
        assert second.status is LpStatus.OPTIMAL
        assert second.objective == 5
        assert state.warm_solves == 1
        # One dual pivot repairs the violated row; a cold solve pays the
        # whole two-phase bill again.
        cold = solve_lp(x + y, constraints, Sense.MAXIMIZE)
        assert second.pivots < cold.pivots

    def test_row_satisfied_by_current_optimum_is_free(self):
        state = SimplexState(Sense.MINIMIZE)
        state.add_constraints([x >= 2, x <= 10])
        state.set_objective(x)
        assert state.solve().objective == 2
        state.add_constraint(x <= 100)  # slack at the optimum
        result = state.solve()
        assert result.objective == 2
        assert result.pivots == 0

    def test_equality_added_warm(self):
        state = SimplexState(Sense.MINIMIZE)
        constraints = [x >= 2, y >= 3]
        state.add_constraints(constraints)
        state.set_objective(x)
        assert state.solve().objective == 2
        equality = (x + y).eq(10)
        state.add_constraint(equality)
        constraints.append(equality)
        assert_matches_cold(state, constraints, x, Sense.MINIMIZE)
        assert state.warm_solves == 1

    def test_infeasibility_detected_and_final(self):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 5, x >= 0])
        state.set_objective(x)
        assert state.solve().objective == 5
        state.add_constraint(x >= 7)
        assert state.solve().status is LpStatus.INFEASIBLE
        # Constraints only accumulate, so the verdict is permanent.
        state.add_constraint(y <= 1)
        assert state.solve().status is LpStatus.INFEASIBLE


class TestWarmColumnsAndObjective:
    def test_new_variable_and_rows(self):
        state = SimplexState(Sense.MAXIMIZE)
        constraints = [x <= 3, x >= 0]
        state.add_constraints(constraints)
        state.set_objective(x)
        assert state.solve().objective == 3

        state.declare("z", nonnegative=True)
        new = [z <= 2]
        state.add_constraints(new)
        constraints.extend(new)
        state.set_objective(x + z)
        assert_matches_cold(state, constraints + [z >= 0], x + z, Sense.MAXIMIZE)
        assert state.solve().objective == 5

    def test_objective_change_only_repriced(self):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 3, y <= 4, x >= 0, y >= 0])
        state.set_objective(x)
        assert state.solve().objective == 3
        state.set_objective(y)
        result = state.solve()
        assert result.objective == 4
        assert state.warm_solves == 1

    def test_unchanged_problem_returns_cached_result(self):
        state = SimplexState(Sense.MINIMIZE)
        state.add_constraints([x >= 1])
        state.set_objective(x)
        first = state.solve()
        second = state.solve()
        assert second is first
        assert state.cold_solves == 1 and state.warm_solves == 0

    def test_unbounded_then_cold_recovery(self):
        state = SimplexState(Sense.MINIMIZE)
        state.add_constraint(x <= 5)
        state.set_objective(x)
        result = state.solve()
        assert result.status is LpStatus.UNBOUNDED
        assert result.ray["x"] < 0
        # No optimal basis to warm-start from: the next solve is cold.
        state.add_constraint(x >= -7)
        result = state.solve()
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == -7
        assert state.cold_solves == 2


class TestValidation:
    def test_strict_inequality_rejected(self):
        state = SimplexState()
        with pytest.raises(ValueError):
            state.add_constraint(x < 1)

    def test_cannot_tighten_free_variable_to_nonnegative(self):
        state = SimplexState()
        state.add_constraint(x <= 1)  # auto-declares x as free
        with pytest.raises(ValueError):
            state.declare("x", nonnegative=True)

    def test_cannot_loosen_nonnegative_variable_to_free(self):
        state = SimplexState()
        state.declare("x", nonnegative=True)
        with pytest.raises(ValueError):
            state.declare("x")

    def test_same_bound_redeclaration_is_idempotent(self):
        state = SimplexState()
        state.declare("x", nonnegative=True)
        state.declare("x", nonnegative=True)
        state.set_objective(x)
        state.add_constraint(x <= 1)
        assert state.solve().status is LpStatus.OPTIMAL


@settings(max_examples=40, deadline=None)
@given(
    bounds=st.lists(
        st.tuples(
            st.sampled_from(["x", "y", "z"]),
            st.integers(min_value=-6, max_value=6),
            st.integers(min_value=-3, max_value=8),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_incremental_prefixes_match_one_shot_solves(bounds):
    """Adding rows one at a time tracks the one-shot solver exactly.

    Each (v, low, high) pair contributes ``low ≤ c·v`` and ``v ≤ high``
    rows; after every addition the warm solution must match a cold solve
    of the accumulated system in status and optimal value.
    """
    objective = var("x") + 2 * var("y") - var("z")
    state = SimplexState(Sense.MAXIMIZE)
    state.set_objective(objective)
    accumulated = []
    for name, low, high in bounds:
        for constraint in (var(name) >= low, var(name) <= low + abs(high)):
            state.add_constraint(constraint)
            accumulated.append(constraint)
        warm = state.solve()
        cold = solve_lp(objective, accumulated, Sense.MAXIMIZE)
        assert warm.status == cold.status
        if warm.status is LpStatus.OPTIMAL:
            assert warm.objective == cold.objective
            for constraint in accumulated:
                assert constraint.satisfied_by(warm.assignment)
        elif warm.status is LpStatus.UNBOUNDED:
            assert warm.ray


def test_pivot_accounting_totals():
    state = SimplexState(Sense.MAXIMIZE)
    state.add_constraints([x <= 3, y <= 4, x >= 0, y >= 0])
    state.set_objective(x + y)
    total = state.solve().pivots
    state.add_constraint(x + y <= 5)
    total += state.solve().pivots
    assert state.total_pivots == total
    assert state.last_solve_warm
    assert state.last_solve_pivots <= total


def test_fraction_exactness_preserved():
    state = SimplexState(Sense.MINIMIZE)
    state.add_constraints([2 * x >= 1, 3 * x <= 2])
    state.set_objective(x)
    assert state.solve().objective == Fraction(1, 2)
    state.add_constraint(5 * x >= 3)
    assert state.solve().objective == Fraction(3, 5)


def test_constant_objective_term():
    state = SimplexState(Sense.MAXIMIZE)
    state.add_constraints([x <= 3, x >= 0])
    state.set_objective(x + LinExpr.constant(10))
    assert state.solve().objective == 13
    state.add_constraint(x <= 1)
    assert state.solve().objective == 11
