"""Tests for the exact two-phase simplex."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.linexpr.expr import LinExpr, var
from repro.lp.problem import LinearProgram, Sense
from repro.lp.simplex import check_feasibility, solve_lp

x, y, z = var("x"), var("y"), var("z")


class TestBasicSolves:
    def test_bounded_maximum(self):
        result = solve_lp(x + y, [x <= 3, y <= 4, x + y <= 5, x >= 0, y >= 0], Sense.MAXIMIZE)
        assert result.is_optimal
        assert result.objective == 5

    def test_bounded_minimum(self):
        result = solve_lp(x, [x >= -7, x <= 3], Sense.MINIMIZE)
        assert result.objective == -7

    def test_infeasible(self):
        assert solve_lp(x, [x <= 0, x >= 1], Sense.MINIMIZE).is_infeasible

    def test_unbounded_with_ray(self):
        result = solve_lp(x, [x <= 5], Sense.MINIMIZE)
        assert result.is_unbounded
        assert result.ray["x"] < 0

    def test_equality_constraints(self):
        result = solve_lp(x, [(x + y).eq(10), x >= 2, y >= 3], Sense.MINIMIZE)
        assert result.objective == 2

    def test_free_variables(self):
        result = solve_lp(x - y, [x - y >= -3], Sense.MINIMIZE)
        assert result.objective == -3

    def test_fractional_optimum(self):
        result = solve_lp(x, [2 * x >= 1, 3 * x <= 2], Sense.MINIMIZE)
        assert result.objective == Fraction(1, 2)

    def test_constant_objective(self):
        result = solve_lp(LinExpr.constant(7), [x >= 0], Sense.MINIMIZE)
        assert result.objective == 7

    def test_strict_constraint_rejected(self):
        with pytest.raises(ValueError):
            solve_lp(x, [x < 1], Sense.MINIMIZE)

    def test_solution_satisfies_constraints(self):
        constraints = [x + 2 * y <= 14, 3 * x - y >= 0, x - y <= 2]
        result = solve_lp(x + y, constraints, Sense.MAXIMIZE)
        assert result.is_optimal
        for constraint in constraints:
            assert constraint.satisfied_by(result.assignment)

    def test_degenerate_redundant_rows(self):
        result = solve_lp(x, [x >= 0, x >= 0, (x - y).eq(0), (y - x).eq(0)], Sense.MINIMIZE)
        assert result.is_optimal
        assert result.objective == 0


class TestCheckFeasibility:
    def test_feasible(self):
        assert check_feasibility([x >= 0, x <= 1]).is_optimal

    def test_infeasible(self):
        assert check_feasibility([x >= 2, x <= 1]).is_infeasible


class TestLinearProgramModel:
    def test_num_rows_cols(self):
        program = LinearProgram(Sense.MAXIMIZE, x + y)
        program.add_constraints([x <= 1, y <= 2])
        assert program.num_rows == 2
        assert program.num_cols == 2

    def test_declared_variables_present(self):
        program = LinearProgram()
        program.declare("a", "b")
        assert program.variables()[:2] == ["a", "b"]

    def test_solve_wrapper(self):
        program = LinearProgram(Sense.MAXIMIZE, x)
        program.add_constraint(x <= 9)
        program.add_constraint(x >= 0)
        assert program.solve().objective == 9

    def test_strict_rejected(self):
        program = LinearProgram()
        with pytest.raises(ValueError):
            program.add_constraint(x < 1)


bounds = st.integers(min_value=-10, max_value=10)


class TestRandomisedBoxes:
    @given(bounds, bounds, bounds, bounds)
    @settings(max_examples=40, deadline=None)
    def test_box_optimum_hits_corner(self, lox, hix, loy, hiy):
        constraints = [x >= lox, x <= hix, y >= loy, y <= hiy]
        result = solve_lp(x + y, constraints, Sense.MAXIMIZE)
        if lox > hix or loy > hiy:
            assert result.is_infeasible
        else:
            assert result.is_optimal
            assert result.objective == hix + hiy

    @given(st.lists(st.tuples(bounds, bounds, bounds), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_feasible_point_satisfies_all(self, rows):
        constraints = [a * x + b * y <= c for a, b, c in rows]
        result = solve_lp(x + y, constraints + [x >= -20, y >= -20], Sense.MAXIMIZE)
        if result.is_optimal:
            for constraint in constraints:
                assert constraint.satisfied_by(result.assignment)
