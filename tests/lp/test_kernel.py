"""The packed int64 kernel through the simplex: bit-identical to exact.

``kernel="packed"`` must be a pure performance change: same status, same
optimal value, same assignment, and the *same pivot sequence* (asserted
through the pivot count) as ``kernel="exact"`` on every instance.  The
warm-start path additionally gets the batched-repair guarantees under
test here: ``cex_batch = k`` rows appended between solves pay **one**
dual repair pass, and an objective change touching only nonbasic columns
is repriced incrementally instead of re-eliminating the cost row.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.packed import numpy_available
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr, var
from repro.lp.problem import LpStatus, Sense
from repro.lp.simplex import SimplexState, solve_lp

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="packed kernel requires numpy"
)

x, y, z = var("x"), var("y"), var("z")


def _random_lp(seed, variables=30, rows=18):
    """A seeded random LP wide enough for ``auto`` to pick packed."""
    rng = random.Random(seed)
    names = ["v%d" % i for i in range(variables)]
    constraints = []
    for name in names:
        constraints.append(Constraint(LinExpr({name: Fraction(-1)}), Relation.LE))
        constraints.append(
            Constraint(
                LinExpr({name: Fraction(1)}, Fraction(-rng.randint(3, 25))),
                Relation.LE,
            )
        )
    for _ in range(rows):
        terms = {
            name: Fraction(rng.randint(-6, 6))
            for name in rng.sample(names, rng.randint(3, 8))
        }
        constraints.append(
            Constraint(
                LinExpr(terms, Fraction(-rng.randint(0, 40))), Relation.LE
            )
        )
    objective = LinExpr(
        {name: Fraction(rng.randint(-4, 4)) for name in rng.sample(names, 10)}
    )
    return objective, constraints


@needs_numpy
class TestPackedSolveIdentity:
    @pytest.mark.parametrize("seed", range(8))
    def test_packed_matches_exact_bit_for_bit(self, seed):
        objective, constraints = _random_lp(seed)
        for sense in (Sense.MAXIMIZE, Sense.MINIMIZE):
            packed = solve_lp(objective, constraints, sense, kernel="packed")
            exact = solve_lp(objective, constraints, sense, kernel="exact")
            assert packed.status == exact.status
            assert packed.objective == exact.objective
            assert packed.assignment == exact.assignment
            # Same pivot count == same pivot sequence (Bland + identical
            # ratio tests are deterministic given the sequence).
            assert packed.pivots == exact.pivots

    def test_infeasible_and_unbounded_agree(self):
        infeasible = [x <= 1, x >= 2]
        for kernel in ("packed", "exact"):
            outcome = solve_lp(x, infeasible, Sense.MAXIMIZE, kernel=kernel)
            assert outcome.status is LpStatus.INFEASIBLE
        unbounded = [x >= 0]
        for kernel in ("packed", "exact"):
            outcome = solve_lp(x, unbounded, Sense.MAXIMIZE, kernel=kernel)
            assert outcome.status is LpStatus.UNBOUNDED


@needs_numpy
class TestPackedWarmState:
    @pytest.mark.parametrize("seed", range(4))
    def test_warm_runs_agree_across_kernels(self, seed):
        objective, constraints = _random_lp(seed, variables=26, rows=10)
        states = {
            kernel: SimplexState(Sense.MAXIMIZE, kernel=kernel)
            for kernel in ("packed", "exact")
        }
        for state in states.values():
            state.add_constraints(constraints[: len(constraints) - 6])
            state.set_objective(objective)
        first = {k: s.solve() for k, s in states.items()}
        assert first["packed"].status == first["exact"].status
        assert first["packed"].objective == first["exact"].objective
        for extra in constraints[len(constraints) - 6 :]:
            for state in states.values():
                state.add_constraint(extra)
            results = {k: s.solve() for k, s in states.items()}
            assert results["packed"].status == results["exact"].status
            assert results["packed"].objective == results["exact"].objective
            assert results["packed"].pivots == results["exact"].pivots


class TestBatchedRepair:
    """k appended rows -> one dual repair pass, not k."""

    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    def test_one_repair_pass_per_batch(self, batch):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 50, y <= 50, x >= 0, y >= 0])
        state.set_objective(x + y)
        assert state.solve().status is LpStatus.OPTIMAL
        assert state.dual_repair_passes == 0
        # Append `batch` violated cutting rows, then one solve.
        for k in range(batch):
            state.add_constraint(x + y <= 40 - k)
        result = state.solve()
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == 40 - (batch - 1)
        assert state.warm_solves == 1
        assert state.dual_repair_passes == 1
        assert state.last_repair_passes == 1

    def test_repair_passes_accumulate_per_solve_not_per_row(self):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 100, x >= 0])
        state.set_objective(x)
        state.solve()
        for bound in (90, 80, 70):
            state.add_constraint(x <= bound)
        state.solve()
        for bound in (60, 50):
            state.add_constraint(x <= bound)
        state.solve()
        assert state.warm_solves == 2
        assert state.dual_repair_passes == 2  # one pass per batch

    def test_incremental_repricing_on_nonbasic_objective_change(self):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 5, y <= 7, x >= 0, y >= 0])
        state.set_objective(x)
        assert state.solve().objective == 5
        before = state.incremental_repricings
        # y never entered the basis under the pure-x objective; adding a
        # y term patches the cost row in O(1) instead of re-eliminating.
        state.set_objective(x + y)
        result = state.solve()
        assert result.objective == 12
        assert state.incremental_repricings > before

    def test_constant_only_objective_change_is_free(self):
        state = SimplexState(Sense.MAXIMIZE)
        state.add_constraints([x <= 5, x >= 0])
        state.set_objective(x)
        assert state.solve().objective == 5
        before = state.incremental_repricings
        state.set_objective(x + 3)
        result = state.solve()
        assert result.objective == 8
        assert state.incremental_repricings > before
