"""Tests for the branch-and-bound integer layer."""

from fractions import Fraction


from repro.linexpr.expr import var
from repro.lp.branch_bound import find_integer_point, solve_ilp
from repro.lp.problem import LpStatus, Sense

x, y = var("x"), var("y")


class TestSolveIlp:
    def test_rounds_down(self):
        result = solve_ilp(x, [2 * x <= 7, x >= 0], ["x"], Sense.MAXIMIZE)
        assert result.objective == 3

    def test_rounds_up_for_minimisation(self):
        result = solve_ilp(x, [3 * x >= 4], ["x"], Sense.MINIMIZE)
        assert result.objective == 2

    def test_pure_lp_when_no_integers(self):
        result = solve_ilp(x, [2 * x <= 7, x >= 0], [], Sense.MAXIMIZE)
        assert result.objective == Fraction(7, 2)

    def test_infeasible_by_integrality(self):
        # 1/3 ≤ x ≤ 2/3 has rational but no integer solutions.
        result = solve_ilp(x, [3 * x >= 1, 3 * x <= 2], ["x"], Sense.MAXIMIZE)
        assert result.status is LpStatus.INFEASIBLE

    def test_two_dimensional(self):
        result = solve_ilp(
            x + y,
            [2 * x + 3 * y <= 12, x >= 0, y >= 0],
            ["x", "y"],
            Sense.MAXIMIZE,
        )
        assert result.objective == 6
        assert all(value.denominator == 1 for value in result.assignment.values())

    def test_unbounded_relaxation_reported(self):
        result = solve_ilp(x, [x <= 5], ["x"], Sense.MINIMIZE)
        assert result.status is LpStatus.UNBOUNDED

    def test_mixed_integer(self):
        result = solve_ilp(
            x + y, [x + y <= Fraction(7, 2), x >= 0, y >= 0], ["x"], Sense.MAXIMIZE
        )
        assert result.objective == Fraction(7, 2)


class TestFindIntegerPoint:
    def test_finds_point(self):
        result = find_integer_point([x >= 1, x <= 3, (x - y).eq(0)], ["x", "y"])
        assert result.is_optimal
        assert result.assignment["x"].denominator == 1

    def test_infeasible(self):
        result = find_integer_point([2 * x >= 1, 2 * x <= 1], ["x"])
        assert result.status is LpStatus.INFEASIBLE
