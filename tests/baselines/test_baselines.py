"""Tests for the baseline provers (PR, eager Farkas, eager generators, heuristic)."""

import pytest

from repro.baselines import (
    eager_farkas_lexicographic,
    eager_generator_synthesis,
    heuristic_prover,
    podelski_rybalchenko,
)
from repro.baselines.dnf import expand_disjuncts
from repro.core.certificate import check_certificate
from repro.core.termination import TerminationProver
from repro.linexpr.expr import var
from repro.program.builder import AutomatonBuilder


def problem_for(automaton):
    return TerminationProver(automaton, check_certificates=False).build_problem()


@pytest.fixture
def countdown_problem(countdown_automaton):
    return problem_for(countdown_automaton)


@pytest.fixture
def example1_problem(example1_automaton):
    return problem_for(example1_automaton)


@pytest.fixture
def stutter_problem(stutter_automaton):
    return problem_for(stutter_automaton)


@pytest.fixture
def lexicographic_problem(lexicographic_automaton):
    return problem_for(lexicographic_automaton)


class TestDnfExpansion:
    def test_example1_has_two_disjuncts(self, example1_problem):
        disjuncts = expand_disjuncts(example1_problem)
        assert len(disjuncts) == 2

    def test_infeasible_paths_pruned(self):
        x = var("x")
        builder = AutomatonBuilder(["x"], initial="k")
        builder.transition("k", "k", guard=[x > 0, x < 0], updates={"x": x - 1})
        builder.transition("k", "k", guard=[x > 0], updates={"x": x - 1})
        disjuncts = expand_disjuncts(problem_for(builder.build()))
        assert len(disjuncts) == 1


class TestPodelskiRybalchenko:
    def test_countdown(self, countdown_problem):
        result = podelski_rybalchenko(countdown_problem)
        assert result.proved

    def test_example1(self, example1_problem):
        result = podelski_rybalchenko(example1_problem)
        assert result.proved

    def test_stutter_rejected(self, stutter_problem):
        assert not podelski_rybalchenko(stutter_problem).proved

    def test_lexicographic_out_of_reach(self, lexicographic_problem):
        # A single linear ranking function may or may not exist here, but the
        # result must at least be sound: if claimed, the certificate holds.
        result = podelski_rybalchenko(lexicographic_problem)
        if result.proved:
            assert check_certificate(lexicographic_problem, result.ranking)


class TestEagerFarkas:
    def test_countdown(self, countdown_problem):
        result = eager_farkas_lexicographic(countdown_problem)
        assert result.proved
        assert result.lp_statistics.instances >= 1

    def test_example1_certificate(self, example1_problem):
        result = eager_farkas_lexicographic(example1_problem)
        assert result.proved
        assert check_certificate(example1_problem, result.ranking)

    def test_lexicographic(self, lexicographic_problem):
        result = eager_farkas_lexicographic(lexicographic_problem)
        assert result.proved

    def test_stutter_rejected(self, stutter_problem):
        assert not eager_farkas_lexicographic(stutter_problem).proved

    def test_lp_bigger_than_lazy(self, example1_problem, example1_automaton):
        eager = eager_farkas_lexicographic(example1_problem)
        lazy = TerminationProver(example1_automaton, check_certificates=False).prove()
        assert eager.lp_statistics.max_rows > lazy.lp_statistics.max_rows


class TestEagerGenerators:
    def test_countdown(self, countdown_problem):
        result = eager_generator_synthesis(countdown_problem)
        assert result.proved
        assert result.details["generators"] >= 1

    def test_example1(self, example1_problem):
        result = eager_generator_synthesis(example1_problem)
        assert result.proved

    def test_stutter_rejected(self, stutter_problem):
        assert not eager_generator_synthesis(stutter_problem).proved


class TestHeuristic:
    def test_countdown(self, countdown_problem):
        result = heuristic_prover(countdown_problem)
        assert result.proved

    def test_example1(self, example1_problem):
        result = heuristic_prover(example1_problem)
        assert result.proved

    def test_stutter_rejected(self, stutter_problem):
        assert not heuristic_prover(stutter_problem).proved

    def test_result_shape(self, countdown_problem):
        result = heuristic_prover(countdown_problem)
        assert result.name.startswith("heuristic")
        assert result.time_seconds >= 0
        assert "candidates" in result.details
