"""Tests for the parallel benchmark engine and the reworked suite runner.

Covers the three guarantees of :mod:`repro.reporting.parallel` (hard
timeouts, crash isolation, deterministic ordering) plus the runner-level
robustness requirements: a crashing or hanging benchmark records a failed
:class:`ProgramOutcome` instead of aborting the table, empty/filtered
suites produce empty reports, and the JSON serialisation round-trips.
"""

import functools
import json
import os
import time

import pytest

from repro.benchsuite import get_suite
from repro.benchsuite.program import BenchmarkProgram
from repro.reporting import (
    reports_to_json_dict,
    run_suite,
    run_table1,
    run_tasks,
)
from repro.reporting.runner import select_programs


# ---------------------------------------------------------------------------
# Engine-level behaviour (module-level thunk helpers: picklable under any
# start method, inherited directly under fork)
# ---------------------------------------------------------------------------


def _identity(value):
    return value


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _raise_value_error():
    raise ValueError("deliberate failure")


def _hard_exit():
    os._exit(3)


class TestRunTasks:
    def test_inline_path_preserves_order_and_values(self):
        thunks = [functools.partial(_identity, i) for i in range(5)]
        results = run_tasks(thunks, jobs=1)
        assert [r.value for r in results] == list(range(5))
        assert all(r.ok for r in results)

    def test_parallel_results_come_back_in_submission_order(self):
        # Later tasks finish first; the result list must not reorder.
        delays = [0.3, 0.2, 0.1, 0.0]
        thunks = [
            functools.partial(_sleep_then_return, delay, index)
            for index, delay in enumerate(delays)
        ]
        results = run_tasks(thunks, jobs=4, timeout=30)
        assert [r.value for r in results] == [0, 1, 2, 3]

    def test_exception_becomes_error_result(self):
        results = run_tasks([_raise_value_error], jobs=2, timeout=30)
        assert results[0].kind == "error"
        assert "deliberate failure" in results[0].message

    def test_inline_exception_becomes_error_result(self):
        results = run_tasks([_raise_value_error], jobs=1)
        assert results[0].kind == "error"

    def test_timeout_kills_the_worker(self):
        thunks = [
            functools.partial(_sleep_then_return, 30, "never"),
            functools.partial(_identity, "fast"),
        ]
        start = time.monotonic()
        results = run_tasks(thunks, jobs=2, timeout=1.0)
        elapsed = time.monotonic() - start
        assert results[0].kind == "timeout"
        assert results[1].ok and results[1].value == "fast"
        assert elapsed < 20  # the sleeper was killed, not awaited

    def test_worker_death_is_reported_as_crash(self):
        results = run_tasks([_hard_exit], jobs=2, timeout=30)
        assert results[0].kind == "crash"
        assert "exit code" in results[0].message

    def test_more_tasks_than_jobs_all_complete(self):
        thunks = [functools.partial(_identity, i) for i in range(10)]
        results = run_tasks(thunks, jobs=3, timeout=60)
        assert [r.value for r in results] == list(range(10))


# ---------------------------------------------------------------------------
# Runner-level behaviour
# ---------------------------------------------------------------------------


def _explosive_automaton():
    raise RuntimeError("this benchmark cannot even be built")


def _sleepy_automaton():
    time.sleep(30)
    raise AssertionError("unreachable: the engine kills us first")


CRASHING = BenchmarkProgram(
    name="crasher", suite="synthetic", terminating=True,
    factory=_explosive_automaton,
)
HANGING = BenchmarkProgram(
    name="hanger", suite="synthetic", terminating=True,
    factory=_sleepy_automaton,
)


class TestRunSuiteRobustness:
    def test_empty_suite_yields_empty_report(self):
        report = run_suite("empty", [], tool="termite")
        assert report.total == 0
        assert report.successes == 0
        assert report.average_time_ms == 0.0
        assert report.unsound == []

    def test_unknown_tool_rejected(self):
        with pytest.raises(KeyError):
            run_suite("wtc", [], tool="no-such-tool")

    def test_crashing_program_records_failed_outcome(self):
        healthy = get_suite("wtc")[:1]
        report = run_suite(
            "mixed", [CRASHING] + healthy, tool="heuristic", jobs=2, timeout=60
        )
        assert report.total == 2
        crashed, ok = report.outcomes
        assert crashed.program == "crasher"
        assert not crashed.proved
        assert "cannot even be built" in crashed.error
        assert ok.error is None

    def test_crashing_program_handled_inline_too(self):
        report = run_suite("mixed", [CRASHING], tool="heuristic")
        assert report.outcomes[0].error is not None

    def test_timeout_records_failed_outcome_in_order(self):
        healthy = get_suite("wtc")[:1]
        report = run_suite(
            "mixed", [HANGING] + healthy, tool="heuristic", jobs=2, timeout=1.0
        )
        assert [o.program for o in report.outcomes] == [
            "hanger",
            healthy[0].name,
        ]
        hung = report.outcomes[0]
        assert hung.timed_out and not hung.proved
        assert "timeout" in hung.error
        assert report.timeouts == 1

    def test_parallel_and_sequential_agree(self):
        programs = get_suite("wtc")[:3]
        sequential = run_suite("wtc", programs, tool="heuristic")
        parallel = run_suite(
            "wtc", programs, tool="heuristic", jobs=3, timeout=120
        )
        assert [o.program for o in sequential.outcomes] == [
            o.program for o in parallel.outcomes
        ]
        assert [o.proved for o in sequential.outcomes] == [
            o.proved for o in parallel.outcomes
        ]


class TestSelectionAndTable1:
    def test_select_programs_filters_then_limits(self):
        programs = get_suite("wtc")
        named = select_programs(programs, name_filter=programs[0].name)
        assert named and all(programs[0].name in p.name for p in named)
        assert select_programs(programs, limit=2) == list(programs)[:2]
        assert select_programs(programs, name_filter="zzz-no-match") == []

    def test_run_table1_emits_empty_rows_for_filtered_cells(self):
        reports = run_table1(
            {"wtc": get_suite("wtc")},
            ["termite", "heuristic"],
            name_filter="zzz-no-match",
        )
        assert [(r.suite, r.tool) for r in reports] == [
            ("wtc", "termite"),
            ("wtc", "heuristic"),
        ]
        assert all(r.total == 0 for r in reports)

    def test_run_table1_groups_and_orders_cells(self):
        suites = {
            "wtc": get_suite("wtc")[:2],
            "sorts": get_suite("sorts")[:1],
        }
        reports = run_table1(suites, ["heuristic"], jobs=2, timeout=120)
        assert [(r.suite, r.tool) for r in reports] == [
            ("wtc", "heuristic"),
            ("sorts", "heuristic"),
        ]
        assert reports[0].total == 2
        assert reports[1].total == 1

    def test_json_document_round_trips(self):
        reports = run_table1(
            {"wtc": get_suite("wtc")[:2]}, ["heuristic"], jobs=2, timeout=120
        )
        document = reports_to_json_dict(reports, meta={"jobs": 2})
        text = json.dumps(document)
        parsed = json.loads(text)
        assert parsed["schema_version"] == 2
        assert parsed["meta"]["jobs"] == 2
        assert parsed["totals"]["programs"] == 2
        suite = parsed["suites"][0]
        assert suite["suite"] == "wtc"
        assert len(suite["outcomes"]) == 2
        for outcome in suite["outcomes"]:
            assert set(outcome) >= {"program", "proved", "time_ms", "lp", "stages"}

    def test_problem_sharing_reported_across_tools(self):
        # Two tools on the same programs: the problem is built once per
        # program and every additional tool's rebuild is accounted as saved.
        reports = run_table1(
            {"wtc": get_suite("wtc")[:2]}, ["heuristic", "dnf"]
        )
        document = reports_to_json_dict(reports)
        sharing = document["totals"]["problem_sharing"]
        assert sharing["problem_builds"] == 2
        assert sharing["rebuilds_avoided"] == 2
        assert sharing["seconds_saved"] > 0.0
        # The shared build stages appear identically in both tools' outcomes.
        heuristic, dnf = reports
        for left, right in zip(heuristic.outcomes, dnf.outcomes):
            build = [s for s in left.stages if s.name != "synthesis"]
            other = [s for s in right.stages if s.name != "synthesis"]
            assert [(s.name, s.seconds) for s in build] == [
                (s.name, s.seconds) for s in other
            ]


class TestToolsViewAndConfig:
    def test_tools_is_a_live_registry_view(self):
        from repro.api import available_provers
        from repro.reporting import TOOLS

        assert list(TOOLS) == available_provers()
        assert "termite" in TOOLS and TOOLS["termite"].name == "termite"
        assert "eager-farkas" in TOOLS  # hyphenated lookups resolve too

    def test_conflicting_lp_mode_and_config_rejected(self):
        from repro.api import AnalysisConfig

        with pytest.raises(ValueError, match="lp_mode"):
            run_suite(
                "wtc", [], tool="termite",
                lp_mode="cold", config=AnalysisConfig(),
            )
