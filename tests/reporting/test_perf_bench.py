"""The ``repro bench`` micro-suite and its JSON schema."""

import json
import subprocess
import sys

import pytest

from repro.reporting.perf import (
    CEGIS_ABLATION_VARIANTS,
    DEFAULT_SUITES,
    SCHEMA_VERSION,
    SUITE_RUNNERS,
    bench_cegis_ablation,
    bench_kernel_rows,
    bench_nonterm,
    bench_projection,
    bench_service,
    bench_simplex,
    merge_bench_documents,
    run_suite,
)

EXPECTED_SUITES = {
    "kernel_rows",
    "simplex",
    "projection",
    "table1_wtc",
    "cegis_ablation",
    "kernel_packed",
    "cex_batch_ablation",
    "kernel_crossover",
}


class TestSuites:
    def test_kernel_rows_counts_operations(self):
        report = bench_kernel_rows(quick=True)
        assert report["suite"] == "kernel_rows"
        assert report["operations"] > 0
        assert report["wall_seconds"] >= 0
        assert report["dense_wall_seconds"] >= 0

    def test_simplex_reports_pivots(self):
        report = bench_simplex(quick=True)
        assert report["lps_solved"] > 0
        assert report["pivots"] > 0
        assert report["warm_solves"] > 0

    def test_projection_reports_eliminations(self):
        report = bench_projection(quick=True)
        assert report["variables_eliminated"] > 0
        assert report["rows_eliminated"] >= 0
        assert report["lp_calls_saved"] >= 0

    def test_run_suite_document_shape(self):
        document = run_suite(quick=True)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["quick"] is True
        names = {suite["suite"] for suite in document["suites"]}
        assert names == EXPECTED_SUITES
        assert document["total_wall_seconds"] >= 0
        wtc = next(
            suite
            for suite in document["suites"]
            if suite["suite"] == "table1_wtc"
        )
        assert wtc["proved"] > 0

    def test_cegis_ablation_variants_agree_on_verdicts(self):
        report = bench_cegis_ablation(quick=True)
        assert report["suite"] == "cegis_ablation"
        variants = report["variants"]
        assert {(v["oracle"], v["strategy"]) for v in variants} == set(
            CEGIS_ABLATION_VARIANTS
        )
        # The strategies change the cost profile, never the verdicts on
        # this slice — every variant proves the same programs.
        assert len({v["proved"] for v in variants}) == 1
        for variant in variants:
            assert variant["iterations"] > 0
            assert variant["lp_rows"] > 0
            assert variant["oracle_queries"] >= variant["iterations"]

    def test_nonterm_certifies_every_verdict(self):
        report = bench_nonterm(quick=True)
        assert report["suite"] == "nonterm"
        assert report["nonterminating"] > 0
        assert report["errors"] == 0
        assert report["lassos_checked"] == report["nonterminating"]
        assert report["lassos_valid"] == report["lassos_checked"]

    def test_deterministic_counters_across_runs(self):
        # Wall-clock varies; the seeded workload counters must not.
        first = bench_simplex(quick=True, seed=5)
        second = bench_simplex(quick=True, seed=5)
        assert first["pivots"] == second["pivots"]
        assert first["lps_solved"] == second["lps_solved"]


class TestSuiteSelection:
    def test_default_suites_match_the_committed_document(self):
        assert set(DEFAULT_SUITES) == EXPECTED_SUITES
        # service, nonterm and service_chaos are opt-in suites: runnable
        # by name, kept out of the default selection (and so out of CI's
        # perf smoke).
        assert set(DEFAULT_SUITES) | {
            "service", "nonterm", "service_chaos"
        } == set(
            SUITE_RUNNERS
        )

    def test_run_suite_with_a_selection(self):
        document = run_suite(quick=True, suites=["kernel_rows"])
        assert [s["suite"] for s in document["suites"]] == ["kernel_rows"]

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_suite(quick=True, suites=["kernel_rows", "nope"])

    def test_merge_replaces_and_preserves(self):
        previous = {
            "schema_version": SCHEMA_VERSION,
            "quick": False,
            "seed": 0,
            "total_wall_seconds": 3.0,
            "suites": [
                {"suite": "kernel_rows", "wall_seconds": 1.0, "operations": 9},
                {"suite": "simplex", "wall_seconds": 2.0},
            ],
            "baseline": {"kept": True},
        }
        current = {
            "schema_version": SCHEMA_VERSION,
            "quick": True,
            "seed": 7,
            "total_wall_seconds": 0.5,
            "suites": [
                {"suite": "simplex", "wall_seconds": 0.25},
                {"suite": "service", "wall_seconds": 0.25},
            ],
        }
        merged = merge_bench_documents(previous, current)
        assert [s["suite"] for s in merged["suites"]] == [
            "kernel_rows",
            "simplex",
            "service",
        ]
        assert merged["suites"][1]["wall_seconds"] == 0.25
        assert merged["suites"][0]["operations"] == 9
        assert merged["baseline"] == {"kept": True}
        assert merged["quick"] is True and merged["seed"] == 7
        assert merged["total_wall_seconds"] == 1.5
        # The inputs are not mutated.
        assert previous["suites"][1]["wall_seconds"] == 2.0


class TestServiceSuite:
    def test_quick_service_bench_holds_the_headline_claims(self):
        report = bench_service(quick=True)
        assert report["suite"] == "service"
        assert report["cold_requests"] > 0 and report["warm_requests"] > 0
        # Every cold request misses, every warm request is a served hit.
        assert report["cache_misses"] == report["cold_requests"]
        assert report["cache_hits"] == report["warm_requests"]
        # The committed acceptance claims: a warm (revalidated) hit is
        # strictly cheaper than a cold analysis, and no cached
        # certificate ever failed its independent re-check.
        assert report["warm_p99_seconds"] < report["cold_p99_seconds"]
        assert report["revalidations"] == report["warm_requests"]
        assert report["revalidation_failures"] == 0
        assert report["warm_programs_per_second"] > (
            report["cold_programs_per_second"]
        )


class TestCommandLine:
    def test_repro_bench_quick_writes_json(self, tmp_path):
        target = tmp_path / "bench.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "bench",
                "--quick",
                "--json",
                str(target),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        document = json.loads(target.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert {s["suite"] for s in document["suites"]} == EXPECTED_SUITES

    def test_repro_bench_print_only(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--quick", "--json", "-"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "table1_wtc" in completed.stdout
        assert "wrote" not in completed.stdout
