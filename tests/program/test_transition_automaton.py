"""Tests for transitions and control-flow automata."""

import pytest

from repro.linexpr.expr import var
from repro.linexpr.formula import Or
from repro.linexpr.transform import formula_variables
from repro.program.automaton import ControlFlowAutomaton
from repro.program.builder import AutomatonBuilder, simple_loop
from repro.program.transition import Transition, fresh_variable
from repro.smt.solver import SmtSolver

x, y = var("x"), var("y")


class TestTransitionRelation:
    def test_identity_for_unassigned(self):
        transition = Transition("a", "b", guard=x >= 0, updates={"x": x - 1})
        relation = transition.relation(["x", "y"])
        solver = SmtSolver()
        solver.assert_formula(relation)
        solver.assert_formula(var("x").eq(5))
        model = solver.check().model
        assert model["x'"] == 4
        assert model["y'"] == model["y"]

    def test_havoc_unconstrained(self):
        transition = Transition("a", "b", updates={"x": None})
        relation = transition.relation(["x"])
        solver = SmtSolver()
        solver.assert_formula(relation)
        solver.assert_formula(var("x").eq(0))
        solver.assert_formula(var("x'").eq(1000))
        assert solver.check().is_sat

    def test_auxiliary_variables_freshened(self):
        transition = Transition("a", "b", guard=var("aux") >= 0, updates={"x": var("aux")})
        first = transition.relation(["x"])
        second = transition.relation(["x"])
        assert formula_variables(first) != formula_variables(second)

    def test_guard_constraints_conjunction(self):
        transition = Transition("a", "b", guard=(x >= 0) & (y <= 2))
        assert len(transition.guard_constraints()) == 2

    def test_guard_constraints_disjunction_is_none(self):
        transition = Transition("a", "b", guard=Or([x >= 0, y <= 2]))
        assert transition.guard_constraints() is None

    def test_fresh_variable_unique(self):
        assert fresh_variable("v") != fresh_variable("v")


class TestAutomaton:
    def build(self):
        builder = AutomatonBuilder(["x"], initial="a")
        builder.transition("a", "b", guard=[x >= 0])
        builder.transition("b", "a", updates={"x": x - 1})
        builder.transition("b", "c")
        return builder.build()

    def test_structure(self):
        cfa = self.build()
        assert cfa.locations == {"a", "b", "c"}
        assert cfa.successors("b") == ["a", "c"]
        assert cfa.predecessors("a") == ["b"]

    def test_reachability_and_cycles(self):
        cfa = self.build()
        assert cfa.reachable_locations() == {"a", "b", "c"}
        assert cfa.has_cycle()

    def test_statistics(self):
        stats = self.build().statistics()
        assert stats == {"locations": 3, "transitions": 3, "variables": 1}

    def test_unknown_update_variable_rejected(self):
        cfa = ControlFlowAutomaton(["x"], "a")
        with pytest.raises(ValueError):
            cfa.add_transition(Transition("a", "a", updates={"z": x}))

    def test_simple_loop_helper(self):
        cfa = simple_loop(
            ["x"],
            [
                {"guard": [x >= 1], "updates": {"x": x - 1}, "name": "dec"},
            ],
        )
        assert cfa.locations == {"loop"}
        assert len(cfa.transitions) == 1
        assert cfa.integer_variables == {"x"}

    def test_integer_constant_update_coerced(self):
        builder = AutomatonBuilder(["x"], initial="a")
        transition = builder.transition("a", "a", updates={"x": 7})
        assert transition.updates["x"].constant_term == 7
