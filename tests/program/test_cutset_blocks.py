"""Tests for cut-set computation and the large-block encoding."""


from repro.linexpr.expr import var
from repro.linexpr.transform import prime_suffix
from repro.program.builder import AutomatonBuilder
from repro.program.cutset import compute_cutset, is_cutset
from repro.program.large_block import large_block_encoding
from repro.smt.solver import SmtSolver

x, y = var("x"), var("y")


def nested_loops():
    builder = AutomatonBuilder(["i", "j"], initial="start")
    i, j = var("i"), var("j")
    builder.transition("start", "outer", updates={"i": 0})
    builder.transition("outer", "inner", guard=[i <= 9], updates={"j": 0})
    builder.transition("inner", "inner", guard=[j <= 9], updates={"j": j + 1})
    builder.transition("inner", "outer", guard=[j >= 10], updates={"i": i + 1})
    return builder.build()


def diamond_loop():
    """A loop whose body has two paths through a diamond."""
    builder = AutomatonBuilder(["x"], initial="head")
    builder.transition("head", "left", guard=[x >= 1])
    builder.transition("head", "right", guard=[x >= 1])
    builder.transition("left", "head", updates={"x": x - 1})
    builder.transition("right", "head", updates={"x": x - 2})
    return builder.build()


class TestCutset:
    def test_loop_headers_found(self):
        cutset = compute_cutset(nested_loops())
        assert set(cutset) == {"outer", "inner"}

    def test_is_cutset(self):
        cfa = nested_loops()
        assert is_cutset(cfa, ["outer", "inner"])
        assert not is_cutset(cfa, ["outer"])

    def test_acyclic_graph_has_empty_cutset(self):
        builder = AutomatonBuilder(["x"], initial="a")
        builder.transition("a", "b")
        builder.transition("b", "c")
        assert compute_cutset(builder.build()) == []

    def test_self_loop(self):
        builder = AutomatonBuilder(["x"], initial="a")
        builder.transition("a", "a", guard=[x >= 0], updates={"x": x - 1})
        assert compute_cutset(builder.build()) == ["a"]


class TestLargeBlocks:
    def test_diamond_becomes_one_block_with_two_paths(self):
        cfa = diamond_loop()
        blocks = large_block_encoding(cfa, ["head"])
        assert len(blocks) == 1
        assert blocks[0].path_count == 2

    def test_block_relation_is_correct(self):
        cfa = diamond_loop()
        (block,) = large_block_encoding(cfa, ["head"])
        solver = SmtSolver()
        solver.assert_formula(block.formula)
        solver.assert_formula(var("x").eq(5))
        solver.assert_formula(var(prime_suffix("x")).eq(4))
        assert solver.check().is_sat
        # x' = 5 is not reachable in one body execution from x = 5.
        solver2 = SmtSolver()
        solver2.assert_formula(block.formula)
        solver2.assert_formula(var("x").eq(5))
        solver2.assert_formula(var(prime_suffix("x")).eq(5))
        assert solver2.check().is_unsat

    def test_guard_excludes_models(self):
        cfa = diamond_loop()
        (block,) = large_block_encoding(cfa, ["head"])
        solver = SmtSolver()
        solver.assert_formula(block.formula)
        solver.assert_formula(var("x").eq(0))
        assert solver.check().is_unsat

    def test_nested_loop_block_structure(self):
        cfa = nested_loops()
        blocks = large_block_encoding(cfa)
        pairs = {(block.source, block.target) for block in blocks}
        assert ("inner", "inner") in pairs
        assert ("outer", "inner") in pairs
        assert ("inner", "outer") in pairs
        assert ("outer", "outer") not in pairs
