"""The recurrence-set engine: gadget classes proved, negatives refused."""

from fractions import Fraction

import pytest

from repro.frontend.lowering import compile_program
from repro.nontermination import synthesize_recurrence
from repro.synthesis.engine import SynthesisCancelled

COUNTUP = "var x; while (x >= 0) { x = x + 1; }"
CONSTANT_LOOP = "var x; x = 1; while (x >= 1) { x = x; }"
NONDET_ESCAPE = (
    "var x, y; while (x >= 0) { y = nondet(); x = x + y; }"
)
TWO_VARIABLE = (
    "var a, b; while (a + b >= 0) { a = a + 1; b = b - 1; }"
)
STEMMED = (
    "var x; x = 5; while (x >= 1) { x = x + 2; }"
)

TERMINATING = "var x; while (x > 0) { x = x - 1; }"
ACYCLIC = "var x; x = 1; x = x + 1;"


def _synthesize(source, **kwargs):
    return synthesize_recurrence(compile_program(source, "test"), **kwargs)


class TestGadgetClasses:
    @pytest.mark.parametrize(
        "source",
        [COUNTUP, CONSTANT_LOOP, NONDET_ESCAPE, TWO_VARIABLE, STEMMED],
        ids=["countup", "constant", "nondet", "two-variable", "stemmed"],
    )
    def test_proves_nontermination(self, source):
        outcome = _synthesize(source)
        assert outcome.success, outcome.message
        assert outcome.lasso is not None
        assert outcome.lasso.rows
        assert outcome.lasso.cycle

    def test_initial_state_is_integral(self):
        outcome = _synthesize(COUNTUP)
        for value in outcome.lasso.initial.values():
            assert value == Fraction(int(value))


class TestNegatives:
    def test_terminating_loop_is_not_claimed(self):
        outcome = _synthesize(TERMINATING)
        assert not outcome.success
        assert outcome.lasso is None

    def test_acyclic_program_reports_why(self):
        outcome = _synthesize(ACYCLIC)
        assert not outcome.success
        assert "acyclic" in outcome.message

    def test_budget_exhaustion_is_not_a_claim(self):
        outcome = _synthesize(COUNTUP, budget=1)
        # Budget 1 may or may not suffice for the first candidate, but a
        # success must still carry a full witness.
        if outcome.success:
            assert outcome.lasso is not None
        else:
            assert outcome.lasso is None


class TestSeams:
    def test_observers_receive_nonterm_events(self):
        events = []
        outcome = _synthesize(COUNTUP, observers=(events.append,))
        assert outcome.success
        kinds = [event.kind for event in events]
        assert kinds[0] == "nonterm_start"
        assert kinds[-1] == "nonterm_end"
        assert "nonterm_success" in kinds

    def test_should_stop_cancels(self):
        with pytest.raises(SynthesisCancelled):
            _synthesize(COUNTUP, should_stop=lambda: True)

    def test_statistics_surface_in_result(self):
        outcome = _synthesize(COUNTUP)
        statistics = outcome.statistics.to_dict()
        assert statistics["candidates"] >= 1
        assert outcome.iterations == statistics["refinements"]
