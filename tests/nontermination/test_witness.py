"""The lasso witness: exact JSON round-trips and the describe() view."""

import json
from fractions import Fraction

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.nontermination.witness import (
    CycleStep,
    Lasso,
    StemStep,
    constraint_from_dict,
    constraint_to_dict,
)


def _lasso() -> Lasso:
    return Lasso(
        cutpoint="loop_head_1",
        rows=[
            Constraint(
                LinExpr({"x": Fraction(-1)}, Fraction(3, 2)), Relation.LE
            ),
            Constraint(LinExpr({"y": Fraction(1, 3)}), Relation.LT),
        ],
        initial={"x": Fraction(7), "y": Fraction(-2, 1)},
        stem=[
            StemStep(transition=0, choices={"y": Fraction(5, 2)}),
            StemStep(transition=2, choices={}),
        ],
        cycle=[
            CycleStep(
                transition=3,
                conjunct=1,
                choices={"x": LinExpr({"x": Fraction(1)}, Fraction(1))},
            ),
            CycleStep(transition=4),
        ],
    )


class TestRoundTrip:
    def test_exact_json_round_trip(self):
        lasso = _lasso()
        document = json.loads(json.dumps(lasso.to_dict()))
        assert Lasso.from_dict(document) == lasso

    def test_fractions_serialise_as_strings(self):
        document = _lasso().to_dict()
        assert document["initial"]["x"] == "7"
        assert document["initial"]["y"] == "-2"
        text = json.dumps(document)
        assert "Fraction" not in text

    def test_constraint_round_trip_preserves_relation(self):
        for relation in (Relation.LE, Relation.LT, Relation.EQ):
            constraint = Constraint(
                LinExpr({"z": Fraction(5, 7)}, Fraction(-1, 2)), relation
            )
            data = json.loads(json.dumps(constraint_to_dict(constraint)))
            assert constraint_from_dict(data) == constraint

    def test_empty_stem_and_choices(self):
        lasso = Lasso(
            cutpoint="head",
            rows=[Constraint(LinExpr({"x": Fraction(1)}), Relation.LE)],
            initial={"x": Fraction(0)},
            stem=[],
            cycle=[CycleStep(transition=0)],
        )
        assert Lasso.from_dict(lasso.to_dict()) == lasso


class TestDescribe:
    def test_describe_counts_rows_and_steps(self):
        text = _lasso().describe()
        assert "2 rows" in text
        assert "loop_head_1" in text
        assert "stem 2 steps" in text
        assert "cycle 2 steps" in text
