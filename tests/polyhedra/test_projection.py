"""Tests for Fourier–Motzkin elimination and entailment."""

from hypothesis import given, settings, strategies as st

from repro.linexpr.expr import var
from repro.polyhedra.projection import (
    eliminate_variable,
    entails,
    fourier_motzkin,
    project_constraints,
    remove_redundant,
)

x, y, z = var("x"), var("y"), var("z")


class TestEliminateVariable:
    def test_bounds_combine(self):
        result = eliminate_variable([x <= y, x >= z], "x")
        assert len(result) == 1
        assert entails(result, z <= y)

    def test_equality_substituted(self):
        result = eliminate_variable([x.eq(y + 1), x <= 5], "x")
        assert entails(result, y <= 4)

    def test_unrelated_kept(self):
        result = eliminate_variable([y <= 3], "x")
        assert result == [(y <= 3)]

    def test_no_lower_bound_drops_uppers(self):
        result = eliminate_variable([x <= y], "x")
        assert result == []


class TestProjection:
    def test_project_box(self):
        constraints = [x >= 0, x <= 1, y >= 2, y <= 3, x <= y]
        projected = project_constraints(constraints, ["x"])
        assert entails(projected, x >= 0)
        assert entails(projected, x <= 1)
        for constraint in projected:
            assert constraint.variables() <= {"x"}

    def test_chain(self):
        constraints = [x <= y, y <= z, z <= 5]
        result = fourier_motzkin(constraints, ["y", "z"])
        assert entails(result, x <= 5)

    @given(st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_projection_preserves_satisfiability(self, a, b):
        lo, hi = min(a, b), max(a, b)
        constraints = [x >= lo, x <= hi, y.eq(x)]
        projected = project_constraints(constraints, ["y"])
        assert entails(projected, y >= lo)
        assert entails(projected, y <= hi)


class TestRedundancy:
    def test_removes_weaker_bound(self):
        assert len(remove_redundant([x <= 1, x <= 5])) == 1

    def test_keeps_both_sides(self):
        result = remove_redundant([x >= 0, x <= 1])
        assert len(result) == 2

    def test_duplicates_removed(self):
        assert len(remove_redundant([x <= 1, 2 * x <= 2])) == 1


class TestEntailment:
    def test_positive(self):
        assert entails([x >= 1, y >= x], y >= 1)

    def test_negative(self):
        assert not entails([x >= 0], x >= 1)

    def test_equality_entailment(self):
        assert entails([x.eq(3)], x >= 3)
        assert entails([x >= 3, x <= 3], x.eq(3))

    def test_unsatisfiable_entails_everything(self):
        assert entails([x >= 1, x <= 0], y >= 100)
