"""Tests for constraint-representation polyhedra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.linexpr.expr import var
from repro.polyhedra.polyhedron import Polyhedron

x, y = var("x"), var("y")


def box(lox, hix, loy, hiy):
    return Polyhedron(["x", "y"], [x >= lox, x <= hix, y >= loy, y <= hiy])


class TestPredicates:
    def test_universe(self):
        assert Polyhedron.universe(["x"]).is_universe()
        assert not Polyhedron.universe(["x"]).is_empty()

    def test_empty(self):
        assert Polyhedron.empty(["x"]).is_empty()

    def test_emptiness_by_conflict(self):
        assert Polyhedron(["x"], [x >= 1, x <= 0]).is_empty()

    def test_contains_point(self):
        assert box(0, 2, 0, 2).contains_point({"x": 1, "y": 2})
        assert not box(0, 2, 0, 2).contains_point({"x": 3, "y": 0})

    def test_entails_constraint(self):
        assert box(0, 2, 0, 2).entails_constraint(x <= 5)
        assert not box(0, 2, 0, 2).entails_constraint(x <= 1)

    def test_includes_and_equals(self):
        small = box(0, 1, 0, 1)
        large = box(0, 2, 0, 2)
        assert large.includes(small)
        assert not small.includes(large)
        assert small.equals(box(0, 1, 0, 1))

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            Polyhedron(["x"], [y <= 0])


class TestOperations:
    def test_intersect(self):
        meet = box(0, 3, 0, 3).intersect(box(2, 5, 2, 5))
        assert meet.equals(box(2, 3, 2, 3))

    def test_join_is_convex_hull(self):
        hull = box(0, 1, 0, 1).join(box(3, 4, 0, 1))
        assert hull.contains_point({"x": 2, "y": Fraction(1, 2)})
        assert not hull.contains_point({"x": 2, "y": 2})

    def test_join_with_empty(self):
        assert box(0, 1, 0, 1).join(Polyhedron.empty(["x", "y"])).equals(box(0, 1, 0, 1))

    def test_widen_keeps_stable_constraints(self):
        widened = box(0, 1, 0, 1).widen(box(0, 2, 0, 1))
        assert widened.entails_constraint(x >= 0)
        assert widened.entails_constraint(y <= 1)
        assert not widened.entails_constraint(x <= 10)

    def test_widening_splits_equalities(self):
        line = Polyhedron(["x", "y"], [y.eq(0), x >= 0])
        widened = line.widen(Polyhedron(["x", "y"], [y >= 0, y <= 1, x >= 0]))
        assert widened.entails_constraint(y >= 0)

    def test_project(self):
        projected = box(0, 2, 5, 7).project(["x"])
        assert projected.entails_constraint(x <= 2)
        assert projected.variables == ("x",)

    def test_assign(self):
        result = box(0, 2, 0, 2).assign("x", x + 10)
        low, high = result.bounds(x)
        assert (low, high) == (10, 12)

    def test_assign_swap_independent(self):
        result = box(0, 1, 5, 6).assign("x", y)
        low, high = result.bounds(x)
        assert (low, high) == (5, 6)

    def test_havoc(self):
        result = box(0, 2, 0, 2).havoc("x")
        assert result.bounds(x) == (None, None)
        assert result.bounds(y) == (0, 2)

    def test_rename(self):
        renamed = box(0, 1, 0, 1).rename({"x": "a"})
        assert renamed.variables == ("a", "y")

    def test_minimized_removes_redundant(self):
        redundant = Polyhedron(["x"], [x <= 1, x <= 2, x <= 3])
        assert len(redundant.minimized().constraints) == 1

    def test_bounds_unbounded(self):
        assert Polyhedron(["x"], [x >= 0]).bounds(x) == (0, None)

    def test_constraint_vectors_convention(self):
        poly = Polyhedron(["x"], [x <= 7])
        ((normal, bound),) = poly.constraint_vectors()
        # a·x ≥ b with a = -1, b = -7 encodes x ≤ 7.
        assert normal.coefficient("x") == -1
        assert bound == -7


bounds_strategy = st.integers(min_value=-5, max_value=5)


class TestHypothesis:
    @given(bounds_strategy, bounds_strategy, bounds_strategy, bounds_strategy)
    @settings(max_examples=25, deadline=None)
    def test_join_upper_bounds_both(self, a, b, c, d):
        first = Polyhedron(["x"], [x >= min(a, b), x <= max(a, b)])
        second = Polyhedron(["x"], [x >= min(c, d), x <= max(c, d)])
        hull = first.join(second)
        assert hull.includes(first)
        assert hull.includes(second)

    @given(bounds_strategy, bounds_strategy)
    @settings(max_examples=25, deadline=None)
    def test_widen_upper_bounds_arguments(self, a, b):
        first = Polyhedron(["x"], [x >= 0, x <= max(a, 0)])
        second = Polyhedron(["x"], [x >= 0, x <= max(b, 0)])
        widened = first.widen(second)
        assert widened.includes(first)
        assert widened.includes(second)
