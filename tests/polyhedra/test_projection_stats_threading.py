"""Thread isolation of the FM projection statistics.

The module-level ``projection.statistics`` handle is a thread-local
proxy: concurrent projections (the ``nonterm=auto`` race runs two
provers in one process) must never interleave counter increments or
fold each other's ``lp_calls_saved`` into their results.  These tests
run identical projection workloads concurrently and assert every thread
observed exactly the counters of its *own* work — byte-identical to a
solo run of the same workload.
"""

import threading
from fractions import Fraction

from repro.api import AnalysisConfig, AnalysisRequest, analyze
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.polyhedra import projection
from repro.polyhedra.projection import fourier_motzkin, lp_calls_saved_since

NESTED = """
var i, j, n;
assume(n >= 0 and n <= 1000);
i = 0;
while (i < n) {
    j = 0;
    while (j < n) { j = j + 1; }
    i = i + 1;
}
"""


def _workload():
    """A projection with redundancy: exercises every counter."""
    names = ["a", "b", "c", "d", "e"]
    constraints = []
    for lo, hi, name in [(0, 10, n) for n in names]:
        constraints.append(
            Constraint(LinExpr({name: Fraction(-1)}, Fraction(lo)), Relation.LE)
        )
        constraints.append(
            Constraint(LinExpr({name: Fraction(1)}, Fraction(-hi)), Relation.LE)
        )
    constraints.append(
        Constraint(
            LinExpr({"a": Fraction(1), "b": Fraction(1)}, Fraction(-15)),
            Relation.LE,
        )
    )
    constraints.append(
        Constraint(
            LinExpr({"a": Fraction(1), "b": Fraction(1)}, Fraction(-40)),
            Relation.LE,  # dominated: counts one saved LP call
        )
    )
    fourier_motzkin(constraints, ["a", "b", "c"])


class TestCounterIsolation:
    def test_concurrent_projections_see_only_their_own_work(self):
        repeats = 5
        barrier = threading.Barrier(2)
        observed = {}

        def run(label):
            snapshot = projection.statistics.snapshot()
            barrier.wait()
            for _ in range(repeats):
                _workload()
            after = projection.statistics.snapshot()
            observed[label] = tuple(b - a for a, b in zip(snapshot, after))

        threads = [
            threading.Thread(target=run, args=(name,))
            for name in ("first", "second")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Solo baseline on this (third) thread.
        solo_before = projection.statistics.snapshot()
        for _ in range(repeats):
            _workload()
        solo = tuple(
            b - a
            for a, b in zip(solo_before, projection.statistics.snapshot())
        )

        assert observed["first"] == solo
        assert observed["second"] == solo
        # The workload is non-trivial (the counters actually moved).
        assert any(delta > 0 for delta in solo)

    def test_other_threads_do_not_disturb_a_snapshot(self):
        snapshot = projection.statistics.snapshot()
        worker = threading.Thread(target=_workload)
        worker.start()
        worker.join()
        assert lp_calls_saved_since(snapshot) == 0
        assert projection.statistics.snapshot() == snapshot


class TestConcurrentProvers:
    def test_two_provers_fold_identical_lp_savings(self):
        """Two concurrent analyses must report the same savings as one."""
        config = AnalysisConfig()
        request = AnalysisRequest(program=NESTED, tool="termite", config=config)
        solo = analyze(request).lp_statistics.redundancy_lp_saved

        results = {}
        barrier = threading.Barrier(2)

        def run(label):
            barrier.wait()
            results[label] = analyze(
                AnalysisRequest(program=NESTED, tool="termite", config=config)
            ).lp_statistics.redundancy_lp_saved

        threads = [
            threading.Thread(target=run, args=(name,))
            for name in ("first", "second")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results["first"] == solo
        assert results["second"] == solo
