"""The pruned Fourier–Motzkin path defines the same polyhedron as the naive one.

``fourier_motzkin(..., simplify=True)`` layers syntactic dominance,
Kohler/Imbert history pruning and LP-based redundancy removal on top of
the naive elimination; all of them may only drop *redundant* rows.  The
equivalence oracle is the independent Farkas engine of
:mod:`repro.checking.farkas` (PR 3): two systems describe the same set
iff each constraint of one is refuted-when-negated under the other.
"""

import random
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.checking.farkas import Refutation, decide_system
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr, var
from repro.polyhedra import projection

NAMES = ["a", "b", "c", "d"]


def _random_system(rng: random.Random, size: int):
    constraints = []
    for _ in range(size):
        terms = {
            name: Fraction(rng.randint(-3, 3))
            for name in rng.sample(NAMES, rng.randint(1, 3))
        }
        constraints.append(
            Constraint(
                LinExpr(terms, Fraction(rng.randint(-4, 4))), Relation.LE
            )
        )
    return constraints


def _infeasible(system) -> bool:
    return isinstance(decide_system(list(system)), Refutation)


def _entailed_by(system, constraint: Constraint) -> bool:
    """``system ⊨ constraint`` via the independent Farkas engine."""
    negated = Constraint(-constraint.expr, Relation.LT)
    return isinstance(decide_system(list(system) + [negated]), Refutation)


def _equivalent(first, second) -> bool:
    first_empty, second_empty = _infeasible(first), _infeasible(second)
    if first_empty or second_empty:
        return first_empty == second_empty
    return all(_entailed_by(second, c) for c in first) and all(
        _entailed_by(first, c) for c in second
    )


class TestPrunedMatchesNaive:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_projections_agree(self, seed):
        rng = random.Random(seed)
        system = _random_system(rng, rng.randint(2, 6))
        drop = rng.sample(NAMES, rng.randint(1, 2))
        pruned = projection.fourier_motzkin(system, drop, simplify=True)
        naive = projection.fourier_motzkin(system, drop, simplify=False)
        assert _equivalent(pruned, naive)

    def test_projection_with_equalities(self):
        x, y, z = var("x"), var("y"), var("z")
        system = [x.eq(y + 1), x <= 5, z >= y, z <= 10]
        pruned = projection.fourier_motzkin(system, ["x", "z"], simplify=True)
        naive = projection.fourier_motzkin(system, ["x", "z"], simplify=False)
        assert _equivalent(pruned, naive)
        assert _entailed_by(pruned, y <= 4)

    def test_infeasible_system_stays_infeasible(self):
        x, y = var("x"), var("y")
        system = [x >= 1, x <= 0, y <= x]
        pruned = projection.fourier_motzkin(system, ["x"], simplify=True)
        assert _infeasible(pruned)


class TestPruningActuallyPrunes:
    def test_dominated_rows_counted_as_saved_lp_calls(self):
        x, y = var("x"), var("y")
        before = projection.statistics.snapshot()
        result = projection.remove_redundant(
            [x <= 1, x <= 5, x <= 9, y >= 0]
        )
        assert len(result) == 2
        # x ≤ 5 and x ≤ 9 are syntactically dominated by x ≤ 1: two LP
        # solves the previous implementation would have paid.
        assert projection.lp_calls_saved_since(before) >= 2

    def test_kohler_prunes_on_dense_eliminations(self):
        rng = random.Random(3)
        before = projection.statistics.rows_pruned_kohler
        for seed in range(40):
            rng = random.Random(seed)
            system = _random_system(rng, 8)
            projection.fourier_motzkin(system, NAMES[:3], simplify=True)
        assert projection.statistics.rows_pruned_kohler > before

    def test_duplicate_constraints_not_counted_as_saved(self):
        # Duplicates were always dropped without an LP (the seen-set
        # existed pre-kernel), so they prune rows without crediting
        # lp_calls_saved.
        x = var("x")
        before = projection.statistics.snapshot()
        pruned_before = projection.statistics.rows_pruned_syntactic
        result = projection.remove_redundant([x <= 1, 2 * x <= 2])
        assert len(result) == 1
        assert projection.lp_calls_saved_since(before) == 0
        assert projection.statistics.rows_pruned_syntactic > pruned_before


class TestStatisticsSchema:
    def test_to_dict_keys(self):
        document = projection.statistics.to_dict()
        assert {
            "variables_eliminated",
            "combinations",
            "lp_calls",
            "lp_calls_saved",
            "rows_pruned_syntactic",
            "rows_pruned_kohler",
            "rows_eliminated",
        } <= set(document)
