"""Tests for the double-description conversions."""

from fractions import Fraction


from repro.linalg.vector import Vector
from repro.linexpr.expr import var
from repro.polyhedra.dd import (
    cone_double_description,
    constraints_to_generators,
    generators_to_constraints,
)
from repro.polyhedra.generators import GeneratorSystem
from repro.polyhedra.polyhedron import Polyhedron

x, y = var("x"), var("y")


class TestConeDoubleDescription:
    def test_nonnegative_quadrant(self):
        lines, rays = cone_double_description(
            [(Vector([-1, 0]), False), (Vector([0, -1]), False)], 2
        )
        assert not lines
        assert sorted(tuple(r) for r in rays) == [(0, 1), (1, 0)]

    def test_halfplane_keeps_a_line(self):
        lines, rays = cone_double_description([(Vector([0, -1]), False)], 2)
        assert len(lines) == 1 and lines[0][1] == 0
        assert any(r[1] > 0 for r in rays)

    def test_equality_gives_line_in_plane(self):
        lines, rays = cone_double_description([(Vector([1, 1]), True)], 2)
        directions = [tuple(line) for line in lines] + [tuple(r) for r in rays]
        assert all(a + b == 0 for a, b in directions)

    def test_point_cone(self):
        lines, rays = cone_double_description(
            [
                (Vector([1, 0]), True),
                (Vector([0, 1]), True),
            ],
            2,
        )
        assert not lines and not rays


class TestPolyhedronConversions:
    def test_square_vertices(self):
        system = constraints_to_generators([x >= 0, x <= 1, y >= 0, y <= 1], ["x", "y"])
        assert sorted(tuple(v) for v in system.vertices) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]
        assert not system.rays and not system.lines

    def test_unbounded_rays(self):
        system = constraints_to_generators([x >= 0, y >= 0, x - y <= 3], ["x", "y"])
        assert sorted(tuple(r) for r in system.rays) == [(0, 1), (1, 1)]

    def test_empty_polyhedron(self):
        system = constraints_to_generators([x >= 1, x <= 0], ["x"])
        assert system.is_empty()

    def test_line_generator(self):
        system = constraints_to_generators([x >= 0], ["x", "y"])
        assert any(tuple(line)[0] == 0 for line in system.lines)

    def test_round_trip_square(self):
        original = Polyhedron(["x", "y"], [x >= 0, x <= 2, y >= 0, y <= 1])
        rebuilt = Polyhedron.from_generators(original.generators())
        assert rebuilt.equals(original)

    def test_round_trip_unbounded(self):
        original = Polyhedron(["x", "y"], [x >= 0, y >= 2])
        rebuilt = Polyhedron.from_generators(original.generators())
        assert rebuilt.equals(original)

    def test_generators_to_constraints_empty(self):
        constraints = generators_to_constraints(GeneratorSystem(("x",)))
        assert len(constraints) == 1
        assert constraints[0].is_trivially_false()

    def test_single_point(self):
        system = GeneratorSystem(("x", "y"), vertices=[Vector([2, 3])])
        poly = Polyhedron.from_generators(system)
        assert poly.contains_point({"x": 2, "y": 3})
        assert not poly.contains_point({"x": 2, "y": 4})


class TestGeneratorSystem:
    def test_merge_keeps_distinct_vertices(self):
        a = GeneratorSystem(("x",), vertices=[Vector([1])])
        b = GeneratorSystem(("x",), vertices=[Vector([2])])
        assert len(a.merge(b).vertices) == 2

    def test_merge_dedupes_parallel_rays(self):
        a = GeneratorSystem(("x",), rays=[Vector([1])])
        b = GeneratorSystem(("x",), rays=[Vector([2])])
        assert len(a.merge(b).rays) == 1

    def test_contains_point_barycentric(self):
        square = constraints_to_generators([x >= 0, x <= 1, y >= 0, y <= 1], ["x", "y"])
        assert square.contains_point([Fraction(1, 2), Fraction(1, 2)])
        assert not square.contains_point([Fraction(2), Fraction(0)])

    def test_difference_generators_tags(self):
        system = GeneratorSystem(
            ("x",), vertices=[Vector([1])], rays=[Vector([1])], lines=[Vector([1])]
        )
        tags = [tag for tag, _ in system.difference_generators()]
        assert tags.count("vertex") == 1
        assert tags.count("ray") == 3  # the ray plus both orientations of the line
