"""Tests for the interval and polyhedra abstract domains."""



from repro.invariants.intervals import IntervalDomain
from repro.invariants.polyhedra_domain import PolyhedraDomain
from repro.linexpr.expr import var

x, y = var("x"), var("y")


class TestIntervalDomain:
    def setup_method(self):
        self.domain = IntervalDomain(["x", "y"])

    def test_top_bottom(self):
        assert not self.domain.is_bottom(self.domain.top())
        assert self.domain.is_bottom(self.domain.bottom())

    def test_constrain_single_variable(self):
        value = self.domain.constrain(self.domain.top(), [x >= 0, x <= 5])
        poly = self.domain.to_polyhedron(value)
        assert poly.bounds(x) == (0, 5)

    def test_constrain_detects_emptiness(self):
        value = self.domain.constrain(self.domain.top(), [x >= 1, x <= 0])
        assert self.domain.is_bottom(value)

    def test_strict_guard_tightened_for_integers(self):
        value = self.domain.constrain(self.domain.top(), [x > 0])
        poly = self.domain.to_polyhedron(value)
        assert poly.bounds(x)[0] == 1

    def test_assign_interval_arithmetic(self):
        value = self.domain.constrain(self.domain.top(), [x >= 0, x <= 2])
        assigned = self.domain.assign(value, "y", 2 * x + 1)
        assert self.domain.to_polyhedron(assigned).bounds(y) == (1, 5)

    def test_havoc(self):
        value = self.domain.constrain(self.domain.top(), [x >= 0, x <= 2])
        assert self.domain.to_polyhedron(self.domain.havoc(value, "x")).bounds(x) == (
            None,
            None,
        )

    def test_join(self):
        a = self.domain.constrain(self.domain.top(), [x >= 0, x <= 1])
        b = self.domain.constrain(self.domain.top(), [x >= 5, x <= 6])
        joined = self.domain.join(a, b)
        assert self.domain.to_polyhedron(joined).bounds(x) == (0, 6)

    def test_widen_drops_unstable_bound(self):
        a = self.domain.constrain(self.domain.top(), [x >= 0, x <= 1])
        b = self.domain.constrain(self.domain.top(), [x >= 0, x <= 2])
        widened = self.domain.widen(a, b)
        assert self.domain.to_polyhedron(widened).bounds(x) == (0, None)

    def test_includes(self):
        small = self.domain.constrain(self.domain.top(), [x >= 0, x <= 1])
        large = self.domain.constrain(self.domain.top(), [x >= 0, x <= 9])
        assert self.domain.includes(large, small)
        assert not self.domain.includes(small, large)


class TestPolyhedraDomain:
    def setup_method(self):
        self.domain = PolyhedraDomain(["x", "y"])

    def test_relational_constrain(self):
        value = self.domain.constrain(self.domain.top(), [x <= y, y <= 3])
        assert value.entails_constraint(x <= 3)

    def test_assign_relational(self):
        value = self.domain.constrain(self.domain.top(), [x >= 0, x <= 2])
        assigned = self.domain.assign(value, "y", x + 1)
        assert assigned.entails_constraint(y.eq(x + 1))

    def test_widen_with_thresholds(self):
        domain = PolyhedraDomain(["x"], thresholds=[x <= 10])
        previous = domain.constrain(domain.top(), [x >= 0, x <= 1])
        current = domain.constrain(domain.top(), [x >= 0, x <= 2])
        widened = domain.widen(previous, current)
        assert widened.entails_constraint(x <= 10)
        assert not widened.entails_constraint(x <= 2)

    def test_widen_without_thresholds(self):
        previous = self.domain.constrain(self.domain.top(), [x >= 0, x <= 1])
        current = self.domain.constrain(self.domain.top(), [x >= 0, x <= 2])
        widened = self.domain.widen(previous, current)
        assert widened.entails_constraint(x >= 0)
        assert not widened.entails_constraint(x <= 2)

    def test_strict_guard_on_integers(self):
        value = self.domain.constrain(self.domain.top(), [x > 3])
        assert value.entails_constraint(x >= 4)
