"""Tests for the abstract-interpretation engine."""


from repro.invariants.analyzer import compute_invariants
from repro.invariants.intervals import IntervalDomain
from repro.invariants.invariant_map import InvariantMap
from repro.linexpr.expr import var
from repro.program.builder import AutomatonBuilder

x, y, i, j, n = var("x"), var("y"), var("i"), var("j"), var("n")


def counter_loop():
    builder = AutomatonBuilder(["i", "n"], initial="start", initial_condition=[n <= 100])
    builder.transition("start", "head", updates={"i": 0})
    builder.transition("head", "head", guard=[i < n], updates={"i": i + 1})
    return builder.build()


class TestPolyhedralInvariants:
    def test_counter_bounds(self):
        invariants = compute_invariants(counter_loop())
        head = invariants.get("head")
        assert head.entails_constraint(i >= 0)
        assert head.entails_constraint(i <= 100)

    def test_initial_condition_used(self):
        builder = AutomatonBuilder(["x"], initial="a", initial_condition=[x.eq(3)])
        builder.transition("a", "b", updates={"x": x + 1})
        invariants = compute_invariants(builder.build())
        assert invariants.get("b").entails_constraint(x.eq(4))

    def test_unreachable_location_is_empty(self):
        builder = AutomatonBuilder(["x"], initial="a")
        builder.transition("a", "b", guard=[x >= 0, x <= -1])
        invariants = compute_invariants(builder.build())
        assert invariants.get("b").is_empty()

    def test_paper_example1_invariant_supports_ranking(self):
        builder = AutomatonBuilder(
            ["x", "y"], initial="start", initial_condition=[x.eq(5), y.eq(10)]
        )
        builder.transition("start", "k0")
        builder.transition(
            "k0", "k0", guard=[x <= 10, y >= 0], updates={"x": x + 1, "y": y - 1}
        )
        builder.transition(
            "k0", "k0", guard=[x >= 0, y >= 0], updates={"x": x - 1, "y": y - 1}
        )
        invariant = compute_invariants(builder.build()).get("k0")
        assert invariant.entails_constraint(y >= -1)

    def test_nested_loop_invariants(self):
        builder = AutomatonBuilder(["i", "j"], initial="start")
        builder.transition("start", "1", updates={"i": 0})
        builder.transition("1", "2", guard=[i < 5], updates={"j": 0})
        builder.transition("2", "2", guard=[i >= 3, j <= 9], updates={"j": j + 1})
        builder.transition("2", "1", guard=[i <= 2], updates={"i": i + 1})
        builder.transition("2", "1", guard=[j > 9], updates={"i": i + 1})
        invariants = compute_invariants(builder.build())
        assert invariants.get("1").entails_constraint(i >= 0)
        assert invariants.get("1").entails_constraint(i <= 5)
        assert invariants.get("2").entails_constraint(i <= 4)
        assert invariants.get("2").entails_constraint(j <= 10)

    def test_interval_domain_option(self):
        cfa = counter_loop()
        invariants = compute_invariants(
            cfa, domain=IntervalDomain(cfa.variables, cfa.integer_variables)
        )
        assert invariants.get("head").entails_constraint(i >= 0)


class TestInvariantMap:
    def test_universal(self):
        invariants = InvariantMap.universal(["x"], ["a", "b"])
        assert invariants.get("a").is_universe()
        assert "b" in invariants

    def test_from_constraints(self):
        invariants = InvariantMap.from_constraints(["x"], {"a": [x >= 0]})
        assert invariants.get("a").entails_constraint(x >= 0)
        assert invariants.get("missing").is_universe()

    def test_formula(self):
        invariants = InvariantMap.from_constraints(["x"], {"a": [x >= 0, x <= 2]})
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        solver.assert_formula(invariants.formula("a"))
        solver.assert_formula(x >= 3)
        assert solver.check().is_unsat
