"""Malformed inputs must raise typed front-end errors, never crash.

Every rejection path of the lexer/parser/lowering raises a subclass of
:class:`repro.frontend.FrontendError`, so drivers can catch one type.
"""

import random

import pytest

from repro.frontend import (
    FrontendError,
    LexError,
    ParseError,
    compile_program,
    parse_program,
)

MALFORMED = {
    "unbalanced-open": "var x; while (x > 0) { x = x - 1;",
    "unbalanced-close": "var x; x = 1; }",
    "nested-unbalanced": "var x; if (x > 0) { { x = 1; }",
    "missing-paren": "var x; while x > 0) { x = x - 1; }",
    "missing-semicolon": "var x; x = x + 1",
    "bad-token-at": "var x; x = x @ 1;",
    "bad-token-dollar": "var $x; x = 1;",
    "bad-token-quote": 'var x; x = "1";',
    "empty-assignment": "var x; x = ;",
    "dangling-operator": "var x; x = x + ;",
    "undeclared-variable": "var x; y = 1;",
    "undeclared-in-guard": "var x; while (y > 0) { x = 1; }",
    "declaration-after-statement": "x = 1; var x;",
    "empty-loop-body": "var x; while (x > 0) { }",
    "empty-loop-body-newline": "var x;\nwhile (x > 0) {\n}\n",
    "keyword-as-variable": "var while; x = 1;",
    "trailing-garbage": "var x; x = 1; ; ;",
    "nondet-with-arguments": "var x; x = nondet(x);",
    "lone-else": "var x; else { x = 1; }",
    "comparison-as-statement": "var x; x > 1;",
    "nonlinear-product": "var x, y; x = x * y;",
}


@pytest.mark.parametrize("source", MALFORMED.values(), ids=MALFORMED.keys())
def test_malformed_input_raises_typed_error(source):
    with pytest.raises(FrontendError):
        compile_program(source, "malformed")


def test_empty_loop_body_names_the_line():
    with pytest.raises(ParseError, match="empty loop body at line 2"):
        parse_program("var x;\nwhile (x > 0) { }\n")


def test_skip_makes_an_intentional_spin_legal():
    compile_program("var x; while (x > 0) { skip; }")


def test_lex_error_is_a_frontend_error():
    assert issubclass(LexError, FrontendError)
    assert issubclass(ParseError, FrontendError)
    with pytest.raises(LexError):
        parse_program("var x; x = `1`;")


def test_error_messages_carry_position():
    with pytest.raises(ParseError, match="line 3"):
        parse_program("var x;\nx = 1;\nx = ;\n")


def test_garbage_soup_never_crashes_lowering():
    """Random token soup either compiles or raises a FrontendError."""
    pieces = [
        "var", "x", "y", ";", "{", "}", "(", ")", "while", "if", "else",
        "=", "+", "-", "*", "<", ">", "<=", "==", "!=", "&&", "||", "0",
        "1", "7", "assume", "skip", "nondet", ",", "true", "false",
    ]
    rng = random.Random(20260729)
    compiled = errors = 0
    for _ in range(300):
        source = " ".join(rng.choices(pieces, k=rng.randint(1, 25)))
        try:
            compile_program(source, "soup")
            compiled += 1
        except FrontendError:
            errors += 1
        # anything else (IndexError, RecursionError, ...) fails the test
    assert compiled + errors == 300
    assert errors > 0
