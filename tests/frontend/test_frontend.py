"""Tests for the lexer, parser and lowering of the mini-language."""

import pytest

from repro.frontend.ast import Assign, Assume, Havoc, IfThenElse, NondetCondition, While
from repro.frontend.lexer import LexError, TokenKind, tokenize
from repro.frontend.lowering import compile_program
from repro.frontend.parser import ParseError, parse_program
from repro.linexpr.formula import FALSE, TRUE
from repro.program.cutset import compute_cutset


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("while (x <= 10) { x = x + 1; }")
        kinds = [token.kind for token in tokens]
        assert kinds[0] is TokenKind.KEYWORD
        assert kinds[-1] is TokenKind.END

    def test_comments_skipped(self):
        tokens = tokenize("x = 1; // comment\n# another\ny = 2;")
        texts = [token.text for token in tokens if token.kind is TokenKind.IDENT]
        assert texts == ["x", "y"]

    def test_line_numbers(self):
        tokens = tokenize("x\ny")
        assert tokens[1].line == 2

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x = $;")


class TestParser:
    def test_declarations_and_assignment(self):
        program = parse_program("var x, y; x = y + 1;")
        assert program.variables == ["x", "y"]
        assert isinstance(program.statements()[0], Assign)

    def test_undeclared_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_program("var x; y = 1;")

    def test_while_and_if(self):
        program = parse_program(
            "var x; while (x > 0) { if (x > 5) { x = x - 2; } else { x = x - 1; } }"
        )
        loop = program.statements()[0]
        assert isinstance(loop, While)
        assert isinstance(loop.body.statements[0], IfThenElse)

    def test_assume(self):
        program = parse_program("var x; assume(x >= 0);")
        assert isinstance(program.statements()[0], Assume)

    def test_havoc(self):
        program = parse_program("var x; x = nondet();")
        assert isinstance(program.statements()[0], Havoc)

    def test_nondet_condition_brackets(self):
        program = parse_program("var x; while (x > 0 and nondet()) { x = x - 1; }")
        condition = program.statements()[0].condition
        assert isinstance(condition, NondetCondition)
        assert condition.lower is FALSE
        assert condition.upper is not TRUE

    def test_disequality(self):
        program = parse_program("var x; while (x != 0) { x = x - 1; }")
        assert isinstance(program.statements()[0], While)

    def test_coefficient_syntax(self):
        program = parse_program("var x, y; x = 3 * y - 2;")
        assignment = program.statements()[0]
        assert assignment.expression.coefficient("y") == 3

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("var x; x = 1")

    def test_boolean_constants(self):
        program = parse_program("var x; while (false) { skip; } if (true) { skip; }")
        assert isinstance(program.statements()[0], While)


class TestLowering:
    def test_loop_header_is_cutpoint(self):
        cfa = compile_program("var x; while (x > 0) { x = x - 1; }")
        cutset = compute_cutset(cfa)
        assert len(cutset) == 1
        assert cutset[0].startswith("loop_head")

    def test_no_loop_no_cycle(self):
        cfa = compile_program("var x; x = 1; if (x > 0) { x = 2; }")
        assert not cfa.has_cycle()

    def test_nested_loops_two_cutpoints(self):
        cfa = compile_program(
            "var i, j; while (i > 0) { j = i; while (j > 0) { j = j - 1; } i = i - 1; }"
        )
        assert len(compute_cutset(cfa)) == 2

    def test_nondet_branch_two_edges(self):
        cfa = compile_program("var x; if (nondet()) { x = 1; } else { x = 2; }")
        branch_sources = [t for t in cfa.transitions if len(cfa.outgoing(t.source)) == 2]
        assert branch_sources

    def test_integer_variables_default(self):
        cfa = compile_program("var x; x = 1;")
        assert cfa.integer_variables == {"x"}
