"""Packed int64 rows — the machine-integer fast path of the exact kernel.

:class:`~repro.linalg.sparse.SparseRow` performs every fused row
operation (multiply-add merges, eliminations, dot products) entry by
entry in Python, on arbitrary-precision integers.  That is exact and
allocation-light, but for *wide* rows the per-entry interpreter overhead
dominates: one simplex pivot over a 100-column tableau spends almost all
of its time in the merge loop.

:class:`PackedRow` stores the same mathematical object — an immutable
GCD-normalised row of exact rationals ``numerator(i) / denominator`` —
as a **fixed-width dense numpy int64 numerator array** over a bounded
index universe (slot ``k`` holds index ``k - 1``, so the ``-1`` sentinel
the simplex tableau and the projection layer use for the fused rhs /
affine constant lives in slot 0).  The denominator stays a Python
``int`` and may exceed 64 bits; only numerators are machine integers.
A fused operation then becomes three vectorised passes
(``sa * a + sb * b``, ``np.gcd.reduce``, ``abs().max()``) instead of a
Python loop.

**Overflow contract.**  int64 arithmetic in numpy wraps silently, so
every fused op is guarded by an *a-priori* bound computed on Python
integers from each row's cached maximum absolute numerator::

    |sa| * max_abs(a) + |sb| * max_abs(b) <= 2**63 - 1

When the bound fails — or an operand is not packed — the operation is
re-executed on the exact :class:`SparseRow` path and returns a
``SparseRow``; the result is exact either way and a packed row never
stores a wrapped value.  Overflow-driven fallbacks are counted in
:func:`overflow_fallbacks` so tests and benchmarks can assert the guard
engages.  ``np.int64`` scalars never leak out of this module: every
accessor converts to Python ``int``.

numpy is optional (the ``repro[fast]`` extra).  When it is absent — or
the ``REPRO_NO_NUMPY`` environment variable is set, which is how the
no-numpy CI lane runs on machines that do have numpy — packing is
unavailable, ``kernel="auto"`` resolves to the exact path and
``kernel="packed"`` raises.
"""

from __future__ import annotations

import os
import threading
from fractions import Fraction
from math import gcd
from typing import Dict, Iterator, List, Optional, Tuple

from repro.linalg.rational import Rat, as_fraction
from repro.linalg.sparse import SparseRow

try:  # pragma: no cover - exercised by the no-numpy CI lane
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled by REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Valid values of the ``kernel`` knob everywhere it appears
#: (:class:`repro.api.config.AnalysisConfig`, ``solve_lp``, ``RankingLp``,
#: ``fourier_motzkin``, the CLI).
KERNELS = ("auto", "packed", "exact")

#: Width (index-universe size, sentinel slot included) below which
#: ``kernel="auto"`` keeps the exact path.  Tuned against the
#: ``kernel_crossover`` sweep in BENCH_kernel.json: the stacked tableau
#: (:mod:`repro.linalg.stacked`) reaches wall-clock parity with the
#: exact rows at ~55 standard-form columns and wins from there up
#: (1.3x at ~69, 1.7x at ~86, >2.5x for the really wide systems).
#: Against the WTC corpus' resolve-width histogram this sends the
#: ranking-LP tableaus (~60-75 columns) to the stacked kernel while the
#: many narrow projection-redundancy LPs (3-12 columns) keep the exact
#: rows, which beat numpy-call overhead at those sizes.
PACKED_MIN_WIDTH = 56

_INT64_MAX = 2**63 - 1
_ZERO = Fraction(0)


class _KernelCounters(threading.local):
    """Per-thread kernel observability counters.

    Thread-local for the same reason projection statistics are: two
    provers racing in one process (``nonterm=auto``) must not interleave
    increments or fold each other's fallbacks into their results.
    """

    def __init__(self) -> None:
        self.overflow_fallbacks = 0
        self.stacked_pivots = 0
        self.row_pivots = 0
        self.resolved_packed = 0
        self.resolved_exact = 0


_counters = _KernelCounters()

#: Counter names exposed by :func:`kernel_counters`, in snapshot order.
COUNTER_FIELDS = (
    "overflow_fallbacks",
    "stacked_pivots",
    "row_pivots",
    "resolved_packed",
    "resolved_exact",
)


def numpy_available() -> bool:
    """Whether the packed kernel can be used in this process."""
    return _np is not None


def overflow_fallbacks() -> int:
    """This thread's count of fused ops re-run exactly due to the int64 bound."""
    return _counters.overflow_fallbacks


def reset_overflow_fallbacks() -> None:
    _counters.overflow_fallbacks = 0


def _count_fallback() -> None:
    _counters.overflow_fallbacks += 1


def count_stacked_pivot() -> None:
    """One pivot executed as a fused stacked-matrix sweep."""
    _counters.stacked_pivots += 1


def count_row_pivot() -> None:
    """One pivot executed on the per-row exact path."""
    _counters.row_pivots += 1


def kernel_counters() -> Dict[str, int]:
    """This thread's kernel counters as a plain dict."""
    return {name: getattr(_counters, name) for name in COUNTER_FIELDS}


def kernel_counters_snapshot() -> Tuple[int, ...]:
    """An opaque snapshot for :func:`kernel_counters_since`."""
    return tuple(getattr(_counters, name) for name in COUNTER_FIELDS)


def kernel_counters_since(snapshot: Tuple[int, ...]) -> Dict[str, int]:
    """Per-counter deltas since *snapshot*, taken on the same thread."""
    return {
        name: getattr(_counters, name) - before
        for name, before in zip(COUNTER_FIELDS, snapshot)
    }


def reset_kernel_counters() -> None:
    for name in COUNTER_FIELDS:
        setattr(_counters, name, 0)


def resolve_kernel(kernel: str, width: int) -> str:
    """Resolve a ``kernel`` knob value to ``"packed"`` or ``"exact"``.

    *width* is the size of the row index universe (sentinel included)
    the caller is about to build.  ``"auto"`` picks packed only when
    numpy is importable **and** the rows are wide enough to win;
    ``"packed"`` insists (and raises when numpy is unavailable).  Every
    resolution is counted (``resolved_packed`` / ``resolved_exact``) so
    ``LpStatistics`` can report which kernel actually ran.
    """
    if kernel not in KERNELS:
        raise ValueError(
            "unknown kernel %r (available: %s)" % (kernel, ", ".join(KERNELS))
        )
    if kernel == "exact":
        _counters.resolved_exact += 1
        return "exact"
    if kernel == "packed":
        if _np is None:
            raise RuntimeError(
                "kernel='packed' requires numpy (install the repro[fast] "
                "extra); use kernel='auto' or 'exact' without it"
            )
        _counters.resolved_packed += 1
        return "packed"
    if _np is not None and width >= PACKED_MIN_WIDTH:
        _counters.resolved_packed += 1
        return "packed"
    _counters.resolved_exact += 1
    return "exact"


class PackedRow:
    """A :class:`SparseRow`-compatible row over a dense int64 array.

    Immutable and always GCD-normalised, exactly like ``SparseRow``:
    ``gcd(*numerators, denominator) == 1``, ``denominator > 0``, equal
    rows compare and hash equal (including against a ``SparseRow`` with
    the same value).  The supported index universe is ``[-1, width - 2]``
    for the construction-time *width*; operations between rows of
    different widths pad to the larger one.
    """

    __slots__ = ("_dense", "denominator", "_max_abs", "_sparse")

    def __init__(self, dense, denominator: int):
        """Wrap an int64 array (normalised here; prefer the classmethods)."""
        if denominator == 0:
            raise ZeroDivisionError("PackedRow denominator is zero")
        if denominator < 0:
            denominator = -denominator
            dense = -dense
        if dense.size:
            magnitudes = _np.abs(dense)
            max_magnitude = int(magnitudes.max())
        else:
            max_magnitude = 0
        if max_magnitude == 0:
            dense = _np.zeros(dense.shape[0], dtype=_np.int64)
            denominator = 1
        elif max_magnitude > 1:
            # max_abs == 1 forces the numerator gcd to 1, so the reduce
            # pass (and the division) can be skipped entirely.
            divisor = gcd(int(_np.gcd.reduce(magnitudes)), denominator)
            if divisor > 1:
                dense = dense // divisor
                denominator //= divisor
                max_magnitude //= divisor
        self._dense = dense
        self.denominator = denominator
        self._max_abs = max_magnitude
        self._sparse: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, width: int) -> "PackedRow":
        return cls(_np.zeros(width, dtype=_np.int64), 1)

    @classmethod
    def from_sparse(cls, row: SparseRow, width: int) -> Optional["PackedRow"]:
        """Pack *row*, or ``None`` when it does not fit.

        A row fits when every index lies in ``[-1, width - 2]`` and every
        numerator's magnitude is at most ``2**63 - 1`` (the denominator
        may be arbitrarily large — it is kept as a Python int).
        """
        dense = _np.zeros(width, dtype=_np.int64)
        for index, numerator in zip(row.indices, row.numerators):
            if index < -1 or index >= width - 1:
                return None
            if not -_INT64_MAX <= numerator <= _INT64_MAX:
                return None
            dense[index + 1] = numerator
        return cls(dense, row.denominator)

    def to_sparse(self) -> SparseRow:
        """The same value as an exact :class:`SparseRow`."""
        indices, numerators = self._view()
        return SparseRow._make(list(indices), list(numerators), self.denominator)

    def _raw_sparse(self) -> SparseRow:
        """An exact view keeping the numerators *verbatim* (no gcd).

        ``_merge`` callers pick ``sa``/``sb``/``den`` against the raw
        numerator arrays of both operands, so the overflow fallback must
        hand :meth:`SparseRow._merge` the numerators unchanged —
        :meth:`to_sparse` renormalises by the row gcd, which under the
        stacked tableau's deferred renormalisation can be large, and a
        rescaled operand silently breaks the caller's convention.
        """
        indices, numerators = self._view()
        row = object.__new__(SparseRow)
        row.indices = indices
        row.numerators = numerators
        row.denominator = self.denominator
        return row

    # -- the sparse view (Python ints, shared with SparseRow interop) ------

    def _view(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        view = self._sparse
        if view is None:
            positions = _np.nonzero(self._dense)[0]
            indices = tuple(position - 1 for position in positions.tolist())
            numerators = tuple(self._dense[positions].tolist())
            view = (indices, numerators)
            self._sparse = view
        return view

    @property
    def indices(self) -> Tuple[int, ...]:
        return self._view()[0]

    @property
    def numerators(self) -> Tuple[int, ...]:
        return self._view()[1]

    @property
    def width(self) -> int:
        return self._dense.shape[0]

    def widened(self, width: int) -> "PackedRow":
        """The same row over a larger index universe."""
        if width <= self.width:
            return self
        dense = _np.zeros(width, dtype=_np.int64)
        dense[: self.width] = self._dense
        row = object.__new__(PackedRow)
        row._dense = dense
        row.denominator = self.denominator
        row._max_abs = self._max_abs
        row._sparse = self._sparse
        return row

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return int(_np.count_nonzero(self._dense))

    def is_zero(self) -> bool:
        return self._max_abs == 0

    def support(self) -> Tuple[int, ...]:
        return self._view()[0]

    def numerator_at(self, index: int) -> int:
        position = index + 1
        if 0 <= position < self._dense.shape[0]:
            return int(self._dense[position])
        return 0

    def get(self, index: int) -> Fraction:
        numerator = self.numerator_at(index)
        if not numerator:
            return _ZERO
        return Fraction(numerator, self.denominator)

    def items(self) -> Iterator[Tuple[int, Fraction]]:
        den = self.denominator
        indices, numerators = self._view()
        for index, numerator in zip(indices, numerators):
            yield index, Fraction(numerator, den)

    def iter_scaled(self) -> Iterator[Tuple[int, int]]:
        indices, numerators = self._view()
        return zip(indices, numerators)

    def to_dense(self, size: int, offset: int = 0) -> List[Fraction]:
        values = [_ZERO] * size
        den = self.denominator
        for index, numerator in self.iter_scaled():
            position = index - offset
            if 0 <= position < size:
                values[position] = Fraction(numerator, den)
        return values

    def to_dict(self):
        return dict(self.items())

    # -- fused row operations ----------------------------------------------

    def dot_numerator(self, other) -> int:
        if not isinstance(other, PackedRow):
            return self.to_sparse().dot_numerator(other)
        a, b = self._dense, other._dense
        if a.shape[0] != b.shape[0]:
            shared = min(a.shape[0], b.shape[0])
            a, b = a[:shared], b[:shared]
        # Each elementwise product is bounded by max_abs(a) * max_abs(b);
        # at most min(nnz) of them are nonzero.
        terms = min(len(self), len(other))
        if terms * self._max_abs * other._max_abs > _INT64_MAX:
            _count_fallback()
            return self.to_sparse().dot_numerator(other.to_sparse())
        return int(a @ b)

    def dot(self, other) -> Fraction:
        return Fraction(
            self.dot_numerator(other), self.denominator * other.denominator
        )

    def combine(self, ca: Rat, other, cb: Rat):
        ca = ca if type(ca) is Fraction else as_fraction(ca)
        cb = cb if type(cb) is Fraction else as_fraction(cb)
        den = self.denominator * ca.denominator
        den_b = other.denominator * cb.denominator
        sa = ca.numerator * den_b
        sb = cb.numerator * den
        return self._merge(other, sa, sb, den * den_b)

    def combine_int(self, ca: int, other, cb: int):
        return self._merge(
            other,
            ca * other.denominator,
            cb * self.denominator,
            self.denominator * other.denominator,
        )

    def _merge(self, other, sa: int, sb: int, den: int):
        """``(sa * self + sb * other) / den``, packed when it fits int64."""
        if not isinstance(other, PackedRow):
            # Mixed operands (the partner already fell back): stay exact.
            return self._raw_sparse()._merge(other, sa, sb, den)
        max_a = self._max_abs if sa else 0
        max_b = other._max_abs if sb else 0
        if abs(sa) * max_a + abs(sb) * max_b > _INT64_MAX:
            _count_fallback()
            return self._raw_sparse()._merge(other._raw_sparse(), sa, sb, den)
        a, b = self._dense, other._dense
        if a.shape[0] != b.shape[0]:
            width = max(a.shape[0], b.shape[0])
            a = self.widened(width)._dense
            b = other.widened(width)._dense
        if max_a == 0:
            out = b * sb
        elif max_b == 0:
            out = a * sa
        else:
            out = a * sa
            out += b * sb  # accumulate in place: one temporary fewer
        return PackedRow(out, den)

    def eliminate(self, index: int, pivot):
        s_c = self.numerator_at(index)
        if not s_c:
            return self
        p_c = pivot.numerator_at(index)
        if not p_c:
            raise ZeroDivisionError("pivot row has a zero at index %d" % index)
        return self._merge(pivot, p_c, -s_c, self.denominator * p_c)

    def pivot_normalized(self, index: int) -> "PackedRow":
        p_c = self.numerator_at(index)
        if not p_c:
            raise ZeroDivisionError("cannot normalise on a zero entry")
        return PackedRow(self._dense, p_c)

    def scaled(self, factor: Rat):
        factor = factor if type(factor) is Fraction else as_fraction(factor)
        if not factor:
            return PackedRow.zero(self.width)
        if abs(factor.numerator) * self._max_abs > _INT64_MAX:
            _count_fallback()
            return self.to_sparse().scaled(factor)
        return PackedRow(
            factor.numerator * self._dense,
            self.denominator * factor.denominator,
        )

    def __neg__(self) -> "PackedRow":
        row = object.__new__(PackedRow)
        row._dense = -self._dense
        row.denominator = self.denominator
        row._max_abs = self._max_abs
        row._sparse = None
        return row

    def __add__(self, other):
        return self.combine_int(1, other, 1)

    def __sub__(self, other):
        return self.combine_int(1, other, -1)

    def normalized_direction(self) -> "PackedRow":
        if self._max_abs == 0:
            return self
        divisor = int(_np.gcd.reduce(_np.abs(self._dense)))
        if divisor == 1 and self.denominator == 1:
            return self
        return PackedRow(self._dense // divisor, 1)

    # -- equality / hashing / printing -------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (PackedRow, SparseRow)):
            return (
                self.denominator == other.denominator
                and self.indices == other.indices
                and self.numerators == other.numerators
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.indices, self.numerators, self.denominator))

    def __repr__(self) -> str:
        body = ", ".join(
            "%d: %s" % (index, value) for index, value in self.items()
        )
        return "PackedRow({%s})" % body


def pack_row(row, width: int):
    """Pack a :class:`SparseRow` into *width* slots, or return it unchanged.

    The transparent entry point the tableau and the projection layer use:
    rows that fit become :class:`PackedRow`, rows that do not (an index
    outside the universe, a numerator beyond int64) stay exact.
    """
    if isinstance(row, PackedRow):
        return row if row.width >= width else row.widened(width)
    packed = PackedRow.from_sparse(row, width)
    return row if packed is None else packed
