"""Exact rational linear algebra.

Everything in this package works over :class:`fractions.Fraction` so that
the whole toolchain (LP, SMT, polyhedra, ranking-function synthesis) is
exact: a ranking function reported by the library is a genuine certificate,
not a floating-point approximation.
"""

from repro.linalg.rational import (
    Rat,
    as_fraction,
    fraction_gcd,
    fraction_lcm,
    integer_normalize,
)
from repro.linalg.sparse import SparseRow
from repro.linalg.vector import Vector
from repro.linalg.matrix import (
    Matrix,
    complete_basis,
    in_span,
    linearly_independent,
    orthogonal_complement,
)

__all__ = [
    "Rat",
    "as_fraction",
    "fraction_gcd",
    "fraction_lcm",
    "integer_normalize",
    "SparseRow",
    "Vector",
    "Matrix",
    "complete_basis",
    "in_span",
    "linearly_independent",
    "orthogonal_complement",
]
