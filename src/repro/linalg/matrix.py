"""Dense exact rational matrices and the decompositions the library needs.

Only a small slice of linear algebra is required by the ranking-function
synthesiser and the polyhedra code:

* Gaussian elimination (row echelon form) over the rationals,
* rank, null space (kernel), row space,
* solving square / overdetermined linear systems,
* orthogonal complement of a family of vectors (used to turn the
  ``AvoidSpace(u, B)`` condition of the paper into linear constraints),
* completing a linearly independent family into a basis.

Matrices are immutable; operations return fresh objects.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.linalg.rational import Rat, as_fraction
from repro.linalg.vector import Vector


class Matrix:
    """An immutable matrix of exact rationals stored in row-major order."""

    __slots__ = ("_rows", "_num_rows", "_num_cols")

    def __init__(self, rows: Iterable[Iterable[Rat]]):
        converted: List[Tuple[Fraction, ...]] = []
        width: Optional[int] = None
        for row in rows:
            entries = tuple(as_fraction(entry) for entry in row)
            if width is None:
                width = len(entries)
            elif len(entries) != width:
                raise ValueError("ragged rows in matrix construction")
            converted.append(entries)
        self._rows = tuple(converted)
        self._num_rows = len(converted)
        self._num_cols = width or 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, size: int) -> "Matrix":
        """The ``size`` × ``size`` identity matrix."""
        return cls(
            [
                [Fraction(1) if i == j else Fraction(0) for j in range(size)]
                for i in range(size)
            ]
        )

    @classmethod
    def zeros(cls, num_rows: int, num_cols: int) -> "Matrix":
        """An all-zero matrix."""
        return cls([[Fraction(0)] * num_cols for _ in range(num_rows)])

    @classmethod
    def from_rows(cls, rows: Sequence[Vector]) -> "Matrix":
        """Build a matrix whose rows are the given vectors."""
        return cls([list(row) for row in rows])

    @classmethod
    def from_columns(cls, columns: Sequence[Vector]) -> "Matrix":
        """Build a matrix whose columns are the given vectors."""
        if not columns:
            return cls([])
        height = len(columns[0])
        return cls(
            [[column[i] for column in columns] for i in range(height)]
        )

    # -- basic protocol ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_cols(self) -> int:
        return self._num_cols

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._num_rows, self._num_cols)

    def row(self, index: int) -> Vector:
        return Vector(self._rows[index])

    def rows(self) -> List[Vector]:
        return [Vector(row) for row in self._rows]

    def column(self, index: int) -> Vector:
        return Vector(row[index] for row in self._rows)

    def columns(self) -> List[Vector]:
        return [self.column(j) for j in range(self._num_cols)]

    def __getitem__(self, key: Tuple[int, int]) -> Fraction:
        i, j = key
        return self._rows[i][j]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def __repr__(self) -> str:
        body = "; ".join(
            "[" + ", ".join(str(entry) for entry in row) + "]"
            for row in self._rows
        )
        return "Matrix(%s)" % body

    # -- arithmetic ---------------------------------------------------------

    def transpose(self) -> "Matrix":
        return Matrix(
            [
                [self._rows[i][j] for i in range(self._num_rows)]
                for j in range(self._num_cols)
            ]
        )

    def __add__(self, other: "Matrix") -> "Matrix":
        self._check_same_shape(other)
        return Matrix(
            [
                [a + b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._rows, other._rows)
            ]
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        self._check_same_shape(other)
        return Matrix(
            [
                [a - b for a, b in zip(row_a, row_b)]
                for row_a, row_b in zip(self._rows, other._rows)
            ]
        )

    def __mul__(self, scalar: Rat) -> "Matrix":
        factor = as_fraction(scalar)
        return Matrix(
            [[entry * factor for entry in row] for row in self._rows]
        )

    __rmul__ = __mul__

    def matmul(self, other: "Matrix") -> "Matrix":
        """Matrix product ``self @ other``."""
        if self._num_cols != other._num_rows:
            raise ValueError("inner dimensions do not match")
        other_cols = other.columns()
        return Matrix(
            [
                [Vector(row).dot(col) for col in other_cols]
                for row in self._rows
            ]
        )

    def __matmul__(self, other: "Matrix") -> "Matrix":
        return self.matmul(other)

    def apply(self, vector: Vector) -> Vector:
        """Matrix-vector product ``self · vector``."""
        if len(vector) != self._num_cols:
            raise ValueError("dimension mismatch in matrix-vector product")
        return Vector(Vector(row).dot(vector) for row in self._rows)

    # -- eliminations and subspaces -----------------------------------------

    def row_echelon(self) -> Tuple["Matrix", List[int]]:
        """Reduced row echelon form and the list of pivot columns."""
        rows = [list(row) for row in self._rows]
        pivots: List[int] = []
        pivot_row = 0
        for col in range(self._num_cols):
            if pivot_row >= len(rows):
                break
            # Find a non-zero pivot in this column.
            chosen = None
            for candidate in range(pivot_row, len(rows)):
                if rows[candidate][col] != 0:
                    chosen = candidate
                    break
            if chosen is None:
                continue
            rows[pivot_row], rows[chosen] = rows[chosen], rows[pivot_row]
            pivot_value = rows[pivot_row][col]
            rows[pivot_row] = [entry / pivot_value for entry in rows[pivot_row]]
            for other in range(len(rows)):
                if other != pivot_row and rows[other][col] != 0:
                    factor = rows[other][col]
                    rows[other] = [
                        entry - factor * pivot_entry
                        for entry, pivot_entry in zip(
                            rows[other], rows[pivot_row]
                        )
                    ]
            pivots.append(col)
            pivot_row += 1
        return Matrix(rows), pivots

    def rank(self) -> int:
        """The rank of the matrix."""
        _, pivots = self.row_echelon()
        return len(pivots)

    def null_space(self) -> List[Vector]:
        """A basis of the kernel ``{x | self · x = 0}``."""
        echelon, pivots = self.row_echelon()
        pivot_set = set(pivots)
        free_columns = [
            col for col in range(self._num_cols) if col not in pivot_set
        ]
        basis: List[Vector] = []
        for free in free_columns:
            entries = [Fraction(0)] * self._num_cols
            entries[free] = Fraction(1)
            for row_index, pivot_col in enumerate(pivots):
                entries[pivot_col] = -echelon[row_index, free]
            basis.append(Vector(entries))
        return basis

    def row_space_basis(self) -> List[Vector]:
        """A basis of the row space (non-zero rows of the echelon form)."""
        echelon, pivots = self.row_echelon()
        return [echelon.row(i) for i in range(len(pivots))]

    def solve(self, rhs: Vector) -> Optional[Vector]:
        """One solution of ``self · x = rhs`` or ``None`` when inconsistent."""
        if len(rhs) != self._num_rows:
            raise ValueError("right-hand side has wrong dimension")
        augmented = Matrix(
            [
                list(row) + [rhs[i]]
                for i, row in enumerate(self._rows)
            ]
        )
        echelon, pivots = augmented.row_echelon()
        # Inconsistent when a pivot lands in the augmented column.
        if self._num_cols in pivots:
            return None
        solution = [Fraction(0)] * self._num_cols
        for row_index, pivot_col in enumerate(pivots):
            solution[pivot_col] = echelon[row_index, self._num_cols]
        return Vector(solution)

    def _check_same_shape(self, other: "Matrix") -> None:
        if self.shape != other.shape:
            raise ValueError(
                "shape mismatch: %s vs %s" % (self.shape, other.shape)
            )


# ---------------------------------------------------------------------------
# Subspace helpers used by the AvoidSpace machinery (paper, §4.1)
# ---------------------------------------------------------------------------


def orthogonal_complement(vectors: Sequence[Vector], dimension: int) -> List[Vector]:
    """A basis of the orthogonal complement of ``span(vectors)`` in Q^dimension.

    ``u ∈ span(vectors)`` iff ``n · u = 0`` for every returned ``n``; the
    ``AvoidSpace(u, B)`` formula of the paper is therefore the disjunction of
    the dis-equalities ``n · u ≠ 0``.
    """
    if not vectors:
        return [Vector.unit(dimension, i) for i in range(dimension)]
    matrix = Matrix.from_rows(list(vectors))
    if matrix.num_cols != dimension:
        raise ValueError("vectors do not live in the requested dimension")
    return matrix.null_space()


def in_span(vector: Vector, family: Sequence[Vector]) -> bool:
    """Whether *vector* lies in the linear span of *family*."""
    if vector.is_zero():
        return True
    if not family:
        return False
    matrix = Matrix.from_columns(list(family))
    return matrix.solve(vector) is not None


def complete_basis(family: Sequence[Vector], dimension: int) -> List[Vector]:
    """Extend a linearly independent *family* into a basis of Q^dimension."""
    basis: List[Vector] = list(family)
    for index in range(dimension):
        candidate = Vector.unit(dimension, index)
        if not in_span(candidate, basis):
            basis.append(candidate)
        if len(basis) == dimension:
            break
    return basis


def linearly_independent(vectors: Sequence[Vector]) -> bool:
    """Whether the given vectors are linearly independent."""
    if not vectors:
        return True
    matrix = Matrix.from_rows(list(vectors))
    return matrix.rank() == len(vectors)
