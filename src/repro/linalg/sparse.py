"""Sparse scaled-integer constraint rows — the shared exact-arithmetic kernel.

Every hot loop in this library (simplex pivots, Fourier–Motzkin
combinations, double-description ray arithmetic, the Farkas checker's
elimination) ultimately performs the same two operations on constraint
rows: a fused multiply-add of two rows and a dot product.  Doing them
entry-by-entry on :class:`fractions.Fraction` pays a gcd *per entry per
operation* (``Fraction.__mul__``/``__sub__`` normalise eagerly) plus one
object allocation per intermediate.

:class:`SparseRow` stores a row as parallel ``(index, numerator)`` arrays
over a single positive denominator::

    value(i) = numerator_at(i) / denominator

with all arithmetic performed on machine integers via cross
multiplication and **one** gcd pass per produced row (:meth:`_make`).
``Fraction`` objects are materialised only at API boundaries
(:meth:`get`, :meth:`dot`, :meth:`to_dense`).  Rows are immutable and
always GCD-normalised (``gcd(*numerators, denominator) == 1``,
``denominator > 0``, no stored zero entries), so structural equality is
value equality and sign tests reduce to integer sign tests.

Indices are arbitrary integers sorted increasingly; negative sentinel
indices are allowed (the simplex tableau fuses the right-hand side into
its rows at index ``-1`` so one row operation updates matrix and rhs
together).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.linalg.rational import Rat, as_fraction

_ZERO = Fraction(0)


class SparseRow:
    """An immutable GCD-normalised sparse vector of exact rationals."""

    __slots__ = ("indices", "numerators", "denominator")

    def __init__(
        self,
        indices: Sequence[int],
        numerators: Sequence[int],
        denominator: int = 1,
    ):
        """Build from already-sorted parallel arrays (validated, normalised).

        Prefer the :meth:`from_*` constructors; this entry point exists
        for callers that already hold clean integer data.
        """
        if len(indices) != len(numerators):
            raise ValueError("indices and numerators differ in length")
        if denominator == 0:
            raise ZeroDivisionError("SparseRow denominator is zero")
        if any(indices[i] >= indices[i + 1] for i in range(len(indices) - 1)):
            raise ValueError("indices must be strictly increasing")
        if denominator < 0:
            denominator = -denominator
            numerators = [-n for n in numerators]
        idx: List[int] = []
        num: List[int] = []
        for i, n in zip(indices, numerators):
            if n:
                idx.append(i)
                num.append(n)
        divisor = denominator
        for n in num:
            divisor = gcd(divisor, n)
            if divisor == 1:
                break
        if divisor > 1:
            num = [n // divisor for n in num]
            denominator //= divisor
        self.indices = tuple(idx)
        self.numerators = tuple(num)
        self.denominator = denominator

    # -- raw constructor used by the fused kernels -------------------------

    @classmethod
    def _make(
        cls, indices: List[int], numerators: List[int], denominator: int
    ) -> "SparseRow":
        """Normalise fused-kernel output without re-validating ordering."""
        row = object.__new__(cls)
        if denominator < 0:
            denominator = -denominator
            numerators = [-n for n in numerators]
        divisor = denominator
        for n in numerators:
            divisor = gcd(divisor, n)
            if divisor == 1:
                break
        if divisor > 1:
            numerators = [n // divisor for n in numerators]
            denominator //= divisor
        row.indices = tuple(indices)
        row.numerators = tuple(numerators)
        row.denominator = denominator
        return row

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "SparseRow":
        return cls((), (), 1)

    @classmethod
    def from_dense(cls, values: Iterable[Rat]) -> "SparseRow":
        """Build from a dense iterable (index = position)."""
        return cls.from_pairs(enumerate(values))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, Rat]]) -> "SparseRow":
        """Build from ``(index, value)`` pairs (any order, no duplicates)."""
        cleaned: Dict[int, Fraction] = {}
        for index, value in pairs:
            frac = value if type(value) is Fraction else as_fraction(value)
            if frac:
                cleaned[index] = frac
        if not cleaned:
            return cls.zero()
        den = 1
        for frac in cleaned.values():
            d = frac.denominator
            den = den * d // gcd(den, d)
        indices = sorted(cleaned)
        numerators = [
            cleaned[i].numerator * (den // cleaned[i].denominator)
            for i in indices
        ]
        return cls._make(indices, numerators, den)

    @classmethod
    def from_dict(cls, mapping: Mapping[int, Rat]) -> "SparseRow":
        return cls.from_pairs(mapping.items())

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored (non-zero) entries."""
        return len(self.indices)

    def is_zero(self) -> bool:
        return not self.indices

    def support(self) -> Tuple[int, ...]:
        return self.indices

    def _position(self, index: int) -> int:
        """Binary-search position of *index*, or -1 when absent."""
        lo, hi = 0, len(self.indices)
        idx = self.indices
        while lo < hi:
            mid = (lo + hi) // 2
            if idx[mid] < index:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(idx) and idx[lo] == index:
            return lo
        return -1

    def numerator_at(self, index: int) -> int:
        """Integer numerator at *index* over :attr:`denominator` (0 if absent).

        Because the denominator is positive, the *sign* of the stored
        value is the sign of this integer — the cheap test every pivot
        rule and zero-set computation needs.
        """
        pos = self._position(index)
        return self.numerators[pos] if pos >= 0 else 0

    def get(self, index: int) -> Fraction:
        """Exact value at *index* as a :class:`Fraction`."""
        pos = self._position(index)
        if pos < 0:
            return _ZERO
        return Fraction(self.numerators[pos], self.denominator)

    def items(self) -> Iterator[Tuple[int, Fraction]]:
        """Iterate ``(index, Fraction)`` pairs in index order."""
        den = self.denominator
        for index, num in zip(self.indices, self.numerators):
            yield index, Fraction(num, den)

    def iter_scaled(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(index, integer numerator)`` pairs in index order."""
        return zip(self.indices, self.numerators)

    def to_dense(self, size: int, offset: int = 0) -> List[Fraction]:
        """Dense :class:`Fraction` list of the entries in [offset, offset+size)."""
        values = [_ZERO] * size
        den = self.denominator
        for index, num in zip(self.indices, self.numerators):
            position = index - offset
            if 0 <= position < size:
                values[position] = Fraction(num, den)
        return values

    def to_dict(self) -> Dict[int, Fraction]:
        return dict(self.items())

    # -- fused row operations ----------------------------------------------

    def dot_numerator(self, other: "SparseRow") -> int:
        """Integer numerator of ``self · other`` over ``den_a * den_b``.

        The full dot product is this over a *positive* denominator, so
        sign tests and scale-invariant uses (ray combination) can stay
        in machine integers.
        """
        ai, an = self.indices, self.numerators
        bi, bn = other.indices, other.numerators
        la, lb = len(ai), len(bi)
        a = b = 0
        total = 0
        while a < la and b < lb:
            ia, ib = ai[a], bi[b]
            if ia == ib:
                total += an[a] * bn[b]
                a += 1
                b += 1
            elif ia < ib:
                a += 1
            else:
                b += 1
        return total

    def dot(self, other: "SparseRow") -> Fraction:
        """Exact inner product ``self · other``."""
        return Fraction(
            self.dot_numerator(other), self.denominator * other.denominator
        )

    def combine(self, ca: Rat, other: "SparseRow", cb: Rat) -> "SparseRow":
        """The fused multiply-add ``ca * self + cb * other``.

        Rational factors are folded into the shared denominator so the
        merge itself runs entirely on integers.
        """
        ca = ca if type(ca) is Fraction else as_fraction(ca)
        cb = cb if type(cb) is Fraction else as_fraction(cb)
        den = self.denominator * ca.denominator
        den_b = other.denominator * cb.denominator
        sa = ca.numerator * den_b
        sb = cb.numerator * den
        return self._merge(other, sa, sb, den * den_b)

    def combine_int(self, ca: int, other: "SparseRow", cb: int) -> "SparseRow":
        """``ca * self + cb * other`` with integer factors (FM combinations)."""
        return self._merge(
            other,
            ca * other.denominator,
            cb * self.denominator,
            self.denominator * other.denominator,
        )

    def _merge(
        self, other: "SparseRow", sa: int, sb: int, den: int
    ) -> "SparseRow":
        """Merge ``(sa * self.num + sb * other.num) / den`` entrywise."""
        ai, an = self.indices, self.numerators
        bi, bn = other.indices, other.numerators
        la, lb = len(ai), len(bi)
        a = b = 0
        indices: List[int] = []
        numerators: List[int] = []
        append_i = indices.append
        append_n = numerators.append
        while a < la and b < lb:
            ia, ib = ai[a], bi[b]
            if ia == ib:
                value = sa * an[a] + sb * bn[b]
                if value:
                    append_i(ia)
                    append_n(value)
                a += 1
                b += 1
            elif ia < ib:
                if sa:
                    append_i(ia)
                    append_n(sa * an[a])
                a += 1
            else:
                if sb:
                    append_i(ib)
                    append_n(sb * bn[b])
                b += 1
        if sa:
            while a < la:
                append_i(ai[a])
                append_n(sa * an[a])
                a += 1
        if sb:
            while b < lb:
                append_i(bi[b])
                append_n(sb * bn[b])
                b += 1
        return self._make(indices, numerators, den)

    def eliminate(self, index: int, pivot: "SparseRow") -> "SparseRow":
        """Zero out *index* using *pivot* (``pivot[index] != 0``).

        Computes ``self − (self[index] / pivot[index]) · pivot`` by cross
        multiplication — the fused pivot-eliminate at the heart of both
        the simplex tableau and Gaussian substitution.  Returns ``self``
        unchanged when the entry is already zero.
        """
        s_c = self.numerator_at(index)
        if not s_c:
            return self
        p_c = pivot.numerator_at(index)
        if not p_c:
            raise ZeroDivisionError("pivot row has a zero at index %d" % index)
        # (num_k * p_c − s_c * p_num_k) / (den * p_c): the pivot row's own
        # denominator cancels out of the correction term.
        return self._merge(pivot, p_c, -s_c, self.denominator * p_c)

    def pivot_normalized(self, index: int) -> "SparseRow":
        """Scale the row so the value at *index* becomes exactly 1."""
        p_c = self.numerator_at(index)
        if not p_c:
            raise ZeroDivisionError("cannot normalise on a zero entry")
        # value_k / value_index = num_k / num_index: the denominator cancels.
        return self._make(list(self.indices), list(self.numerators), p_c)

    def scaled(self, factor: Rat) -> "SparseRow":
        factor = factor if type(factor) is Fraction else as_fraction(factor)
        if not factor:
            return self.zero()
        return self._make(
            list(self.indices),
            [n * factor.numerator for n in self.numerators],
            self.denominator * factor.denominator,
        )

    def __neg__(self) -> "SparseRow":
        return self._make(
            list(self.indices),
            [-n for n in self.numerators],
            self.denominator,
        )

    def __add__(self, other: "SparseRow") -> "SparseRow":
        return self.combine_int(1, other, 1)

    def __sub__(self, other: "SparseRow") -> "SparseRow":
        return self.combine_int(1, other, -1)

    def normalized_direction(self) -> "SparseRow":
        """The primitive integer row pointing in the same direction.

        Drops the denominator (a positive scaling): the result has
        ``denominator == 1`` and coprime integer entries — the canonical
        representative rays, facet normals and normalised constraints use.
        """
        if not self.indices:
            return self
        divisor = 0
        for numerator in self.numerators:
            divisor = gcd(divisor, numerator)
            if divisor == 1:
                break
        if divisor == 1 and self.denominator == 1:
            return self
        return self._make(
            list(self.indices),
            [numerator // divisor for numerator in self.numerators],
            1,
        )

    # -- equality / hashing / printing -------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseRow):
            return NotImplemented
        return (
            self.denominator == other.denominator
            and self.indices == other.indices
            and self.numerators == other.numerators
        )

    def __hash__(self) -> int:
        return hash((self.indices, self.numerators, self.denominator))

    def __repr__(self) -> str:
        body = ", ".join(
            "%d: %s" % (index, value) for index, value in self.items()
        )
        return "SparseRow({%s})" % body
