"""Stacked int64 tableau — whole-matrix fused pivots for the packed kernel.

PR 8's :class:`~repro.linalg.packed.PackedRow` vectorised each row
operation individually, which only amortises the fixed numpy-call
overhead on *wide* rows: every pivot over an ``n``-row tableau still
paid ``n`` separate merge calls, so ``kernel="auto"`` kept the
paper-scale narrow tableaus on the per-row sparse path.

:class:`StackedTableau` stores every tableau row in **one contiguous 2D
int64 matrix** (rows x fused-rhs universe: slot ``k`` holds column
``k - 1``, so the ``-1`` rhs sentinel lives in slot 0) with a per-row
Python-int denominator vector.  A pivot then becomes a single broadcast
multiply-subtract over all affected rows::

    M[affected] = p * M[affected] - s[affected, None] * M[pivot]
    den[affected] *= p

instead of one ``_merge`` per row; column gathers for the ratio test
and the dual rhs sign sweep are plain slices.

**Deferred GCD.**  Unlike ``SparseRow``/``PackedRow``, live rows are
*not* GCD-normalised after every operation: each stored row is the
canonical row times a positive integer scale, which is harmless because
every pivot decision the simplex loops make is invariant under positive
per-row scaling — Bland's entering scan reads signs of one row, the
primal ratio test compares ``rhs_i * coef_j`` cross-products in which
the two per-row scales multiply both sides equally, and the dual ratio
test mixes exactly one cost-row and one pivot-row factor per side.
Value extraction goes through exact ``Fraction``/``SparseRow``
conversions which normalise on the way out, so statuses, optima, pivot
sequences and certificates are bit-identical to the exact kernel's.
Rows are renormalised (one masked ``np.gcd.reduce`` row pass) only when
their max-abs numerator crosses :data:`RENORM_THRESHOLD`, which
restores the canonical representation exactly.

**Overflow contract, amortised per pivot.**  Before the fused sweep,
an a-priori bound computed from the pivot value and each row's cached
max-abs numerator decides overflow per row::

    p * max_abs(row) + |s_row| * max_abs(pivot_row) <= 2**63 - 1

Rows failing the bound are renormalised and re-checked; rows still
failing drop out of the matrix to the exact :class:`SparseRow` path
(kept in a side table, counted by
:func:`repro.linalg.packed.overflow_fallbacks`) and return to the
matrix as soon as GCD normalisation shrinks them back into int64 range.
No wrapped value is ever stored.

numpy is optional exactly as in :mod:`repro.linalg.packed`: this module
imports cleanly without it (or under ``REPRO_NO_NUMPY``), and the
simplex layer only instantiates :class:`StackedTableau` after
``resolve_kernel`` returned ``"packed"``, which requires numpy.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterator, List, Optional, Tuple

# Shares the packed module's numpy gate (_np is None without numpy or
# under REPRO_NO_NUMPY) and its thread-local fallback counters, so the
# overflow contract is reported through one set of counters.
from repro.linalg.packed import (  # noqa: F401  (re-exported gate)
    _INT64_MAX,
    _count_fallback,
    _np,
    PackedRow,
)
from repro.linalg.sparse import SparseRow

_ZERO = Fraction(0)

#: Live rows whose max-abs numerator exceeds this are GCD-renormalised
#: after the pivot.  Well below ``2**63`` so that the per-row overflow
#: bound ``p * max_abs + |s| * max_abs(pivot)`` keeps headroom for the
#: next pivot: two renormalised rows multiply to at most ~2**62.
RENORM_THRESHOLD = 2**30


class StackedTableau:
    """All tableau rows in one contiguous int64 matrix.

    Storage:

    * ``_matrix`` — 2D int64, capacity-doubling on both axes;
      ``_matrix[i, k]`` is row ``i``'s numerator for column ``k - 1``
      (slot 0 is the fused rhs sentinel).
    * ``_dens`` — per-row positive Python-int denominators (may exceed
      64 bits, e.g. while GCD normalisation is deferred).
    * ``_maxabs`` — per-row cached maximum absolute numerator, the
      input to the a-priori overflow bound.
    * ``_exact`` — the side table of overflowed rows as canonical
      :class:`SparseRow` values; a row index is either live in the
      matrix or present here, never both.

    Row *values* (numerator/denominator vectors) are exact rationals at
    all times; only the *representation* of live rows may carry a
    positive integer scale until the next renormalisation.
    """

    __slots__ = ("_matrix", "_dens", "_maxabs", "_exact", "num_rows", "width")

    def __init__(self, width: int):
        if _np is None:  # pragma: no cover - guarded by resolve_kernel
            raise RuntimeError(
                "StackedTableau requires numpy (install the repro[fast] "
                "extra); use kernel='auto' or 'exact' without it"
            )
        self.width = width
        self.num_rows = 0
        self._matrix = _np.zeros((8, max(width, 4)), dtype=_np.int64)
        self._dens: List[int] = []
        self._maxabs: List[int] = []
        self._exact: Dict[int, SparseRow] = {}

    # -- growth ------------------------------------------------------------

    def _ensure_row_capacity(self, needed: int) -> None:
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        grown = _np.zeros(
            (max(needed, capacity * 2), self._matrix.shape[1]),
            dtype=_np.int64,
        )
        grown[:capacity] = self._matrix
        self._matrix = grown

    def ensure_width(self, width: int) -> None:
        """Grow the logical index universe (new columns are all-zero)."""
        if width <= self.width:
            return
        capacity = self._matrix.shape[1]
        if width > capacity:
            grown = _np.zeros(
                (self._matrix.shape[0], max(width, capacity * 2)),
                dtype=_np.int64,
            )
            grown[:, :capacity] = self._matrix
            self._matrix = grown
        self.width = width

    def append_row(self, row) -> None:
        """Append a :class:`SparseRow`/:class:`PackedRow`.

        Rows that do not fit the matrix (an index outside the universe,
        a numerator beyond int64) go straight to the exact side table.
        """
        index = self.num_rows
        self._ensure_row_capacity(index + 1)
        self.num_rows = index + 1
        self._dens.append(1)
        self._maxabs.append(0)
        if isinstance(row, PackedRow) and row.width <= self.width:
            self._matrix[index, : row.width] = row._dense
            self._dens[index] = row.denominator
            self._maxabs[index] = row._max_abs
            return
        sparse = row if isinstance(row, SparseRow) else row.to_sparse()
        if not self._try_promote(index, sparse):
            self._exact[index] = sparse

    # -- live/exact transitions --------------------------------------------

    def is_exact(self, index: int) -> bool:
        return index in self._exact

    def exact_rows(self) -> int:
        """How many rows currently sit on the exact side table."""
        return len(self._exact)

    def _try_promote(self, index: int, sparse: SparseRow) -> bool:
        """Install *sparse* as a live matrix row if it fits int64."""
        width = self.width
        max_abs = 0
        for position, numerator in zip(sparse.indices, sparse.numerators):
            if position < -1 or position >= width - 1:
                return False
            magnitude = -numerator if numerator < 0 else numerator
            if magnitude > max_abs:
                max_abs = magnitude
        if max_abs > _INT64_MAX:
            return False
        row = self._matrix[index]
        row[:width] = 0
        for position, numerator in zip(sparse.indices, sparse.numerators):
            row[position + 1] = numerator
        self._dens[index] = sparse.denominator
        self._maxabs[index] = max_abs
        self._exact.pop(index, None)
        return True

    def _demote(self, index: int, sparse: SparseRow) -> None:
        self._exact[index] = sparse
        self._matrix[index, : self.width] = 0
        self._dens[index] = 1
        self._maxabs[index] = 0

    def _store_sparse(self, index: int, sparse: SparseRow) -> None:
        """Store an exactly-computed row, back in the matrix when it fits."""
        if not self._try_promote(index, sparse):
            self._demote(index, sparse)

    def _renormalize(self, index: int) -> None:
        """Deferred GCD pass on a live row (restores the canonical form)."""
        dense = self._matrix[index, : self.width]
        divisor = int(_np.gcd.reduce(_np.abs(dense)))
        if divisor == 0:
            self._dens[index] = 1
            self._maxabs[index] = 0
            return
        divisor = gcd(divisor, self._dens[index])
        if divisor > 1:
            dense //= divisor
            self._dens[index] //= divisor
            self._maxabs[index] //= divisor

    # -- reads -------------------------------------------------------------

    def column(self, col: int) -> List[int]:
        """Numerators of column *col* across every row: one slice."""
        values = self._matrix[: self.num_rows, col + 1].tolist()
        for index, row in self._exact.items():
            values[index] = row.numerator_at(col)
        return values

    def value_at(self, index: int, col: int) -> Fraction:
        row = self._exact.get(index)
        if row is not None:
            return row.get(col)
        numerator = int(self._matrix[index, col + 1])
        if not numerator:
            return _ZERO
        return Fraction(numerator, self._dens[index])

    def row_entries(self, index: int) -> Iterator[Tuple[int, int]]:
        """The row's nonzero ``(column, numerator)`` pairs, ascending."""
        row = self._exact.get(index)
        if row is not None:
            return row.iter_scaled()
        dense = self._matrix[index, : self.width]
        positions = _np.nonzero(dense)[0]
        return zip(
            (position - 1 for position in positions.tolist()),
            dense[positions].tolist(),
        )

    def row_view(self, index: int):
        """Row *index* as a :class:`PackedRow` sharing the matrix storage.

        The view is transient (valid until the next pivot) and may be
        un-normalised; it exists so the simplex cost row can merge
        against matrix rows without a copy.  Exact rows are returned as
        their :class:`SparseRow`.
        """
        row = self._exact.get(index)
        if row is not None:
            return row
        view = object.__new__(PackedRow)
        view._dense = self._matrix[index, : self.width]
        view.denominator = self._dens[index]
        view._max_abs = self._maxabs[index]
        view._sparse = None
        return view

    def to_sparse(self, index: int) -> SparseRow:
        """Row *index* as a canonical exact :class:`SparseRow`."""
        row = self._exact.get(index)
        if row is not None:
            return row
        dense = self._matrix[index, : self.width]
        positions = _np.nonzero(dense)[0]
        return SparseRow._make(
            [position - 1 for position in positions.tolist()],
            dense[positions].tolist(),
            self._dens[index],
        )

    # -- the fused pivot ---------------------------------------------------

    def pivot(
        self,
        pivot_index: int,
        col: int,
        column: Optional[List[int]] = None,
    ) -> None:
        """Make *col* basic in row *pivot_index*: one fused sweep.

        *column* is the pre-gathered column (from :meth:`column`); rows
        must be unchanged since the gather.  The pivot row is normalised
        in place (denominator becomes its *col* numerator), then every
        other row with a nonzero *col* entry is eliminated — live rows
        through one broadcast multiply-subtract, bound-failing and
        already-exact rows through exact ``SparseRow`` merges.
        """
        if column is None:
            column = self.column(col)
        width = self.width

        pivot_sparse = self._exact.get(pivot_index)
        if pivot_sparse is not None:
            normalized = pivot_sparse.pivot_normalized(col)
            self._exact[pivot_index] = normalized
            if self._try_promote(pivot_index, normalized):
                pivot_sparse = None
            else:
                pivot_sparse = normalized
        else:
            raw = column[pivot_index]
            row = self._matrix[pivot_index, :width]
            if raw < 0:
                _np.negative(row, out=row)
                self._dens[pivot_index] = -raw
            else:
                self._dens[pivot_index] = raw
            if self._maxabs[pivot_index] > RENORM_THRESHOLD:
                self._renormalize(pivot_index)

        if pivot_sparse is not None:
            # Exact pivot row: every affected row merges exactly.
            for index in range(self.num_rows):
                if index == pivot_index or not column[index]:
                    continue
                current = self._exact.get(index)
                if current is None:
                    _count_fallback()
                    current = self.to_sparse(index)
                self._store_sparse(
                    index, current.eliminate(col, pivot_sparse)
                )
            return

        pivot_value = int(self._matrix[pivot_index, col + 1])  # > 0
        pivot_maxabs = self._maxabs[pivot_index]
        fused_rows: List[int] = []
        fused_scales: List[int] = []
        lazy_pivot: Optional[SparseRow] = None
        for index in range(self.num_rows):
            scale = column[index]
            if index == pivot_index or not scale:
                continue
            current = self._exact.get(index)
            if current is None:
                magnitude = -scale if scale < 0 else scale
                if (
                    pivot_value * self._maxabs[index]
                    + magnitude * pivot_maxabs
                    > _INT64_MAX
                ):
                    self._renormalize(index)
                    scale = int(self._matrix[index, col + 1])
                    magnitude = -scale if scale < 0 else scale
                    if (
                        pivot_value * self._maxabs[index]
                        + magnitude * pivot_maxabs
                        > _INT64_MAX
                    ):
                        _count_fallback()
                        current = self.to_sparse(index)
                if current is None:
                    fused_rows.append(index)
                    fused_scales.append(scale)
                    continue
            if lazy_pivot is None:
                lazy_pivot = self.to_sparse(pivot_index)
            self._store_sparse(index, current.eliminate(col, lazy_pivot))

        if not fused_rows:
            return
        # The fused broadcast sweep: every product and the final values
        # are bounded by the per-row check above, so nothing wraps.
        selector = _np.array(fused_rows, dtype=_np.intp)
        scales = _np.array(fused_scales, dtype=_np.int64)
        pivot_dense = self._matrix[pivot_index, :width]
        block = self._matrix[selector, :width] * pivot_value
        block -= scales[:, None] * pivot_dense[None, :]
        self._matrix[selector, :width] = block
        new_maxabs = _np.abs(block).max(axis=1).tolist()
        dens = self._dens
        maxabs = self._maxabs
        for position, index in enumerate(fused_rows):
            magnitude = new_maxabs[position]
            maxabs[index] = magnitude
            if magnitude == 0:
                dens[index] = 1
            else:
                dens[index] *= pivot_value
                if magnitude > RENORM_THRESHOLD:
                    self._renormalize(index)
