"""Helpers for exact rational arithmetic.

The public type alias :data:`Rat` is anything convertible to
:class:`fractions.Fraction` (``int``, ``Fraction`` or a numeric string).
All conversion goes through :func:`as_fraction`, so floats are rejected
explicitly rather than silently introducing rounding error.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence, Union

Rat = Union[int, Fraction, str]


def as_fraction(value: Rat) -> Fraction:
    """Convert *value* to an exact :class:`Fraction`.

    Floats are refused: they almost always indicate an accidental loss of
    exactness and would silently poison every solver downstream.

    >>> as_fraction(3)
    Fraction(3, 1)
    >>> as_fraction("2/5")
    Fraction(2, 5)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not rational coefficients")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        raise TypeError(
            "refusing to convert float %r to Fraction; "
            "pass an int, a Fraction or a string literal instead" % value
        )
    raise TypeError("cannot interpret %r as a rational number" % (value,))


def fraction_gcd(values: Iterable[Fraction]) -> Fraction:
    """Greatest common divisor of a collection of rationals.

    ``gcd(a/b, c/d) = gcd(a, c) / lcm(b, d)``; the result is the largest
    rational ``g`` such that every input is an integer multiple of ``g``.
    Returns ``0`` for an empty collection or all-zero inputs.
    """
    num_gcd = 0
    den_lcm = 1
    seen = False
    for value in values:
        # Fast path: callers overwhelmingly pass Fraction objects already
        # (this runs once per entry inside every normalisation), so skip
        # the isinstance ladder of as_fraction for them.
        frac = value if type(value) is Fraction else as_fraction(value)
        numerator = frac.numerator
        if not numerator:
            continue
        seen = True
        num_gcd = gcd(num_gcd, numerator)
        denominator = frac.denominator
        den_lcm = den_lcm * denominator // gcd(den_lcm, denominator)
    if not seen:
        return Fraction(0)
    return Fraction(num_gcd, den_lcm)


def fraction_lcm(values: Iterable[Fraction]) -> Fraction:
    """Least common multiple of the denominators-cleared values.

    Mostly used to rescale a rational vector into an integer one.
    """
    result = Fraction(1)
    seen = False
    for value in values:
        frac = value if type(value) is Fraction else as_fraction(value)
        if frac == 0:
            continue
        seen = True
        num = result.numerator * frac.numerator // gcd(
            result.numerator, frac.numerator
        )
        den = gcd(result.denominator, frac.denominator)
        result = Fraction(num, den)
    if not seen:
        return Fraction(0)
    return result


def integer_normalize(coefficients: Sequence[Rat]) -> List[Fraction]:
    """Scale *coefficients* by a positive rational to primitive integers.

    The returned list contains integers (as ``Fraction`` with denominator 1)
    whose collective gcd is 1, preserving the direction of the vector.  A
    zero vector is returned unchanged.

    >>> integer_normalize([Fraction(1, 2), Fraction(3, 2)])
    [Fraction(1, 1), Fraction(3, 1)]
    """
    fracs = [
        c if type(c) is Fraction else as_fraction(c) for c in coefficients
    ]
    divisor = fraction_gcd(fracs)
    if divisor == 0:
        return fracs
    return [frac / divisor for frac in fracs]
