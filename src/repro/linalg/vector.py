"""Dense exact rational vectors.

:class:`Vector` is an immutable fixed-length sequence of
:class:`fractions.Fraction` with the usual vector-space operations plus the
dot product and a few normalisation helpers that the polyhedra and ranking
code rely on.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence, Union

from repro.linalg.rational import Rat, as_fraction, integer_normalize


class Vector:
    """An immutable vector of exact rationals."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable[Rat]):
        self._entries = tuple(as_fraction(entry) for entry in entries)

    # -- constructors ------------------------------------------------------

    @classmethod
    def zeros(cls, size: int) -> "Vector":
        """The zero vector of dimension *size*."""
        return cls([Fraction(0)] * size)

    @classmethod
    def unit(cls, size: int, index: int, value: Rat = 1) -> "Vector":
        """The vector with *value* at *index* and zero elsewhere."""
        entries = [Fraction(0)] * size
        entries[index] = as_fraction(value)
        return cls(entries)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Fraction]:
        return iter(self._entries)

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return Vector(self._entries[index])
        return self._entries[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        return "Vector([%s])" % ", ".join(str(entry) for entry in self._entries)

    # -- vector space operations -------------------------------------------

    def __add__(self, other: "Vector") -> "Vector":
        self._check_same_size(other)
        return Vector(a + b for a, b in zip(self._entries, other._entries))

    def __sub__(self, other: "Vector") -> "Vector":
        self._check_same_size(other)
        return Vector(a - b for a, b in zip(self._entries, other._entries))

    def __neg__(self) -> "Vector":
        return Vector(-entry for entry in self._entries)

    def __mul__(self, scalar: Rat) -> "Vector":
        factor = as_fraction(scalar)
        return Vector(entry * factor for entry in self._entries)

    __rmul__ = __mul__

    def __truediv__(self, scalar: Rat) -> "Vector":
        factor = as_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of a Vector by zero")
        return Vector(entry / factor for entry in self._entries)

    def dot(self, other: "Vector") -> Fraction:
        """Inner product ``self · other``."""
        self._check_same_size(other)
        return sum(
            (a * b for a, b in zip(self._entries, other._entries)), Fraction(0)
        )

    # -- predicates and helpers --------------------------------------------

    def is_zero(self) -> bool:
        """True when every entry is zero."""
        return all(entry == 0 for entry in self._entries)

    def entries(self) -> Sequence[Fraction]:
        """The underlying tuple of entries."""
        return self._entries

    def normalized(self) -> "Vector":
        """Scale to a primitive integer vector pointing in the same direction."""
        return Vector(integer_normalize(self._entries))

    def concat(self, other: "Vector") -> "Vector":
        """Concatenation ``(self, other)`` — used for block vectors e_k(x)."""
        return Vector(self._entries + other._entries)

    def pad(self, size: int, offset: int = 0) -> "Vector":
        """Embed this vector at *offset* inside a zero vector of length *size*."""
        if offset < 0 or offset + len(self) > size:
            raise ValueError("padding target too small")
        entries = [Fraction(0)] * size
        for position, entry in enumerate(self._entries):
            entries[offset + position] = entry
        return Vector(entries)

    def _check_same_size(self, other: "Vector") -> None:
        if len(self) != len(other):
            raise ValueError(
                "dimension mismatch: %d vs %d" % (len(self), len(other))
            )
