"""Abstract syntax of the mini-language.

Conditions are represented directly as formulas of
:mod:`repro.linexpr.formula`; the special nondeterministic condition
(``nondet()`` used as a boolean) is encoded by the sentinel
:data:`NONDET_CONDITION`, which the lowering pass turns into two
unguarded edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import FALSE, Formula, TRUE


@dataclass
class NondetCondition:
    """A condition that depends on a nondeterministic boolean input.

    ``lower`` and ``upper`` bracket the condition: ``lower ⇒ condition ⇒
    upper``.  A bare ``nondet()`` has ``lower = FALSE`` and ``upper =
    TRUE``; combining with deterministic conjuncts/disjuncts tightens the
    brackets.  The lowering pass guards the "condition holds" edge with
    ``upper`` and the "condition fails" edge with ``¬lower``, which
    over-approximates the program's behaviours and is therefore sound for
    termination proving.
    """

    lower: Formula
    upper: Formula

    def __repr__(self) -> str:
        return "NondetCondition(lower=%r, upper=%r)" % (self.lower, self.upper)


NONDET_CONDITION = NondetCondition(FALSE, TRUE)

Condition = Union[Formula, NondetCondition]


class Statement:
    """Base class of statements."""


@dataclass
class Skip(Statement):
    """The no-op statement."""


@dataclass
class Assign(Statement):
    """Deterministic assignment ``target = expression``."""

    target: str
    expression: LinExpr


@dataclass
class Havoc(Statement):
    """Nondeterministic assignment ``target = nondet()``."""

    target: str


@dataclass
class Assume(Statement):
    """``assume(condition)``: restrict executions to those satisfying it."""

    condition: Formula


@dataclass
class Block(Statement):
    """A sequence of statements."""

    statements: List[Statement] = field(default_factory=list)


@dataclass
class IfThenElse(Statement):
    """Conditional with optional else branch."""

    condition: Condition
    then_branch: Block
    else_branch: Optional[Block] = None


@dataclass
class While(Statement):
    """A while loop."""

    condition: Condition
    body: Block


@dataclass
class Program:
    """A whole program: variable declarations followed by a body."""

    variables: List[str]
    body: Block
    name: str = "program"

    def statements(self) -> Sequence[Statement]:
        return self.body.statements
