"""Tokenizer for the mini-language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List

from repro.frontend.errors import FrontendError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = {
    "var",
    "while",
    "if",
    "else",
    "assume",
    "assert",
    "skip",
    "nondet",
    "true",
    "false",
    "and",
    "or",
    "not",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+|//[^\n]*|\#[^\n]*)
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<operator><=|>=|==|!=|&&|\|\||[-+*<>=!])
  | (?P<punct>[(){},;])
    """,
    re.VERBOSE,
)


@dataclass
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return "Token(%s, %r, %d:%d)" % (
            self.kind.name,
            self.text,
            self.line,
            self.column,
        )


class LexError(FrontendError):
    """Raised on an unrecognised character."""


def tokenize(source: str) -> List[Token]:
    """Tokenise *source*; comments (``//`` and ``#``) are skipped."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise LexError(
                "unexpected character %r at line %d column %d"
                % (source[position], line, column)
            )
        text = match.group(0)
        column = position - line_start + 1
        if match.lastgroup == "space":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = position + text.rfind("\n") + 1
        elif match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, text, line, column))
        elif match.lastgroup == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
        elif match.lastgroup == "operator":
            tokens.append(Token(TokenKind.OPERATOR, text, line, column))
        elif match.lastgroup == "punct":
            tokens.append(Token(TokenKind.PUNCT, text, line, column))
        position = match.end()
    tokens.append(Token(TokenKind.END, "", line, 0))
    return tokens
