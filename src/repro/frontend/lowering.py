"""Lowering structured programs to control-flow automata.

The translation is the textbook one: every statement is compiled between a
pair of locations; loops introduce a header location (which then naturally
becomes the cut point), conditionals introduce a branch with the condition
on one edge and its negation on the other, and nondeterministic conditions
produce two unguarded edges.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.frontend.ast import (
    Assign,
    Assume,
    Block,
    Havoc,
    IfThenElse,
    Program,
    Skip,
    Statement,
    While,
)
from repro.linexpr.formula import FALSE, Formula, Not, TRUE, conjunction
from repro.linexpr.transform import tighten_strict_atoms, to_nnf
from repro.program.automaton import ControlFlowAutomaton
from repro.program.transition import Transition


class _Lowering:
    def __init__(self, program: Program):
        self.program = program
        self._counter = itertools.count()
        self.automaton = ControlFlowAutomaton(
            program.variables, self._fresh("entry"), name=program.name
        )

    def _fresh(self, stem: str) -> str:
        return "%s_%d" % (stem, next(self._counter))

    # -- helpers -----------------------------------------------------------------

    def _edge(
        self,
        source: str,
        target: str,
        guard: Formula = TRUE,
        updates: Optional[dict] = None,
        name: str = "",
    ) -> None:
        # Program variables are integers, so strict guards (including the
        # ones introduced by negating conditions) are tightened to closed
        # form; this keeps the rational relaxation used by the synthesiser
        # from seeing spurious fractional boundary behaviours.
        guard = tighten_strict_atoms(guard, self.program.variables)
        self.automaton.add_transition(
            Transition(source, target, guard, updates or {}, name)
        )

    @staticmethod
    def _negate(condition: Formula) -> Formula:
        return to_nnf(Not(condition))

    # -- statement compilation -------------------------------------------------------

    def lower(self) -> ControlFlowAutomaton:
        entry = self.automaton.initial_location
        exit_location = self._compile_block(self.program.body, entry)
        self.automaton.add_location(exit_location)
        return self.automaton

    def _compile_block(self, block: Block, entry: str) -> str:
        current = entry
        for statement in block.statements:
            current = self._compile_statement(statement, current)
        return current

    def _compile_statement(self, statement: Statement, entry: str) -> str:
        if isinstance(statement, Skip):
            return entry
        if isinstance(statement, Assign):
            target = self._fresh("after_assign")
            self._edge(entry, target, TRUE, {statement.target: statement.expression})
            return target
        if isinstance(statement, Havoc):
            target = self._fresh("after_havoc")
            self._edge(entry, target, TRUE, {statement.target: None})
            return target
        if isinstance(statement, Assume):
            target = self._fresh("after_assume")
            self._edge(entry, target, statement.condition, {})
            return target
        if isinstance(statement, IfThenElse):
            return self._compile_if(statement, entry)
        if isinstance(statement, While):
            return self._compile_while(statement, entry)
        if isinstance(statement, Block):
            return self._compile_block(statement, entry)
        raise TypeError("unknown statement %r" % (statement,))

    def _compile_if(self, statement: IfThenElse, entry: str) -> str:
        join = self._fresh("join")
        then_entry = self._fresh("then")
        else_entry = self._fresh("else")
        true_guard, false_guard = self._branch_guards(statement.condition)
        self._edge(entry, then_entry, true_guard, {}, name="if_true")
        self._edge(entry, else_entry, false_guard, {}, name="if_false")
        then_exit = self._compile_block(statement.then_branch, then_entry)
        self._edge(then_exit, join, TRUE, {})
        if statement.else_branch is not None:
            else_exit = self._compile_block(statement.else_branch, else_entry)
            self._edge(else_exit, join, TRUE, {})
        else:
            self._edge(else_entry, join, TRUE, {})
        return join

    def _compile_while(self, statement: While, entry: str) -> str:
        header = self._fresh("loop_head")
        body_entry = self._fresh("body")
        exit_location = self._fresh("loop_exit")
        self._edge(entry, header, TRUE, {})
        true_guard, false_guard = self._branch_guards(statement.condition)
        self._edge(header, body_entry, true_guard, {}, name="loop_enter")
        self._edge(header, exit_location, false_guard, {}, name="loop_exit")
        body_exit = self._compile_block(statement.body, body_entry)
        self._edge(body_exit, header, TRUE, {}, name="loop_back")
        return exit_location

    def _branch_guards(self, condition) -> tuple:
        """Guards for the true and false edges of a branching condition.

        Deterministic conditions use the condition and its negation; a
        nondeterministic condition uses its (upper, ¬lower) brackets, which
        over-approximates both branches.
        """
        from repro.frontend.ast import NondetCondition

        if isinstance(condition, NondetCondition):
            true_guard = condition.upper
            false_guard = (
                TRUE if condition.lower is FALSE else self._negate(condition.lower)
            )
            return true_guard, false_guard
        return condition, self._negate(condition)


def lower_program(program: Program) -> ControlFlowAutomaton:
    """Compile an AST into a control-flow automaton."""
    automaton = _Lowering(program).lower()
    # Hoist top-level assume statements executed before any loop into the
    # initial condition so the invariant generator can use them directly.
    initial: List[Formula] = [automaton.initial_condition]
    automaton.initial_condition = conjunction(initial)
    return automaton


def compile_program(source: str, name: str = "program") -> ControlFlowAutomaton:
    """Parse and lower a mini-language program in one call."""
    from repro.frontend.parser import parse_program

    return lower_program(parse_program(source, name))
