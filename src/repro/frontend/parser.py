"""Recursive-descent parser for the mini-language.

Grammar (informally)::

    program   := decl* statement*
    decl      := 'var' IDENT (',' IDENT)* ';'
    statement := 'skip' ';'
               | 'assume' '(' condition ')' ';'
               | IDENT '=' 'nondet' '(' ')' ';'
               | IDENT '=' expression ';'
               | 'if' '(' condition ')' block ('else' block)?
               | 'while' '(' condition ')' block
               | block
    block     := '{' statement* '}'
    condition := disjunct ('or' | '||' disjunct)*
    disjunct  := atom ('and' | '&&' atom)*
    atom      := 'true' | 'false' | 'nondet' '(' ')' | '(' condition ')'
               | expression ('<' | '<=' | '>' | '>=' | '==' | '!=') expression
    expression := term (('+' | '-') term)*
    term      := NUMBER '*' IDENT | NUMBER | IDENT | '-' term
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.ast import (
    Assign,
    Assume,
    Block,
    Condition,
    Havoc,
    IfThenElse,
    NONDET_CONDITION,
    Program,
    Skip,
    Statement,
    While,
)
from repro.frontend.errors import FrontendError
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import FALSE, Formula, TRUE, conjunction, disjunction


class ParseError(FrontendError):
    """Raised on a syntax error, with line/column information."""


def _combine(parts, combiner) -> Condition:
    """Combine condition parts, propagating nondeterministic brackets.

    Deterministic parts are plain formulas; nondeterministic parts carry a
    (lower, upper) bracket.  The combined condition keeps per-bound
    combinations, so ``j > 0 and nondet()`` yields lower = FALSE and
    upper = ``j > 0``.
    """
    from repro.frontend.ast import NondetCondition

    if all(isinstance(part, Formula) for part in parts):
        return combiner(parts)
    lowers = [
        part.lower if isinstance(part, NondetCondition) else part
        for part in parts
    ]
    uppers = [
        part.upper if isinstance(part, NondetCondition) else part
        for part in parts
    ]
    return NondetCondition(combiner(lowers), combiner(uppers))


class _Parser:
    def __init__(self, tokens: List[Token], declared: Optional[List[str]] = None):
        self._tokens = tokens
        self._position = 0
        self.variables: List[str] = list(declared or [])

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _check(self, kind: TokenKind, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: TokenKind, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            token = self._peek()
            raise ParseError(
                "expected %s%s but found %r at line %d"
                % (
                    kind.name.lower(),
                    " %r" % text if text else "",
                    token.text or "<end>",
                    token.line,
                )
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------------

    def parse_program(self, name: str = "program") -> Program:
        while self._check(TokenKind.KEYWORD, "var"):
            self._parse_declaration()
        body = Block(self._parse_statements_until_end())
        self._expect(TokenKind.END)
        return Program(self.variables, body, name)

    def _parse_declaration(self) -> None:
        self._expect(TokenKind.KEYWORD, "var")
        while True:
            token = self._expect(TokenKind.IDENT)
            if token.text not in self.variables:
                self.variables.append(token.text)
            if not self._accept(TokenKind.PUNCT, ","):
                break
        self._expect(TokenKind.PUNCT, ";")

    def _parse_statements_until_end(self) -> List[Statement]:
        statements: List[Statement] = []
        while not self._check(TokenKind.END) and not self._check(
            TokenKind.PUNCT, "}"
        ):
            statements.append(self._parse_statement())
        return statements

    def _parse_block(self) -> Block:
        self._expect(TokenKind.PUNCT, "{")
        statements = self._parse_statements_until_end()
        self._expect(TokenKind.PUNCT, "}")
        return Block(statements)

    def _parse_statement(self) -> Statement:
        if self._check(TokenKind.PUNCT, "{"):
            return self._parse_block()
        if self._accept(TokenKind.KEYWORD, "skip"):
            self._expect(TokenKind.PUNCT, ";")
            return Skip()
        if self._accept(TokenKind.KEYWORD, "assume") or self._accept(
            TokenKind.KEYWORD, "assert"
        ):
            self._expect(TokenKind.PUNCT, "(")
            condition = self._parse_condition()
            self._expect(TokenKind.PUNCT, ")")
            self._expect(TokenKind.PUNCT, ";")
            if isinstance(condition, Formula):
                return Assume(condition)
            # Every state passing a nondeterministic assumption satisfies its
            # upper bracket, so assuming the bracket over-approximates the
            # reachable states (sound for termination proving).
            return Assume(condition.upper)
        if self._accept(TokenKind.KEYWORD, "if"):
            self._expect(TokenKind.PUNCT, "(")
            condition = self._parse_condition()
            self._expect(TokenKind.PUNCT, ")")
            then_branch = self._parse_block()
            else_branch = None
            if self._accept(TokenKind.KEYWORD, "else"):
                else_branch = self._parse_block()
            return IfThenElse(condition, then_branch, else_branch)
        if self._check(TokenKind.KEYWORD, "while"):
            keyword = self._advance()
            self._expect(TokenKind.PUNCT, "(")
            condition = self._parse_condition()
            self._expect(TokenKind.PUNCT, ")")
            body = self._parse_block()
            if not body.statements:
                # An empty loop body is always a mistake in this language
                # (the loop either never runs or spins without progress);
                # rejecting it here gives a typed error instead of letting
                # the degenerate automaton confuse the analysis downstream.
                raise ParseError(
                    "empty loop body at line %d (write `skip;` if the "
                    "spin is intentional)" % keyword.line
                )
            return While(condition, body)
        if self._check(TokenKind.IDENT):
            target = self._advance().text
            self._require_variable(target)
            self._expect(TokenKind.OPERATOR, "=")
            if self._check(TokenKind.KEYWORD, "nondet"):
                self._advance()
                self._expect(TokenKind.PUNCT, "(")
                self._expect(TokenKind.PUNCT, ")")
                self._expect(TokenKind.PUNCT, ";")
                return Havoc(target)
            expression = self._parse_expression()
            self._expect(TokenKind.PUNCT, ";")
            return Assign(target, expression)
        token = self._peek()
        raise ParseError(
            "unexpected token %r at line %d" % (token.text or "<end>", token.line)
        )

    def _require_variable(self, name: str) -> None:
        if name not in self.variables:
            raise ParseError("use of undeclared variable %r" % name)

    # -- conditions --------------------------------------------------------------------

    def _parse_condition(self) -> Condition:
        disjuncts = [self._parse_conjunction()]
        while self._accept(TokenKind.KEYWORD, "or") or self._accept(
            TokenKind.OPERATOR, "||"
        ):
            disjuncts.append(self._parse_conjunction())
        return _combine(disjuncts, disjunction)

    def _parse_conjunction(self) -> Condition:
        conjuncts = [self._parse_condition_atom()]
        while self._accept(TokenKind.KEYWORD, "and") or self._accept(
            TokenKind.OPERATOR, "&&"
        ):
            conjuncts.append(self._parse_condition_atom())
        return _combine(conjuncts, conjunction)

    def _parse_condition_atom(self) -> Condition:
        if self._accept(TokenKind.KEYWORD, "true"):
            return TRUE
        if self._accept(TokenKind.KEYWORD, "false"):
            return FALSE
        if self._check(TokenKind.KEYWORD, "nondet"):
            self._advance()
            self._expect(TokenKind.PUNCT, "(")
            self._expect(TokenKind.PUNCT, ")")
            return NONDET_CONDITION
        if self._check(TokenKind.PUNCT, "("):
            self._advance()
            inner = self._parse_condition()
            self._expect(TokenKind.PUNCT, ")")
            return inner
        left = self._parse_expression()
        operator = self._expect(TokenKind.OPERATOR).text
        right = self._parse_expression()
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
        if operator == "==":
            return left.eq(right)
        if operator == "!=":
            return disjunction([left < right, left > right])
        raise ParseError("unknown comparison operator %r" % operator)

    # -- expressions ------------------------------------------------------------------------

    def _parse_expression(self) -> LinExpr:
        expression = self._parse_term()
        while True:
            if self._accept(TokenKind.OPERATOR, "+"):
                expression = expression + self._parse_term()
            elif self._accept(TokenKind.OPERATOR, "-"):
                expression = expression - self._parse_term()
            else:
                return expression

    def _parse_term(self) -> LinExpr:
        if self._accept(TokenKind.OPERATOR, "-"):
            return -self._parse_term()
        if self._check(TokenKind.NUMBER):
            value = int(self._advance().text)
            if self._accept(TokenKind.OPERATOR, "*"):
                name = self._expect(TokenKind.IDENT).text
                self._require_variable(name)
                return LinExpr({name: value})
            return LinExpr.constant(value)
        token = self._expect(TokenKind.IDENT)
        self._require_variable(token.text)
        expression = LinExpr.variable(token.text)
        if self._accept(TokenKind.OPERATOR, "*"):
            number = self._expect(TokenKind.NUMBER)
            return expression * int(number.text)
        return expression


def parse_program(source: str, name: str = "program") -> Program:
    """Parse *source* into a :class:`~repro.frontend.ast.Program`."""
    return _Parser(tokenize(source)).parse_program(name)
