"""A small imperative front-end.

The paper's tool consumes C through LLVM; the reproduction ships a compact
structured language that is sufficient to express every benchmark of the
evaluation (integer variables, linear assignments, ``if``/``while``,
``assume`` and non-deterministic choice) and lowers it to the
control-flow automata of :mod:`repro.program`.

Example::

    var x, y;
    assume(x >= 0);
    while (x > 0) {
        if (nondet()) { x = x - 1; } else { x = x - 2; }
    }

Use :func:`parse_program` to obtain the AST and :func:`compile_program`
to go straight to a :class:`~repro.program.automaton.ControlFlowAutomaton`.
"""

from repro.frontend.ast import (
    Assign,
    Assume,
    Block,
    Havoc,
    IfThenElse,
    Program,
    Skip,
    While,
)
from repro.frontend.errors import FrontendError
from repro.frontend.lexer import LexError, Token, TokenKind, tokenize
from repro.frontend.parser import ParseError, parse_program
from repro.frontend.lowering import compile_program, lower_program

__all__ = [
    "Program",
    "Block",
    "Assign",
    "Havoc",
    "Assume",
    "Skip",
    "IfThenElse",
    "While",
    "Token",
    "TokenKind",
    "tokenize",
    "FrontendError",
    "LexError",
    "ParseError",
    "parse_program",
    "lower_program",
    "compile_program",
]
