"""Typed front-end errors.

Everything the front end can reject — an unrecognised character, a
syntax error, a structurally degenerate program — raises a subclass of
:class:`FrontendError`, so drivers (the ``repro`` CLI, the fuzz harness,
the batch runner) can distinguish "the input was malformed" from a bug in
the analysis with one ``except FrontendError`` clause.
"""

from __future__ import annotations


class FrontendError(ValueError):
    """Base class of every error raised while reading a program."""
