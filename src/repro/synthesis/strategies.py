"""Refinement strategies: which counterexamples become LP rows.

A strategy makes the two decisions the paper's §4.2 ablation is about:

* **which** of the oracle's candidates to refine with — the extremal
  (most-violating) one, an arbitrary one, or a seeded-random one; and
* **how many** rows to add per iteration — the paper adds one row per
  counterexample, the batched variant adds up to ``k`` at once (useful
  with enumeration oracles, where one query yields many candidates and
  the warm-started LP absorbs several rows per re-solve).

A strategy also declares :attr:`~RefinementStrategy.wants_extremal`, so
the SMT oracle knows whether to run the optimising query or settle for
an arbitrary model.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Sequence

from repro.synthesis.oracles import WitnessGroup

#: Registry names of the built-in strategies.
STRATEGY_NAMES = ("extremal", "arbitrary", "random")


def _group_objective(group: WitnessGroup):
    """Sort key: the most violating objective value of the group."""
    values = [
        witness.objective_value
        for witness in group
        if witness.objective_value is not None
    ]
    if not values:
        return (1, Fraction(0))
    return (0, min(values))


def _group_canonical_key(group: WitnessGroup):
    """A total order on witness groups independent of oracle pool order.

    Keys only on the witness *content* (kind and exact vector entries),
    so two runs whose oracles enumerate the same candidate set in
    different orders still sample identically under the same seed.
    """
    return tuple(
        (
            witness.kind,
            tuple(
                (entry.numerator, entry.denominator)
                for entry in witness.vector
            ),
        )
        for witness in group
    )


class RefinementStrategy:
    """Selection policy over the oracle's candidate witness groups."""

    #: Stable registry name (the ``cex_strategy`` config value).
    name: str = ""
    #: Whether the oracle should optimise (extremal witnesses) or not.
    wants_extremal: bool = False

    def __init__(self, batch: int = 1):
        if batch < 1:
            raise ValueError("batch must be >= 1, got %r" % (batch,))
        self.batch = batch

    def select(self, groups: Sequence[WitnessGroup]) -> List[WitnessGroup]:
        """Pick up to :attr:`batch` groups to refine with this iteration."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s batch=%d>" % (type(self).__name__, self.batch)


class ExtremalStrategy(RefinementStrategy):
    """The paper's choice: refine with the most extremal counterexamples."""

    name = "extremal"
    wants_extremal = True

    def select(self, groups: Sequence[WitnessGroup]) -> List[WitnessGroup]:
        # Canonical tiebreak: equally violating groups would otherwise be
        # picked by oracle enumeration order, which batched selection
        # must not depend on.
        ordered = sorted(
            groups,
            key=lambda group: (
                _group_objective(group),
                _group_canonical_key(group),
            ),
        )
        return ordered[: self.batch]


class ArbitraryStrategy(RefinementStrategy):
    """First-found counterexamples, no optimisation (the ablation baseline)."""

    name = "arbitrary"
    wants_extremal = False

    def select(self, groups: Sequence[WitnessGroup]) -> List[WitnessGroup]:
        return list(groups[: self.batch])


class RandomStrategy(RefinementStrategy):
    """Seeded-random selection among the violating candidates."""

    name = "random"
    wants_extremal = False

    def __init__(self, batch: int = 1, seed: int = 0):
        super().__init__(batch)
        self.seed = seed
        self._rng = random.Random(seed)

    def select(self, groups: Sequence[WitnessGroup]) -> List[WitnessGroup]:
        if len(groups) <= self.batch:
            return list(groups)
        # Sample from a canonically ordered pool: the oracle's enumeration
        # order is an implementation detail (hash ordering, solver model
        # order), and sampling from it directly would let ``oracle_seed``
        # pin the RNG without pinning the run.
        ordered = sorted(groups, key=_group_canonical_key)
        return self._rng.sample(ordered, self.batch)


def make_strategy(name, batch: int = 1, seed: int = 0) -> RefinementStrategy:
    """Resolve a strategy name (or pass an instance through unchanged)."""
    if isinstance(name, RefinementStrategy):
        return name
    if name == "extremal":
        return ExtremalStrategy(batch)
    if name == "arbitrary":
        return ArbitraryStrategy(batch)
    if name == "random":
        return RandomStrategy(batch, seed=seed)
    raise ValueError(
        "unknown counterexample strategy %r (available: %s)"
        % (name, ", ".join(STRATEGY_NAMES))
    )
