"""Counterexample oracles for the CEGIS engine.

An oracle answers one question: *given the current candidate, produce a
transition step on which it fails to decrease strictly* — a model of
``Φ ∧ AvoidSpace(u, B) ∧ λ·u ≤ 0`` — or certify that none exists.  Three
interchangeable implementations:

* :class:`SmtOptimizingOracle` (``"smt"``) — the paper's oracle: an
  optimising SMT query minimising ``λ·u``, so the witness is *extremal*
  (a vertex of one disjunct of the convex hull of one-step differences,
  or a ray when the objective is unbounded, §4.2).  With a non-extremal
  strategy the same query is asked without the minimisation, yielding an
  arbitrary theory model — the paper's extremal-vs-arbitrary ablation.
* :class:`DdEnumerationOracle` (``"dd"``) — vertex/ray enumeration: the
  generators of every path polyhedron are computed once per component
  with the double-description method of :mod:`repro.polyhedra.dd` and
  handed out lazily, most useful with batched refinement.  When no
  un-consumed generator violates the candidate, exhaustion is *confirmed*
  with one complete SMT query, so verdicts never depend on the
  enumeration being lossless.
* :class:`SamplingOracle` (``"sampling"``) — seeded sampling: violating
  generators are perturbed into interior (deliberately non-extremal)
  points of their disjunct, exercising the engine on the kind of
  counterexamples a plain ``get-model`` call would produce.  Exhaustion
  is SMT-confirmed exactly like the DD oracle.

Every oracle only ever returns genuine points/rays of the restricted
transition relation, and only reports exhaustion after a complete check
— the two facts the engine's verdicts rest on.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import ONE_COORDINATE, TerminationProblem
from repro.linalg.matrix import in_span, orthogonal_complement
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, conjunction, disjunction
from repro.linexpr.transform import prime_suffix
from repro.smt.optimize import OptimizingSmtSolver

#: Registry names of the built-in oracles, in preference order.
ORACLE_NAMES = ("smt", "dd", "sampling")


# ---------------------------------------------------------------------------
# Witnesses and the oracle interface
# ---------------------------------------------------------------------------


@dataclass
class Witness:
    """One counterexample candidate in the stacked ``u`` space.

    A ``"vertex"`` witness is a genuine one-step difference vector; a
    ``"ray"`` witness is a recession direction along which the candidate
    is unbounded.  ``token`` is an oracle-private handle the engine hands
    back through :meth:`CounterexampleOracle.consumed` once the witness
    was actually turned into an LP row.
    """

    vector: Vector
    kind: str  # "vertex" | "ray"
    objective_value: Optional[Fraction] = None
    origin: str = ""
    token: Optional[int] = None


#: Witnesses that must be added together (an SMT vertex and its ray).
WitnessGroup = List[Witness]


@dataclass
class OracleRequest:
    """One engine query: refute *objective* outside ``span(flat_basis)``."""

    objective: LinExpr
    flat_basis: Sequence[Vector] = ()
    want_extremal: bool = True
    max_witnesses: int = 1


class CounterexampleOracle(abc.ABC):
    """Source of counterexamples for one synthesis component."""

    #: Stable registry name (the ``cex_oracle`` config value).
    name: str = ""

    def __init__(self) -> None:
        self.statistics: Dict[str, int] = {
            "queries": 0,
            "smt_queries": 0,
            "candidates": 0,
        }

    def reset(self, template, extra_constraints: Sequence = ()) -> None:
        """Prepare for one component of *template* (called by the engine)."""
        self._template = template
        self._extra_constraints = list(extra_constraints)

    @abc.abstractmethod
    def find(self, request: OracleRequest) -> List[WitnessGroup]:
        """Candidate witness groups violating the request's objective.

        An empty list means *exhausted*: no counterexample exists (the
        component is finished).  Oracles must only return an empty list
        after a complete check.
        """

    def consumed(self, groups: Sequence[WitnessGroup]) -> None:
        """The engine added these groups as LP rows (default: no-op)."""


# ---------------------------------------------------------------------------
# Shared query building blocks
# ---------------------------------------------------------------------------


def avoid_space(
    problem: TerminationProblem, flat_basis: Sequence[Vector]
) -> Formula:
    """``AvoidSpace(u, B)``: the block vector must leave ``span(B)``.

    Implemented through the orthogonal complement: ``u ∈ span(B)`` iff
    ``w·u = 0`` for every ``w`` in a basis of ``span(B)^⊥``, so the
    avoidance condition is the disjunction of the dis-equalities
    ``w·u < 0 ∨ w·u > 0``.  With ``B = ∅`` this is simply ``u ≠ 0``, which
    also rules out stuttering counterexamples ``(x, x)``.
    """
    names = problem.difference_variables()
    dimension = problem.stacked_dimension
    complement = orthogonal_complement(list(flat_basis), dimension)
    disequalities: List[Formula] = []
    for normal in complement:
        expr = LinExpr(
            {name: normal[i] for i, name in enumerate(names) if normal[i] != 0}
        )
        disequalities.append(disjunction([expr < 0, expr > 0]))
    return disjunction(disequalities)


def has_stuttering_step(
    problem: TerminationProblem,
    transition_formula: Formula,
    extra_constraints: Sequence,
    integer_mode: bool,
    kernel: str = "exact",
) -> bool:
    """Whether ``Φ`` admits a step with ``u = 0`` (see end of Algorithm 1)."""
    solver = OptimizingSmtSolver(
        integer_variables=(
            problem.smt_integer_variables() if integer_mode else ()
        ),
        kernel=kernel,
    )
    solver.assert_formula(transition_formula)
    for constraint in extra_constraints:
        solver.assert_formula(constraint)
    zero = conjunction(
        [
            LinExpr.variable(name).eq(0)
            for name in problem.difference_variables()
        ]
    )
    solver.assert_formula(zero)
    return solver.check().is_sat


def objective_on_vector(
    objective: LinExpr, vector: Vector, names: Sequence[str]
) -> Fraction:
    """``λ · u`` for a concrete stacked vector (names fix the ordering)."""
    return objective.evaluate(dict(zip(names, vector)))


# ---------------------------------------------------------------------------
# The paper's oracle: optimising SMT
# ---------------------------------------------------------------------------


class SmtOptimizingOracle(CounterexampleOracle):
    """Extremal (or arbitrary) counterexamples from optimising SMT."""

    name = "smt"

    def _build_query(
        self, objective: LinExpr, flat_basis: Sequence[Vector]
    ) -> OptimizingSmtSolver:
        template = self._template
        problem = template.problem
        solver = OptimizingSmtSolver(
            integer_variables=(
                problem.smt_integer_variables() if template.integer_mode else ()
            ),
            mode=template.smt_mode,
            kernel=getattr(template, "kernel", "exact"),
        )
        solver.assert_formula(template.transition_formula)
        for constraint in self._extra_constraints:
            solver.assert_formula(constraint)
        solver.assert_formula(avoid_space(problem, flat_basis))
        solver.assert_formula(objective <= 0)
        return solver

    def find(self, request: OracleRequest) -> List[WitnessGroup]:
        self.statistics["queries"] += 1
        self.statistics["smt_queries"] += 1
        problem = self._template.problem
        solver = self._build_query(request.objective, request.flat_basis)
        if request.want_extremal:
            outcome = solver.minimize(request.objective)
        else:
            # Same query, no minimisation: an arbitrary theory model —
            # the non-extremal half of the paper's §4.2 ablation.
            outcome = solver.check()
        if outcome.is_unsat:
            return []
        witness = problem.difference_vector(outcome.model)
        group: WitnessGroup = [
            Witness(
                vector=witness,
                kind="vertex",
                objective_value=outcome.objective_value,
                origin=self.name,
            )
        ]
        if outcome.unbounded:
            ray = Vector(
                outcome.ray.get(name, Fraction(0))
                for name in problem.difference_variables()
            )
            if not ray.is_zero():
                group.append(Witness(vector=ray, kind="ray", origin=self.name))
        self.statistics["candidates"] += 1
        return [group]


# ---------------------------------------------------------------------------
# Mapping disjunct generators into the stacked u-space
# ---------------------------------------------------------------------------


def difference_map(
    problem: TerminationProblem, disjunct
) -> Tuple[List[str], List[Vector]]:
    """The linear map from a disjunct's state space to the stacked u-space.

    Returns the disjunct's variable ordering and, per stacked coordinate,
    the row vector expressing that coordinate of ``u = e_k((x,1)) −
    e_{k'}((x',1))`` over the disjunct's variables (the constant part is
    handled separately by the caller through the @one coordinate).
    """
    variables = disjunct.variables()
    rows: List[Vector] = []
    for location in problem.cutset:
        for coordinate in problem.space_variables:
            entries = [0] * len(variables)
            if coordinate == ONE_COORDINATE:
                rows.append(Vector(entries))
                continue
            if location == disjunct.source and coordinate in variables:
                entries[variables.index(coordinate)] += 1
            primed = coordinate + "'"
            if location == disjunct.target and primed in variables:
                entries[variables.index(primed)] -= 1
            rows.append(Vector(entries))
    return variables, rows


def one_offsets(problem: TerminationProblem, disjunct) -> Vector:
    """The constant contribution of the @one coordinates to ``u``."""
    entries = []
    for location in problem.cutset:
        for coordinate in problem.space_variables:
            value = 0
            if coordinate == ONE_COORDINATE:
                if location == disjunct.source:
                    value += 1
                if location == disjunct.target:
                    value -= 1
            entries.append(value)
    return Vector(entries)


def disjunct_generators(
    problem: TerminationProblem, disjunct
) -> List[Tuple[str, Vector]]:
    """Vertices and rays of the disjunct, mapped into the stacked u-space."""
    from repro.polyhedra.dd import constraints_to_generators

    variables, rows = difference_map(problem, disjunct)
    offset = one_offsets(problem, disjunct)
    system = constraints_to_generators(disjunct.constraints, variables)
    generators: List[Tuple[str, Vector]] = []
    for vertex in system.vertices:
        image = Vector([row.dot(vertex) for row in rows]) + offset
        generators.append(("vertex", image))
    for ray in system.all_ray_like():
        image = Vector([row.dot(ray) for row in rows])
        if not image.is_zero():
            generators.append(("ray", image))
    return generators


def constraint_in_state_space(
    problem: TerminationProblem,
    constraint: Constraint,
    source: str,
    target: str,
) -> Constraint:
    """Rewrite a constraint over the ``u`` variables into a disjunct's space.

    The flatness restriction ``λ_{d'} · u = 0`` of Algorithm 2 mentions
    only the stacked difference variables; on one ``source → target``
    disjunct each ``u`` component is the fixed linear form
    ``e_source((x,1)) − e_target((x',1))``, so the constraint becomes a
    plain state-space row the double-description step can consume.
    """
    terms: Dict[str, Fraction] = {}
    constant = constraint.expr.constant_term
    for location in problem.cutset:
        for variable in problem.variables:
            coefficient = constraint.expr.coefficient(
                problem.difference_variable(location, variable)
            )
            if coefficient == 0:
                continue
            if location == source:
                terms[variable] = terms.get(variable, Fraction(0)) + coefficient
            if location == target:
                primed = prime_suffix(variable)
                terms[primed] = terms.get(primed, Fraction(0)) - coefficient
        one_coefficient = constraint.expr.coefficient(
            problem.difference_variable(location, ONE_COORDINATE)
        )
        if one_coefficient != 0:
            if location == source:
                constant += one_coefficient
            if location == target:
                constant -= one_coefficient
    terms = {name: value for name, value in terms.items() if value != 0}
    return Constraint(LinExpr(terms, constant), constraint.relation)


# ---------------------------------------------------------------------------
# Double-description enumeration oracle
# ---------------------------------------------------------------------------


@dataclass
class _Generator:
    """One enumerated generator with its provenance."""

    vector: Vector
    kind: str  # "vertex" | "ray"
    disjunct: int
    used: bool = field(default=False, compare=False)


class DdEnumerationOracle(CounterexampleOracle):
    """Lazy hand-out of eagerly enumerated vertex/ray generators.

    The component's restricted transition relation (including the
    lexicographic flatness constraints, translated into each disjunct's
    state space) is converted to generators once per :meth:`reset`; each
    :meth:`find` returns the not-yet-consumed generators violating the
    current candidate.  Exhaustion is confirmed with one complete SMT
    query, whose witness (if any) is returned like a normal candidate.
    """

    name = "dd"

    def reset(self, template, extra_constraints: Sequence = ()) -> None:
        super().reset(template, extra_constraints)
        self._names = template.problem.difference_variables()
        self._confirmation = SmtOptimizingOracle()
        self._confirmation.reset(template, extra_constraints)
        self._generators = self._enumerate(template, extra_constraints)
        self._vertices_by_disjunct: Dict[int, List[Vector]] = {}
        for generator in self._generators:
            if generator.kind == "vertex":
                self._vertices_by_disjunct.setdefault(
                    generator.disjunct, []
                ).append(generator.vector)

    def _enumerate(self, template, extra_constraints) -> List[_Generator]:
        # Imported lazily: the baselines package is built on the engine,
        # so the synthesis layer must not import it at module load time.
        from repro.baselines.dnf import TransitionDisjunct, expand_disjuncts

        problem = template.problem
        generators: List[_Generator] = []
        for position, disjunct in enumerate(expand_disjuncts(problem)):
            rows = list(disjunct.constraints)
            for constraint in extra_constraints:
                rows.append(
                    constraint_in_state_space(
                        problem, constraint, disjunct.source, disjunct.target
                    )
                )
            restricted = TransitionDisjunct(
                disjunct.source, disjunct.target, rows
            )
            for kind, vector in disjunct_generators(problem, restricted):
                if vector.is_zero():
                    # u = 0 is a stuttering step; AvoidSpace always
                    # excludes it and the end-of-loop check handles it.
                    continue
                generators.append(_Generator(vector, kind, position))
        return generators

    def _violates(
        self,
        generator: _Generator,
        request: OracleRequest,
        flat_basis: List[Vector],
    ) -> Optional[Fraction]:
        value = objective_on_vector(
            request.objective, generator.vector, self._names
        )
        if generator.kind == "vertex":
            if value > 0:
                return None
            if in_span(generator.vector, flat_basis):
                return None
        else:
            if value >= 0:
                return None
        return value

    def _make_group(
        self,
        index: int,
        generator: _Generator,
        value: Fraction,
        request: OracleRequest,
    ) -> WitnessGroup:
        return [
            Witness(
                vector=generator.vector,
                kind=generator.kind,
                objective_value=value,
                origin=self.name,
                token=index,
            )
        ]

    def find(self, request: OracleRequest) -> List[WitnessGroup]:
        self.statistics["queries"] += 1
        groups: List[WitnessGroup] = []
        flat_basis = list(request.flat_basis)
        for index, generator in enumerate(self._generators):
            if generator.used:
                continue
            value = self._violates(generator, request, flat_basis)
            if value is None:
                continue
            groups.append(self._make_group(index, generator, value, request))
            if (
                not request.want_extremal
                and len(groups) >= request.max_witnesses
            ):
                # A non-extremal strategy keeps at most max_witnesses
                # candidates and does not rank them, so further span/dot
                # checks would be thrown away.
                break
        if groups:
            self.statistics["candidates"] += len(groups)
            return groups
        # No un-consumed generator violates: confirm exhaustion with the
        # complete query (covers degenerate DD output and interactions
        # between AvoidSpace and non-generator points).
        self.statistics["smt_queries"] += 1
        return self._confirmation.find(replace(request, want_extremal=True))

    def consumed(self, groups: Sequence[WitnessGroup]) -> None:
        for group in groups:
            for witness in group:
                if witness.token is not None:
                    self._generators[witness.token].used = True


# ---------------------------------------------------------------------------
# Seeded sampling oracle
# ---------------------------------------------------------------------------


class SamplingOracle(DdEnumerationOracle):
    """Interior-point (non-extremal) counterexamples, deterministically seeded.

    Enumerates generators like the DD oracle but perturbs every violating
    vertex towards another vertex of the same disjunct, returning a point
    *inside* the path polyhedron whenever one still violates the
    candidate.  This is the "what if counterexamples are not extremal"
    scenario of §4.2, reproducible via ``oracle_seed``.
    """

    name = "sampling"

    #: Mixing weights tried (largest first) when perturbing a vertex.
    MIX_WEIGHTS = (Fraction(1, 2), Fraction(1, 3), Fraction(1, 8))

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._resets = 0
        self._rng = random.Random(seed)

    def reset(self, template, extra_constraints: Sequence = ()) -> None:
        super().reset(template, extra_constraints)
        # Re-seed per component so a run is reproducible from
        # (oracle_seed, component) alone, independent of query counts.
        self._rng = random.Random((self.seed + 1) * 1000003 + self._resets)
        self._resets += 1

    def _make_group(
        self,
        index: int,
        generator: _Generator,
        value: Fraction,
        request: OracleRequest,
    ) -> WitnessGroup:
        if generator.kind != "vertex":
            return super()._make_group(index, generator, value, request)
        partners = [
            vector
            for vector in self._vertices_by_disjunct.get(generator.disjunct, [])
            if vector != generator.vector
        ]
        point, point_value = generator.vector, value
        if partners:
            partner = self._rng.choice(partners)
            for weight in self.MIX_WEIGHTS:
                mixed = generator.vector * (1 - weight) + partner * weight
                mixed_value = objective_on_vector(
                    request.objective, mixed, self._names
                )
                if mixed_value > 0 or mixed.is_zero():
                    continue
                if in_span(mixed, list(request.flat_basis)):
                    continue
                point, point_value = mixed, mixed_value
                break
        return [
            Witness(
                vector=point,
                kind="vertex",
                objective_value=point_value,
                origin=self.name,
                token=index,
            )
        ]


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


def make_oracle(name, seed: int = 0) -> CounterexampleOracle:
    """Resolve an oracle name (or pass an instance through unchanged)."""
    if isinstance(name, CounterexampleOracle):
        return name
    if name == "smt":
        return SmtOptimizingOracle()
    if name == "dd":
        return DdEnumerationOracle()
    if name == "sampling":
        return SamplingOracle(seed=seed)
    raise ValueError(
        "unknown counterexample oracle %r (available: %s)"
        % (name, ", ".join(ORACLE_NAMES))
    )
