"""The pluggable CEGIS synthesis engine.

This package owns the counterexample-guided loop of the paper
(Algorithms 1–3), decomposed into swappable pieces:

* :mod:`repro.synthesis.engine` — the loop itself (budgets, flat-basis
  bookkeeping, per-iteration events) plus the greedy elimination loop
  the eager baselines share;
* :mod:`repro.synthesis.oracles` — where counterexamples come from
  (optimising SMT, double-description enumeration, seeded sampling);
* :mod:`repro.synthesis.strategies` — which counterexamples become LP
  rows (extremal / arbitrary / random, one row or a batch per iteration);
* :mod:`repro.synthesis.templates` — the candidate spaces (linear
  per-cutpoint, lexicographic multidimensional).

``core/monodim.py`` and ``core/multidim.py`` are thin configurations of
this engine; the ``cex_oracle`` / ``cex_strategy`` / ``cex_batch`` /
``oracle_seed`` fields of :class:`repro.api.AnalysisConfig` (and the
matching ``repro prove --oracle/--cex-strategy`` flags) select the
pieces end to end.
"""

from repro.synthesis.engine import (
    CegisEngine,
    CegisEvent,
    CegisObserver,
    MaxIterationsExceeded,
    MonodimResult,
    MonodimStatistics,
    MultidimResult,
    SynthesisCancelled,
    eliminate_lexicographic,
)
from repro.synthesis.oracles import (
    CounterexampleOracle,
    DdEnumerationOracle,
    ORACLE_NAMES,
    OracleRequest,
    SamplingOracle,
    SmtOptimizingOracle,
    Witness,
    avoid_space,
    make_oracle,
)
from repro.synthesis.strategies import (
    ArbitraryStrategy,
    ExtremalStrategy,
    RandomStrategy,
    RefinementStrategy,
    STRATEGY_NAMES,
    make_strategy,
)
from repro.synthesis.templates import LexicographicTemplate, LinearTemplate

__all__ = [
    "CegisEngine",
    "CegisEvent",
    "CegisObserver",
    "MaxIterationsExceeded",
    "MonodimResult",
    "MonodimStatistics",
    "MultidimResult",
    "SynthesisCancelled",
    "eliminate_lexicographic",
    "CounterexampleOracle",
    "OracleRequest",
    "Witness",
    "SmtOptimizingOracle",
    "DdEnumerationOracle",
    "SamplingOracle",
    "ORACLE_NAMES",
    "avoid_space",
    "make_oracle",
    "RefinementStrategy",
    "ExtremalStrategy",
    "ArbitraryStrategy",
    "RandomStrategy",
    "STRATEGY_NAMES",
    "make_strategy",
    "LinearTemplate",
    "LexicographicTemplate",
]
