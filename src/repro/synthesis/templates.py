"""Candidate templates for the CEGIS engine.

A template answers three questions for the engine:

* what does a *candidate* look like and where do refined candidates come
  from — here, the affine per-cutpoint functions of Definition 11,
  recomputed by ``LP(V, Constraints(I))`` over the collected generators;
* how is a candidate turned into the oracle's objective — ``λ · u``,
  the one-step decrease of the candidate over the stacked difference
  space of Definition 12;
* (lexicographic case) how components compose — the flatness restriction
  ``λ_{d'} · u = 0`` of Algorithm 2 and the linear-dependence failure
  test of Theorem 1.

Keeping these behind a small interface is what lets the same engine run
the paper's loop, the ablations, and future template families (e.g. an
octagon-shaped candidate space) without touching the loop itself.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.lp_instance import LpStatistics, RankingLp
from repro.core.problem import TerminationProblem
from repro.core.ranking import AffineRankingFunction
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.smt.optimize import SearchMode


class LinearTemplate:
    """Linear per-cutpoint affine template (Algorithm 1/3).

    Owns the termination problem's encoding conventions the loop needs:
    the zero starting candidate, the incremental ranking LP, the
    ``λ · u`` objective, and the end-of-loop stuttering check.
    """

    def __init__(
        self,
        problem: TerminationProblem,
        integer_mode: bool = False,
        smt_mode: str | SearchMode = SearchMode.LOCAL,
        kernel: str = "exact",
    ):
        self.problem = problem
        self.integer_mode = integer_mode
        self.smt_mode = smt_mode
        self.kernel = kernel
        #: ``Φ``: the disjunction over blocks, built once per template and
        #: shared by every oracle query of every component.
        self.transition_formula = problem.transition_formula()

    # -- candidates -----------------------------------------------------------------

    def initial_candidate(self) -> AffineRankingFunction:
        return self.problem.zero_ranking()

    def make_lp(
        self, statistics: LpStatistics, lp_mode: str, kernel: str = "auto"
    ) -> RankingLp:
        """A fresh ``LP(V, Constraints(I))`` instance (Definition 11)."""
        return RankingLp(self.problem, statistics, mode=lp_mode, kernel=kernel)

    def objective(self, candidate: AffineRankingFunction) -> LinExpr:
        """``λ · u`` — what the oracle minimises / refutes."""
        return self.problem.objective(candidate)

    # -- end-of-loop checks ---------------------------------------------------------

    def has_stuttering_step(self, extra_constraints: Sequence = ()) -> bool:
        """Whether ``Φ`` admits a step with ``u = 0`` (end of Algorithm 1)."""
        from repro.synthesis.oracles import has_stuttering_step

        return has_stuttering_step(
            self.problem,
            self.transition_formula,
            extra_constraints,
            self.integer_mode,
            kernel=self.kernel,
        )


class LexicographicTemplate(LinearTemplate):
    """Lexicographic multidimensional template (Algorithm 2).

    Extends the linear template with the composition rules: the flatness
    constraint restricting the next dimension, the stacked vector used by
    the Theorem-1 dependence test, and the dimension cap.
    """

    def __init__(
        self,
        problem: TerminationProblem,
        integer_mode: bool = False,
        smt_mode: str | SearchMode = SearchMode.LOCAL,
        max_dimension: Optional[int] = None,
        kernel: str = "exact",
    ):
        super().__init__(
            problem,
            integer_mode=integer_mode,
            smt_mode=smt_mode,
            kernel=kernel,
        )
        self.max_dimension = (
            max_dimension
            if max_dimension is not None
            else problem.stacked_dimension
        )

    def stacked_vector(self, component: AffineRankingFunction) -> Vector:
        """The component as one vector over the stacked ``u`` space."""
        return component.stacked_vector(self.problem.cutset)

    def flatness_constraint(self, component: AffineRankingFunction) -> Constraint:
        """``λ_d · u = 0``: restrict the next dimension to constant steps."""
        return Constraint(self.problem.objective(component), Relation.EQ)
