"""The generic CEGIS synthesis engine (Algorithms 1–3 of the paper).

The counterexample-guided loop that used to be hard-wired into
``core/monodim.py`` and ``core/multidim.py`` lives here, decomposed into
four swappable pieces:

* a **template** (:mod:`repro.synthesis.templates`) — the candidate space
  and its LP (``LP(V, Constraints(I))``, Definition 11), plus the
  lexicographic composition rules of Algorithm 2;
* a **counterexample oracle** (:mod:`repro.synthesis.oracles`) — where
  counterexamples come from: the paper's optimising-SMT extremal-point
  search, double-description generator enumeration, or seeded sampling;
* a **refinement strategy** (:mod:`repro.synthesis.strategies`) — which
  of the oracle's candidates are turned into LP rows each iteration
  (extremal / arbitrary / random selection, one row or a batch of ``k``);
* **budgets and observers** — the iteration cap and a per-iteration event
  stream the analysis pipeline surfaces to its callers.

With the default configuration (``smt`` oracle, ``extremal`` strategy,
batch 1) the engine replays the seed loop of the paper decision for
decision: one optimising SMT query per iteration, one generator row per
counterexample, flat directions accumulated into the ``AvoidSpace``
basis.  Every other oracle × strategy combination is an ablation the
paper discusses (§4.2: extremal vs. arbitrary counterexamples) or an
eager/lazy hybrid, and all of them are sound: the loop only concludes
from LP facts about genuine transition points and from oracle
exhaustion, which every oracle backs with a complete check.

:func:`eliminate_lexicographic` is the second loop shape the repository
kept re-implementing — the greedy "synthesise a component, discard what
it strictly decreases, repeat" elimination of the eager baselines — now
shared by ``eager_farkas``, ``eager_generators`` and the ``dnf`` prover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.lp_instance import LpStatistics
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.matrix import in_span
from repro.linalg.vector import Vector


class MaxIterationsExceeded(RuntimeError):
    """The synthesis loop exceeded its iteration budget.

    With an SMT solver returning generators of the transition polyhedra
    the loop provably terminates (Lemma 1); the budget is a safety net
    for the fallback paths of the reproduction's own OMT layer and for
    the non-extremal ablation strategies, whose counterexamples are not
    generators and therefore carry no termination guarantee.
    """


class SynthesisCancelled(RuntimeError):
    """The synthesis loop was cancelled through its ``should_stop`` hook.

    Raised co-operatively (between iterations, never mid-solve) when a
    caller racing several engines — e.g. termination against
    nontermination in the combined ``nonterm="auto"`` mode — has already
    obtained a verdict and asks the losers to stand down.
    """


@dataclass
class MonodimStatistics:
    """Counters for one run of the mono-dimensional loop.

    ``lp`` carries this component's own LP solve costs (pivots, warm vs
    cold solves) plus the unified engine counters (oracle queries,
    counterexample rows, flat directions) so the evaluation harness can
    report them through one :class:`~repro.core.lp_instance.LpStatistics`.
    """

    iterations: int = 0
    counterexamples: int = 0
    rays: int = 0
    flat_directions: int = 0
    lp: LpStatistics = field(default_factory=LpStatistics)


@dataclass
class MonodimResult:
    """Output of Algorithm 1/3: ``(λ, λ0, strict?)`` plus diagnostics."""

    ranking: AffineRankingFunction
    strict: bool
    flat_basis: List[Vector] = field(default_factory=list)
    statistics: MonodimStatistics = field(default_factory=MonodimStatistics)

    @property
    def is_trivial(self) -> bool:
        return self.ranking.is_trivial()


@dataclass
class MultidimResult:
    """Outcome of the lexicographic synthesis (Algorithm 2)."""

    success: bool
    ranking: Optional[LexicographicRankingFunction]
    components: List[MonodimResult] = field(default_factory=list)

    @property
    def dimension(self) -> int:
        return self.ranking.dimension if self.ranking else 0


@dataclass
class CegisEvent:
    """One engine event, delivered to the registered observers.

    ``kind`` is one of ``"component_start"``, ``"iteration"`` (one oracle
    query + LP re-solve round, with the row/flat counters of that round
    in ``payload``) and ``"component_end"``.  ``component`` is the
    0-based lexicographic dimension the event belongs to.
    """

    kind: str
    component: int
    iteration: int
    payload: Dict[str, object] = field(default_factory=dict)


#: An engine observer: called with every :class:`CegisEvent`.
CegisObserver = Callable[[CegisEvent], None]


class CegisEngine:
    """Template + oracle + strategy + budgets, composed into the loop."""

    def __init__(
        self,
        oracle,
        strategy,
        max_iterations: int = 200,
        lp_mode: str = "incremental",
        kernel: str = "auto",
        observers: Sequence[CegisObserver] = (),
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        self.oracle = oracle
        self.strategy = strategy
        self.max_iterations = max_iterations
        self.lp_mode = lp_mode
        self.kernel = kernel
        self.should_stop = should_stop
        self._observers: List[CegisObserver] = list(observers)

    def add_observer(self, observer: CegisObserver) -> None:
        self._observers.append(observer)

    def _emit(
        self, kind: str, component: int, iteration: int, **payload
    ) -> None:
        if not self._observers:
            return
        event = CegisEvent(kind, component, iteration, payload)
        for observer in self._observers:
            observer(event)

    # -- Algorithm 1 / 3: one quasi ranking function of maximal power --------------

    def synthesize_component(
        self,
        template,
        extra_constraints: Sequence = (),
        component: int = 0,
        lp_statistics: Optional[LpStatistics] = None,
    ) -> MonodimResult:
        """Synthesise one component over ``Φ ∧ extra_constraints``.

        This is the alternation of Algorithm 1: ask the oracle for
        counterexamples on which the current candidate fails to decrease
        strictly, add the rows the strategy selects to
        ``LP(V, Constraints(I))``, and re-solve for the quasi ranking
        function of maximal termination power — until the oracle is
        exhausted or the LP proves no collected generator separable.
        """
        statistics = MonodimStatistics()
        ranking_lp = template.make_lp(
            statistics.lp, self.lp_mode, kernel=self.kernel
        )
        flat_basis: List[Vector] = []
        self._emit(
            "component_start",
            component,
            0,
            oracle=getattr(self.oracle, "name", ""),
            strategy=getattr(self.strategy, "name", ""),
        )
        try:
            current, deltas = self._refinement_loop(
                template,
                ranking_lp,
                statistics,
                extra_constraints,
                flat_basis,
                component,
            )
        finally:
            # Merge even when the iteration budget blows: the caller's
            # shared statistics must reflect the work actually performed.
            if lp_statistics is not None:
                lp_statistics.merge(statistics.lp)

        strict = bool(deltas) and all(value == 1 for value in deltas)
        if strict:
            strict = not template.has_stuttering_step(extra_constraints)
        current.strict = strict
        self._emit(
            "component_end",
            component,
            statistics.iterations,
            strict=strict,
            counterexamples=statistics.counterexamples,
        )
        return MonodimResult(
            ranking=current,
            strict=strict,
            flat_basis=flat_basis,
            statistics=statistics,
        )

    def _refinement_loop(
        self,
        template,
        ranking_lp,
        statistics: MonodimStatistics,
        extra_constraints: Sequence,
        flat_basis: List[Vector],
        component: int,
    ):
        """Oracle query → strategy selection → LP re-solve, until fixpoint."""
        # Imported here: the oracles module lazily reaches into the
        # baselines package, which itself builds on this engine.
        from repro.synthesis.oracles import OracleRequest

        current = template.initial_candidate()
        deltas: List[Fraction] = []
        self.oracle.reset(template, extra_constraints)

        while True:
            if self.should_stop is not None and self.should_stop():
                raise SynthesisCancelled(
                    "synthesis cancelled before iteration %d"
                    % (statistics.iterations + 1)
                )
            statistics.iterations += 1
            if statistics.iterations > self.max_iterations:
                raise MaxIterationsExceeded(
                    "mono-dimensional synthesis exceeded %d iterations"
                    % self.max_iterations
                )
            objective = template.objective(current)
            statistics.lp.oracle_queries += 1
            groups = self.oracle.find(
                OracleRequest(
                    objective=objective,
                    flat_basis=flat_basis,
                    want_extremal=self.strategy.wants_extremal,
                    max_witnesses=self.strategy.batch,
                )
            )
            if not groups:
                self._emit("iteration", component, statistics.iterations,
                           exhausted=True)
                break

            chosen = self.strategy.select(groups)
            self.oracle.consumed(chosen)
            vertex_rows: List[Tuple[Vector, int]] = []
            rays_added = 0
            for group in chosen:
                for witness in group:
                    if witness.kind == "vertex":
                        statistics.counterexamples += 1
                        statistics.lp.cex_rows += 1
                        index = ranking_lp.add_counterexample(witness.vector)
                        vertex_rows.append((witness.vector, index))
                    else:
                        if not witness.vector.is_zero():
                            statistics.rays += 1
                            statistics.lp.cex_rows += 1
                            ranking_lp.add_counterexample(witness.vector)
                            rays_added += 1

            solution = ranking_lp.solve()
            deltas = solution.deltas
            flats = 0
            if solution.all_gamma_zero and all(value == 0 for value in deltas):
                # No quasi ranking function separates any collected
                # generator: the component is finished (λ possibly 0).
                current = solution.ranking
                self._emit("iteration", component, statistics.iterations,
                           counterexamples=len(vertex_rows), rays=rays_added,
                           separable=False)
                break

            current = solution.ranking
            for vector, index in vertex_rows:
                if solution.delta_of(index) == 0:
                    if not vector.is_zero() and not in_span(vector, flat_basis):
                        flat_basis.append(vector)
                        statistics.flat_directions += 1
                        statistics.lp.flat_directions += 1
                        flats += 1
            self._emit("iteration", component, statistics.iterations,
                       counterexamples=len(vertex_rows), rays=rays_added,
                       flat_directions=flats)

        return current, deltas

    # -- Algorithm 2: lexicographic composition ------------------------------------

    def synthesize_lexicographic(
        self,
        template,
        lp_statistics: Optional[LpStatistics] = None,
    ) -> MultidimResult:
        """Run Algorithm 2 over *template* (a lexicographic template).

        One component is synthesised per dimension; before dimension
        ``d`` the transition relation is restricted to the steps on which
        every previous component is constant (``λ_{d'} · u = 0``).  The
        loop stops as soon as a component is strict (success) or when the
        new component is linearly dependent on the previous ones without
        being strict (failure — Theorem 1).
        """
        components: List[MonodimResult] = []
        stacked: List[Vector] = []
        flatness_constraints: List = []
        ranking = LexicographicRankingFunction()

        while True:
            result = self.synthesize_component(
                template,
                extra_constraints=flatness_constraints,
                component=len(components),
                lp_statistics=lp_statistics,
            )
            components.append(result)
            vector = template.stacked_vector(result.ranking)

            if not result.strict:
                if vector.is_zero() or in_span(vector, stacked):
                    # The new component adds nothing: by Theorem 1, no
                    # lexicographic linear ranking function exists
                    # relative to the invariant.
                    return MultidimResult(False, None, components)

            ranking.components.append(result.ranking)
            stacked.append(vector)

            if result.strict:
                return MultidimResult(True, ranking, components)

            if len(ranking.components) >= template.max_dimension:
                return MultidimResult(False, None, components)

            flatness_constraints.append(
                template.flatness_constraint(result.ranking)
            )


# ---------------------------------------------------------------------------
# The eager baselines' shared refinement loop
# ---------------------------------------------------------------------------

Item = TypeVar("Item")
Component = TypeVar("Component")


def eliminate_lexicographic(
    items: Sequence[Item],
    find_component: Callable[
        [List[Item]], Optional[Tuple[Component, Sequence[int]]]
    ],
    max_dimension: int,
) -> Tuple[List[Component], List[Item], bool]:
    """Greedy lexicographic elimination over *items*.

    The loop shape shared by the eager baselines (Rank-style Farkas,
    Ben-Amram & Genaim generator enumeration, per-disjunct DNF
    elimination): call ``find_component(remaining)`` for the next
    lexicographic component and the indices (into *remaining*) it
    strictly decreases, drop those items, and repeat until everything is
    eliminated (``proved``), no component makes progress, or the
    dimension cap is reached.

    Returns ``(components, remaining, proved)``; an empty *items* list is
    trivially proved with no components.
    """
    remaining = list(items)
    components: List[Component] = []
    proved = not remaining
    while remaining and len(components) < max_dimension:
        found = find_component(remaining)
        if found is None:
            break
        component, killed = found
        components.append(component)
        killed_set = set(killed)
        remaining = [
            item
            for index, item in enumerate(remaining)
            if index not in killed_set
        ]
        if not remaining:
            proved = True
            break
    return components, remaining, proved
