"""Branch-and-bound for (mixed) integer linear programs.

The SMT theory layer uses this to produce *integer* models of conjunctions
of linear constraints, which is how the paper handles integer program
variables ("by specifying them as integers in the SMT-solving call") —
no Gomory–Chvátal cut machinery is needed on the synthesis side.

The search is a plain depth-first branch-and-bound on the exact LP
relaxation.  A node branches on the first integer variable with a
fractional relaxation value; pruning uses the incumbent objective when one
exists.  An iteration limit guards against pathological inputs (the
transition systems in the benchmark suites stay far below it).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.lp.problem import LpResult, LpStatus, Sense
from repro.lp.simplex import solve_lp


class BranchAndBoundLimit(Exception):
    """Raised when the node budget of the search is exhausted."""


def _first_fractional(
    assignment: Dict[str, Fraction], integer_variables: Sequence[str]
) -> Optional[str]:
    for name in integer_variables:
        value = assignment.get(name, Fraction(0))
        if value.denominator != 1:
            return name
    return None


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator


def solve_ilp(
    objective: LinExpr,
    constraints: Sequence[Constraint],
    integer_variables: Sequence[str],
    sense: Sense = Sense.MINIMIZE,
    variables: Optional[Sequence[str]] = None,
    max_nodes: int = 2000,
    kernel: str = "exact",
) -> LpResult:
    """Optimise *objective* with the listed variables restricted to integers.

    The result mirrors :func:`repro.lp.simplex.solve_lp`.  When the LP
    relaxation is unbounded the problem is reported unbounded (for the
    formulas produced by the synthesiser an unbounded relaxation direction
    is also an unbounded integer direction, because all data are rational).
    """
    integer_set: List[str] = list(integer_variables)
    nodes_explored = 0

    best: Optional[LpResult] = None

    def better(candidate: Fraction, incumbent: Fraction) -> bool:
        if sense is Sense.MINIMIZE:
            return candidate < incumbent
        return candidate > incumbent

    stack: List[List[Constraint]] = [list(constraints)]
    unbounded_result: Optional[LpResult] = None

    while stack:
        nodes_explored += 1
        if nodes_explored > max_nodes:
            raise BranchAndBoundLimit(
                "branch-and-bound exceeded %d nodes" % max_nodes
            )
        node_constraints = stack.pop()
        relaxation = solve_lp(
            objective, node_constraints, sense, variables, kernel=kernel
        )
        if relaxation.status is LpStatus.INFEASIBLE:
            continue
        if relaxation.status is LpStatus.UNBOUNDED:
            # Remember and keep searching: an integer point must also exist
            # along the ray for the overall problem to be unbounded, but the
            # caller (the SMT optimiser) treats "unbounded relaxation" as
            # "unbounded" and extracts the ray, which is sound for the
            # synthesis algorithm (rays are added as generators).
            unbounded_result = relaxation
            break
        assert relaxation.objective is not None
        if best is not None and not better(
            relaxation.objective, best.objective
        ):
            continue
        branch_variable = _first_fractional(relaxation.assignment, integer_set)
        if branch_variable is None:
            if best is None or better(relaxation.objective, best.objective):
                best = relaxation
            continue
        value = relaxation.assignment[branch_variable]
        floor_value = _floor(value)
        lower_branch = list(node_constraints)
        lower_branch.append(
            LinExpr.variable(branch_variable) <= floor_value
        )
        upper_branch = list(node_constraints)
        upper_branch.append(
            LinExpr.variable(branch_variable) >= floor_value + 1
        )
        stack.append(upper_branch)
        stack.append(lower_branch)

    if unbounded_result is not None:
        return unbounded_result
    if best is None:
        return LpResult(status=LpStatus.INFEASIBLE)
    return best


def find_integer_point(
    constraints: Sequence[Constraint],
    integer_variables: Sequence[str],
    variables: Optional[Sequence[str]] = None,
    max_nodes: int = 2000,
    kernel: str = "exact",
) -> LpResult:
    """Find any integer-feasible point of the constraint system."""
    return solve_ilp(
        LinExpr(),
        constraints,
        integer_variables,
        Sense.MINIMIZE,
        variables,
        max_nodes,
        kernel=kernel,
    )
