"""Exact linear programming over the rationals.

The module provides a two-phase primal simplex working entirely with
:class:`fractions.Fraction`, plus a branch-and-bound wrapper for (mixed)
integer programs.  It is the workhorse behind

* the ``LP(V, Constraints(I))`` instances of Definition 11 of the paper,
* the theory solver of the lazy SMT solver (:mod:`repro.smt`),
* the Farkas-based baseline synthesisers.
"""

from repro.lp.problem import (
    LinearProgram,
    LpResult,
    LpStatus,
    Sense,
)
from repro.lp.simplex import SimplexState, solve_lp
from repro.lp.branch_bound import solve_ilp

__all__ = [
    "LinearProgram",
    "LpResult",
    "LpStatus",
    "Sense",
    "SimplexState",
    "solve_lp",
    "solve_ilp",
]
