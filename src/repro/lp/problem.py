"""Model objects for linear programs.

A :class:`LinearProgram` is a set of non-strict linear constraints over
named rational variables together with an affine objective.  Variables are
*free* (unbounded in both directions) unless a constraint says otherwise —
nonnegativity must be stated explicitly, exactly as in Definition 11 of the
paper where the ``γ_i`` carry explicit ``γ_i ≥ 0`` constraints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr


class Sense(enum.Enum):
    """Optimisation direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class LpStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass
class LpResult:
    """Result of solving a linear program.

    ``assignment`` is a total map over the program's variables when the
    status is OPTIMAL (and a feasible starting point when UNBOUNDED);
    ``ray`` is a direction of unbounded improvement when UNBOUNDED.
    ``pivots`` counts the simplex pivots the solve performed — the cost
    metric the warm-start machinery of :mod:`repro.lp.simplex` reduces.
    """

    status: LpStatus
    assignment: Dict[str, Fraction] = field(default_factory=dict)
    objective: Optional[Fraction] = None
    ray: Dict[str, Fraction] = field(default_factory=dict)
    pivots: int = 0

    @property
    def is_optimal(self) -> bool:
        return self.status is LpStatus.OPTIMAL

    @property
    def is_infeasible(self) -> bool:
        return self.status is LpStatus.INFEASIBLE

    @property
    def is_unbounded(self) -> bool:
        return self.status is LpStatus.UNBOUNDED


class LinearProgram:
    """A linear program under construction."""

    def __init__(
        self,
        sense: Sense = Sense.MINIMIZE,
        objective: Optional[LinExpr] = None,
    ):
        self.sense = sense
        self.objective = objective if objective is not None else LinExpr()
        self.constraints: List[Constraint] = []
        self._declared: List[str] = []

    # -- construction --------------------------------------------------------

    def declare(self, *names: str) -> None:
        """Declare variables so they appear in the solution even if unused."""
        for name in names:
            if name not in self._declared:
                self._declared.append(name)

    def add_constraint(self, constraint: Constraint) -> None:
        """Add a non-strict constraint.

        Strict inequalities are rejected: linear programming optimises over
        closed sets.  Callers that need strictness (the SMT theory solver)
        use the epsilon encoding in :mod:`repro.smt.theory`.
        """
        if constraint.relation is Relation.LT:
            raise ValueError(
                "strict inequality %s cannot be added to an LP" % constraint
            )
        self.constraints.append(constraint)

    def add_constraints(self, constraints: Sequence[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    # -- inspection ----------------------------------------------------------

    def variables(self) -> List[str]:
        """All variables, declared ones first, then in order of appearance."""
        ordered: List[str] = list(self._declared)
        seen = set(ordered)
        for constraint in self.constraints:
            for name in sorted(constraint.variables()):
                if name not in seen:
                    seen.add(name)
                    ordered.append(name)
        for name in sorted(self.objective.variables()):
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return ordered

    @property
    def num_rows(self) -> int:
        """Number of constraints — the "lines" statistic of Table 1."""
        return len(self.constraints)

    @property
    def num_cols(self) -> int:
        """Number of variables — the "columns" statistic of Table 1."""
        return len(self.variables())

    def solve(self, kernel: str = "exact") -> LpResult:
        """Solve with the exact simplex (convenience wrapper).

        ``kernel`` selects the row representation of the tableau (see
        :data:`repro.linalg.packed.KERNELS`); results are identical.
        """
        from repro.lp.simplex import solve_lp

        return solve_lp(
            self.objective,
            self.constraints,
            sense=self.sense,
            variables=self.variables(),
            kernel=kernel,
        )
