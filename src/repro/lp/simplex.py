"""Two-phase primal simplex over exact rationals.

The implementation favours clarity and exactness over raw speed: every
pivot is performed with :class:`fractions.Fraction`, Bland's anti-cycling
rule is used throughout, and infeasibility / unboundedness are reported
with certificates (a feasible point and an improving ray respectively).

The LPs produced by the ranking-function synthesiser are tiny (the whole
point of the paper is that the lazy construction keeps them at a handful of
rows and columns), so a dense tableau is entirely adequate.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.problem import LpResult, LpStatus, Sense


class _StandardForm:
    """The LP rewritten as ``min c·y  s.t.  A y = b, y ≥ 0, b ≥ 0``.

    Free original variables are split into a positive and a negative part;
    slack variables turn inequalities into equations.  The mapping back to
    the original variables is kept so that solutions and rays can be
    reported in user terms.
    """

    def __init__(
        self,
        objective: LinExpr,
        constraints: Sequence[Constraint],
        variables: Sequence[str],
    ):
        self.original_variables = list(variables)
        # Column layout: for every original variable two columns (x+, x-),
        # then one slack column per inequality row.
        self.plus_index: Dict[str, int] = {}
        self.minus_index: Dict[str, int] = {}
        column = 0
        for name in self.original_variables:
            self.plus_index[name] = column
            self.minus_index[name] = column + 1
            column += 2
        self.num_structural = column

        rows: List[List[Fraction]] = []
        rhs: List[Fraction] = []
        slack_count = 0
        for constraint in constraints:
            if constraint.relation is Relation.LT:
                raise ValueError("strict inequalities are not LP constraints")
            coefficients = [Fraction(0)] * self.num_structural
            for name, value in constraint.expr.terms.items():
                if name not in self.plus_index:
                    raise ValueError(
                        "constraint mentions undeclared variable %r" % name
                    )
                coefficients[self.plus_index[name]] += value
                coefficients[self.minus_index[name]] -= value
            bound = -constraint.expr.constant_term
            rows.append(coefficients)
            rhs.append(bound)
            if constraint.relation is Relation.LE:
                slack_count += 1

        self.num_slacks = slack_count
        self.num_columns = self.num_structural + slack_count

        # Second pass: install slack columns and normalise signs.  A row
        # whose slack column keeps coefficient +1 after sign normalisation
        # can use that slack as its initial basic variable, avoiding an
        # artificial column (and the phase-1 pivots to drive it out).
        slack_position = 0
        self.matrix: List[List[Fraction]] = []
        self.rhs: List[Fraction] = []
        self.basis_candidate: List[Optional[int]] = []
        for constraint, row, bound in zip(constraints, rows, rhs):
            full_row = row + [Fraction(0)] * slack_count
            slack_column = None
            if constraint.relation is Relation.LE:
                slack_column = self.num_structural + slack_position
                full_row[slack_column] = Fraction(1)
                slack_position += 1
            if bound < 0:
                full_row = [-value for value in full_row]
                bound = -bound
                slack_column = None
            self.matrix.append(full_row)
            self.rhs.append(bound)
            self.basis_candidate.append(slack_column)

        # Objective over the standard columns (constant handled separately).
        self.cost = [Fraction(0)] * self.num_columns
        for name, value in objective.terms.items():
            if name not in self.plus_index:
                # A variable that only appears in the objective is free and
                # unconstrained; give it columns on the fly.
                raise ValueError(
                    "objective mentions undeclared variable %r" % name
                )
            self.cost[self.plus_index[name]] += value
            self.cost[self.minus_index[name]] -= value
        self.objective_constant = objective.constant_term

    def to_original(self, values: Sequence[Fraction]) -> Dict[str, Fraction]:
        """Map standard-form column values back to the original variables."""
        result: Dict[str, Fraction] = {}
        for name in self.original_variables:
            result[name] = (
                values[self.plus_index[name]] - values[self.minus_index[name]]
            )
        return result


class _Tableau:
    """A dense simplex tableau with an explicit basis.

    The reduced-cost row is maintained incrementally across pivots (it is
    eliminated against the basic columns exactly like an ordinary row),
    which keeps each pivot at ``O(rows × cols)`` work.
    """

    def __init__(
        self,
        matrix: List[List[Fraction]],
        rhs: List[Fraction],
        cost: List[Fraction],
    ):
        self.matrix = [list(row) for row in matrix]
        self.rhs = list(rhs)
        self.cost = list(cost)
        self.num_rows = len(matrix)
        self.num_cols = len(cost)
        self.basis: List[int] = []
        self._cost_row: List[Fraction] = list(cost)
        self._cost_rhs = Fraction(0)  # equals minus the current objective

    def install_cost(self, cost: List[Fraction]) -> None:
        """Install a new objective and price it out against the basis."""
        self.cost = list(cost)
        self._cost_row = list(cost)
        self._cost_rhs = Fraction(0)
        for row_index, basic_col in enumerate(self.basis):
            factor = self._cost_row[basic_col]
            if factor == 0:
                continue
            row = self.matrix[row_index]
            self._cost_row = [
                value - factor * entry
                for value, entry in zip(self._cost_row, row)
            ]
            self._cost_rhs -= factor * self.rhs[row_index]

    # -- pivoting ------------------------------------------------------------

    def pivot(self, row: int, col: int) -> None:
        """Pivot so that column *col* becomes basic in row *row*."""
        pivot_value = self.matrix[row][col]
        if pivot_value == 0:
            raise ValueError("pivot on a zero element")
        inverse = Fraction(1) / pivot_value
        self.matrix[row] = [value * inverse for value in self.matrix[row]]
        self.rhs[row] *= inverse
        pivot_row = self.matrix[row]
        for other in range(self.num_rows):
            if other == row:
                continue
            factor = self.matrix[other][col]
            if factor == 0:
                continue
            self.matrix[other] = [
                value - factor * pivot_entry
                for value, pivot_entry in zip(self.matrix[other], pivot_row)
            ]
            self.rhs[other] -= factor * self.rhs[row]
        factor = self._cost_row[col]
        if factor != 0:
            self._cost_row = [
                value - factor * pivot_entry
                for value, pivot_entry in zip(self._cost_row, pivot_row)
            ]
            self._cost_rhs -= factor * self.rhs[row]
        self.basis[row] = col

    def reduced_costs(self) -> List[Fraction]:
        """Reduced cost of every column for the current basis."""
        return self._cost_row

    def objective_value(self) -> Fraction:
        return -self._cost_rhs

    def column_values(self) -> List[Fraction]:
        values = [Fraction(0)] * self.num_cols
        for row, col in enumerate(self.basis):
            values[col] = self.rhs[row]
        return values

    # -- the simplex loop ------------------------------------------------------

    def optimize(self, allowed_columns: Optional[set] = None) -> Tuple[str, Optional[int]]:
        """Run the primal simplex to optimality.

        Returns ``("optimal", None)`` or ``("unbounded", entering_column)``.
        Columns not in *allowed_columns* (when given) are never entered —
        this is how phase 2 keeps the artificial columns out of the basis.
        """
        while True:
            reduced = self.reduced_costs()
            entering = None
            for col in range(self.num_cols):
                if allowed_columns is not None and col not in allowed_columns:
                    continue
                if reduced[col] < 0:
                    entering = col  # Bland: smallest index
                    break
            if entering is None:
                return ("optimal", None)
            leaving = None
            best_ratio: Optional[Fraction] = None
            for row in range(self.num_rows):
                coefficient = self.matrix[row][entering]
                if coefficient > 0:
                    ratio = self.rhs[row] / coefficient
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (
                            ratio == best_ratio
                            and self.basis[row] < self.basis[leaving]
                        )
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                return ("unbounded", entering)
            self.pivot(leaving, entering)

    def ray_direction(self, entering: int) -> List[Fraction]:
        """The improving ray associated with an unbounded entering column."""
        direction = [Fraction(0)] * self.num_cols
        direction[entering] = Fraction(1)
        for row, basic_col in enumerate(self.basis):
            direction[basic_col] = -self.matrix[row][entering]
        return direction


def solve_lp(
    objective: LinExpr,
    constraints: Sequence[Constraint],
    sense: Sense = Sense.MINIMIZE,
    variables: Optional[Sequence[str]] = None,
) -> LpResult:
    """Solve ``optimise objective subject to constraints`` exactly.

    ``variables`` fixes the set (and order) of variables appearing in the
    result; when omitted it is inferred from the constraints and objective.
    """
    if variables is None:
        names = set(objective.variables())
        for constraint in constraints:
            names |= set(constraint.variables())
        variables = sorted(names)

    minimize_objective = (
        objective if sense is Sense.MINIMIZE else -objective
    )
    standard = _StandardForm(minimize_objective, constraints, variables)

    num_rows = len(standard.matrix)
    num_cols = standard.num_columns

    # ---- Phase 1: find a basic feasible solution --------------------------
    # Rows whose slack can serve as the initial basic variable need no
    # artificial column; only the remaining rows get one.
    artificial_start = num_cols
    needy_rows = [
        row_index
        for row_index in range(num_rows)
        if standard.basis_candidate[row_index] is None
    ]
    artificial_of_row = {
        row_index: artificial_start + position
        for position, row_index in enumerate(needy_rows)
    }
    num_artificials = len(needy_rows)
    phase1_matrix = []
    for row_index, row in enumerate(standard.matrix):
        extension = [Fraction(0)] * num_artificials
        if row_index in artificial_of_row:
            extension[artificial_of_row[row_index] - artificial_start] = Fraction(1)
        phase1_matrix.append(row + extension)
    phase1_cost = [Fraction(0)] * num_cols + [Fraction(1)] * num_artificials
    tableau = _Tableau(phase1_matrix, standard.rhs, phase1_cost)
    tableau.basis = [
        artificial_of_row.get(row_index, standard.basis_candidate[row_index])
        for row_index in range(num_rows)
    ]
    if needy_rows:
        tableau.install_cost(phase1_cost)
        status, _ = tableau.optimize()
        assert status == "optimal", "phase 1 is always bounded below by zero"
        if tableau.objective_value() > 0:
            return LpResult(status=LpStatus.INFEASIBLE)

    # Drive any leftover artificial variables out of the basis.
    for row in range(num_rows):
        if tableau.basis[row] >= artificial_start:
            replacement = None
            for col in range(num_cols):
                if tableau.matrix[row][col] != 0:
                    replacement = col
                    break
            if replacement is not None:
                tableau.pivot(row, replacement)
            # Otherwise the row is redundant (all-zero over real columns);
            # the artificial stays basic at value zero, which is harmless
            # as long as it can never re-enter with a non-zero value.

    # ---- Phase 2: optimise the real objective -----------------------------
    tableau.install_cost(list(standard.cost) + [Fraction(0)] * num_artificials)
    allowed = set(range(num_cols))
    status, entering = tableau.optimize(allowed_columns=allowed)

    values = tableau.column_values()[:num_cols]
    assignment = standard.to_original(values)

    if status == "unbounded":
        direction = tableau.ray_direction(entering)[:num_cols]
        ray = standard.to_original(direction)
        return LpResult(
            status=LpStatus.UNBOUNDED,
            assignment=assignment,
            ray=ray,
        )

    objective_value = tableau.objective_value() + standard.objective_constant
    if sense is Sense.MAXIMIZE:
        objective_value = -objective_value
    return LpResult(
        status=LpStatus.OPTIMAL,
        assignment=assignment,
        objective=objective_value,
    )


def check_feasibility(
    constraints: Sequence[Constraint],
    variables: Optional[Sequence[str]] = None,
) -> LpResult:
    """Feasibility check: solve with the zero objective."""
    return solve_lp(LinExpr(), constraints, Sense.MINIMIZE, variables)
