"""Two-phase primal simplex over exact rationals, with warm restarts.

The implementation favours clarity and exactness over raw speed: every
pivot is performed with :class:`fractions.Fraction`, Bland's anti-cycling
rule is used throughout, and infeasibility / unboundedness are reported
with certificates (a feasible point and an improving ray respectively).

The LPs produced by the ranking-function synthesiser are tiny (the whole
point of the paper is that the lazy construction keeps them at a handful of
rows and columns), so a dense tableau is entirely adequate.

Two entry points are provided:

* :func:`solve_lp` — the one-shot solver (build, two-phase, extract);
* :class:`SimplexState` — a *persistent* LP that keeps the tableau and the
  optimal basis alive between solves.  Adding a constraint re-solves with
  dual-simplex pivots from the previous optimal basis, and changing the
  objective re-prices and re-optimises with primal pivots; both are far
  cheaper than a cold two-phase solve.  This is the engine behind the
  incremental ``LP(V, Constraints(I))`` of the counterexample loop, where
  every iteration appends one generator row to an already-solved instance.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.linalg.packed import (
    count_row_pivot,
    count_stacked_pivot,
    pack_row,
    resolve_kernel,
)
from repro.linalg.sparse import SparseRow
from repro.linalg.stacked import StackedTableau
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.problem import LpResult, LpStatus, Sense

_ZERO = Fraction(0)
_ONE = Fraction(1)

#: Sentinel column fusing the right-hand side into each tableau row (and
#: minus the current objective into the cost row).  It sorts before every
#: real column, and a single fused row operation updates coefficients and
#: rhs together.
_RHS = -1


def _spread_terms(
    terms: Dict[str, Fraction],
    plus_index: Dict[str, int],
    minus_index: Dict[str, int],
    target: List[Fraction],
) -> None:
    """Add a LinExpr's coefficients into standard-form columns.

    The single place that knows the column convention: every variable has
    a ``+`` column, and free (split) variables additionally have a ``-``
    column carrying the negated coefficient.  Both the cold
    (:class:`_StandardForm`) and warm (:class:`SimplexState`) paths build
    rows and cost vectors through this helper so they cannot diverge.
    """
    for name, value in terms.items():
        target[plus_index[name]] += value
        if name in minus_index:
            target[minus_index[name]] -= value


def _sparse_terms(
    terms: Dict[str, Fraction],
    plus_index: Dict[str, int],
    minus_index: Dict[str, int],
) -> Dict[int, Fraction]:
    """A LinExpr's coefficients as a standard-form column → value mapping.

    The sparse counterpart of :func:`_spread_terms`, for rows that go
    straight into the sparse tableau.
    """
    entries: Dict[int, Fraction] = {}
    for name, value in terms.items():
        column = plus_index[name]
        entries[column] = entries.get(column, _ZERO) + value
        if name in minus_index:
            column = minus_index[name]
            entries[column] = entries.get(column, _ZERO) - value
    return entries


def _column_value(
    name: str,
    plus_index: Dict[str, int],
    minus_index: Dict[str, int],
    values: Sequence[Fraction],
) -> Fraction:
    """Recover an original variable's value from its column(s)."""
    value = values[plus_index[name]]
    if name in minus_index:
        value -= values[minus_index[name]]
    return value


class _StandardForm:
    """The LP rewritten as ``min c·y  s.t.  A y = b, y ≥ 0, b ≥ 0``.

    Free original variables are split into a positive and a negative part;
    variables listed in *nonnegative* are known to satisfy ``x ≥ 0`` and get
    a single column (this keeps the incremental ranking LPs at one column
    per γ/δ instead of two).  Slack variables turn inequalities into
    equations.  The mapping back to the original variables is kept so that
    solutions and rays can be reported in user terms.
    """

    def __init__(
        self,
        objective: LinExpr,
        constraints: Sequence[Constraint],
        variables: Sequence[str],
        nonnegative: FrozenSet[str] = frozenset(),
    ):
        self.original_variables = list(variables)
        # Column layout: for every original variable two columns (x+, x-)
        # — or a single column when it is known nonnegative — then one
        # slack column per inequality row.
        self.plus_index: Dict[str, int] = {}
        self.minus_index: Dict[str, int] = {}
        column = 0
        for name in self.original_variables:
            self.plus_index[name] = column
            column += 1
            if name not in nonnegative:
                self.minus_index[name] = column
                column += 1
        self.num_structural = column

        rows: List[List[Fraction]] = []
        rhs: List[Fraction] = []
        slack_count = 0
        for constraint in constraints:
            if constraint.relation is Relation.LT:
                raise ValueError("strict inequalities are not LP constraints")
            terms = constraint.expr.terms
            for name in terms:
                if name not in self.plus_index:
                    raise ValueError(
                        "constraint mentions undeclared variable %r" % name
                    )
            coefficients = [_ZERO] * self.num_structural
            _spread_terms(terms, self.plus_index, self.minus_index, coefficients)
            bound = -constraint.expr.constant_term
            rows.append(coefficients)
            rhs.append(bound)
            if constraint.relation is Relation.LE:
                slack_count += 1

        self.num_slacks = slack_count
        self.num_columns = self.num_structural + slack_count

        # Second pass: install slack columns and normalise signs.  A row
        # whose slack column keeps coefficient +1 after sign normalisation
        # can use that slack as its initial basic variable, avoiding an
        # artificial column (and the phase-1 pivots to drive it out).
        slack_position = 0
        self.matrix: List[List[Fraction]] = []
        self.rhs: List[Fraction] = []
        self.basis_candidate: List[Optional[int]] = []
        for constraint, row, bound in zip(constraints, rows, rhs):
            full_row = row + [_ZERO] * slack_count
            slack_column = None
            if constraint.relation is Relation.LE:
                slack_column = self.num_structural + slack_position
                full_row[slack_column] = _ONE
                slack_position += 1
            if bound < 0:
                full_row = [-value for value in full_row]
                bound = -bound
                slack_column = None
            self.matrix.append(full_row)
            self.rhs.append(bound)
            self.basis_candidate.append(slack_column)

        # Objective over the standard columns (constant handled separately).
        for name in objective.terms:
            if name not in self.plus_index:
                raise ValueError(
                    "objective mentions undeclared variable %r" % name
                )
        self.cost = [_ZERO] * self.num_columns
        _spread_terms(objective.terms, self.plus_index, self.minus_index, self.cost)
        self.objective_constant = objective.constant_term

    def to_original(self, values: Sequence[Fraction]) -> Dict[str, Fraction]:
        """Map standard-form column values back to the original variables."""
        return {
            name: _column_value(name, self.plus_index, self.minus_index, values)
            for name in self.original_variables
        }


class _Tableau:
    """A simplex tableau over sparse scaled-integer rows.

    Every row is a :class:`~repro.linalg.sparse.SparseRow` with the
    right-hand side fused in at the :data:`_RHS` sentinel column, so one
    fused row operation updates coefficients and rhs together and the
    whole pivot stays in machine integers (one gcd pass per produced
    row instead of one per entry).  The reduced-cost row is maintained
    incrementally across pivots exactly like an ordinary row, with minus
    the current objective living in its fused :data:`_RHS` slot.

    Basic columns keep exact identity structure (value 1 in their own
    row, 0 elsewhere), and all pivot decisions (Bland's rule, ratio
    tests) compare exact values, so the pivot *sequence* — and therefore
    every pivot counter the warm-start machinery reports — is identical
    to the dense-``Fraction`` tableau this replaces.

    With ``kernel="packed"`` the :class:`_StackedTableau` subclass holds
    every row in one contiguous int64 matrix
    (:class:`~repro.linalg.stacked.StackedTableau`): a pivot runs as a
    single fused broadcast sweep over all affected rows, and the
    Bland/ratio scans gather their per-row column values as plain
    slices.  Rows whose values outgrow int64 transparently fall back to
    exact :class:`SparseRow` arithmetic (see the overflow contract in
    :mod:`repro.linalg.stacked`), so the pivot sequence is bit-identical
    to the exact kernel's in either mode.
    """

    kernel = "exact"

    def __init__(
        self,
        rows: List[SparseRow],
        num_cols: int,
        cost: SparseRow,
    ):
        self.rows = rows
        self.num_rows = len(rows)
        self.num_cols = num_cols
        self.basis: List[int] = []
        self._cost = cost  # fused: value at _RHS is minus the objective
        self.pivot_count = 0
        #: One-shot gather cache: the ratio test hands its entering-column
        #: sweep to the pivot that immediately follows (rows are unchanged
        #: in between), halving the per-pivot column gathers.
        self._gathered: Optional[Tuple[int, List[int]]] = None

    def _pack(self, row: SparseRow):
        """Hook for the packed subclass; the exact tableau keeps rows as-is."""
        return row

    def install_cost(self, cost: List[Fraction]) -> None:
        """Install a new objective and price it out against the basis."""
        priced = self._pack(SparseRow.from_pairs(enumerate(cost)))
        for row_index, basic_col in enumerate(self.basis):
            if priced.numerator_at(basic_col):
                priced = priced.eliminate(basic_col, self.rows[row_index])
        self._cost = priced

    def extend_cost(self, entries: Dict[int, Fraction]) -> None:
        """Add objective terms on currently-*nonbasic* columns to the cost row.

        For a nonbasic column ``j`` the reduced cost is ``c_j`` minus a
        combination of *basic* costs; changing ``c_j`` alone therefore
        shifts its reduced cost by exactly the new term while every other
        reduced cost — and the objective value, since nonbasic columns
        sit at zero — stays put.  This is the cheap per-batch repricing
        the warm path uses when an iteration only appended fresh columns
        (the δ of new counterexamples); callers must verify the columns
        are nonbasic first.
        """
        self._cost = self._cost + self._pack(SparseRow.from_dict(entries))

    # -- incremental growth ----------------------------------------------------

    def append_column(self, cost: Fraction = _ZERO) -> int:
        """Append an all-zero column (a variable absent from every row).

        Sparse rows store nothing for absent columns, so only the column
        count moves; the new column's reduced cost under the current
        basis is simply its objective coefficient.
        """
        self.num_cols += 1
        column = self.num_cols - 1
        if cost:
            self._cost = self._cost + self._pack(
                SparseRow.from_pairs([(column, cost)])
            )
        return column

    def append_row(self, row: SparseRow, basic_column: int) -> None:
        """Append a row (rhs fused) whose *basic_column* entry is 1."""
        self.rows.append(row)
        self.basis.append(basic_column)
        self.num_rows += 1
        self._gathered = None  # the cached sweep no longer covers every row

    def eliminate_against_basis(self, row: SparseRow) -> SparseRow:
        """Express a fresh fused row in terms of the current basis.

        Each basic column has identity structure (1 in its own row, 0 in
        every other row and in every other basic column), so one pass over
        the basis suffices.
        """
        for row_index, basic_col in enumerate(self.basis):
            if row.numerator_at(basic_col):
                row = row.eliminate(basic_col, self.rows[row_index])
        return row

    # -- pivoting ------------------------------------------------------------

    def _column(self, col: int) -> List[int]:
        """Numerators of column *col* across every row, one batched sweep."""
        return [current.numerator_at(col) for current in self.rows]

    def row_entries(self, row: int):
        """Row *row*'s nonzero ``(column, numerator)`` pairs, ascending."""
        return self.rows[row].iter_scaled()

    def pivot(self, row: int, col: int) -> None:
        """Pivot so that column *col* becomes basic in row *row*.

        The pivot column is gathered once across the tableau, then every
        row with a nonzero entry is eliminated through one fused merge
        (the gathered value feeds the merge directly, so no row is asked
        for the same entry twice).
        """
        cached = self._gathered
        self._gathered = None
        # The cached sweep predates the pivot row's normalisation, but the
        # pivot row is skipped below, so only the unchanged rows are read.
        column = cached[1] if cached and cached[0] == col else self._column(col)
        pivot_row = self.rows[row].pivot_normalized(col)
        self.rows[row] = pivot_row
        p_c = pivot_row.numerator_at(col)
        for other in range(self.num_rows):
            s_c = column[other]
            if other != row and s_c:
                current = self.rows[other]
                self.rows[other] = current._merge(
                    pivot_row, p_c, -s_c, current.denominator * p_c
                )
        s_c = self._cost.numerator_at(col)
        if s_c:
            self._cost = self._cost._merge(
                pivot_row, p_c, -s_c, self._cost.denominator * p_c
            )
        self.basis[row] = col
        self.pivot_count += 1
        count_row_pivot()

    def reduced_cost_at(self, col: int) -> Fraction:
        """Reduced cost of one column for the current basis."""
        return self._cost.get(col)

    def objective_value(self) -> Fraction:
        return -self._cost.get(_RHS)

    def column_values(self) -> List[Fraction]:
        values = [_ZERO] * self.num_cols
        for row, col in enumerate(self.basis):
            values[col] = self.rows[row].get(_RHS)
        return values

    # -- the simplex loops -----------------------------------------------------

    def optimize(self, allowed_columns: Optional[set] = None) -> Tuple[str, Optional[int]]:
        """Run the primal simplex to optimality.

        Returns ``("optimal", None)`` or ``("unbounded", entering_column)``.
        Columns not in *allowed_columns* (when given) are never entered —
        this is how phase 2 keeps the artificial columns out of the basis.
        """
        while True:
            # Bland: smallest column index with a negative reduced cost.
            # The sparse cost row iterates in index order and absent
            # entries are zero, so the first negative stored numerator
            # (the denominator is positive) is the entering column.
            entering = None
            for col, numerator in self._cost.iter_scaled():
                if col == _RHS or numerator >= 0:
                    continue
                if allowed_columns is not None and col not in allowed_columns:
                    continue
                entering = col
                break
            if entering is None:
                return ("optimal", None)
            leaving = self._ratio_test(entering)
            if leaving is None:
                return ("unbounded", entering)
            self.pivot(leaving, entering)

    def _ratio_test(self, entering: int) -> Optional[int]:
        """Bland ratio test: the leaving row for *entering*, or ``None``.

        One batched sweep gathers every row's entering-column coefficient
        and fused rhs (an O(1) slot read per row under the packed
        kernel), then only the rows with a positive coefficient survive
        into the exact cross-multiplied comparison.  Within one row, rhs
        and coefficient share the row denominator, so the ratio is the
        numerator quotient and cross multiplication compares rows
        exactly — the selected pivot is identical in both kernels.
        """
        rows = self.rows
        column = self._column(entering)
        self._gathered = (entering, column)
        leaving = None
        best_rhs = best_coefficient = 0
        for row, coefficient in enumerate(column):
            if coefficient <= 0:
                continue
            # Lazy rhs read — only rows surviving the sign test pay it.
            rhs = rows[row].numerator_at(_RHS)
            if leaving is None:
                take = True
            else:
                lhs = rhs * best_coefficient
                rhs_cross = best_rhs * coefficient
                take = lhs < rhs_cross or (
                    lhs == rhs_cross
                    and self.basis[row] < self.basis[leaving]
                )
            if take:
                leaving = row
                best_rhs = rhs
                best_coefficient = coefficient
        return leaving

    def dual_optimize(self, allowed_columns: Optional[set] = None) -> str:
        """Run the dual simplex until the basis is primal feasible.

        Requires the current basis to be *dual* feasible (all reduced costs
        of allowed columns nonnegative) — which is exactly the state left
        behind by a previous optimal solve after new rows are appended.
        Returns ``"optimal"`` or ``"infeasible"`` (dual unbounded).  Bland's
        dual rule (smallest basic index leaves, smallest-index minimal
        ratio enters) rules out cycling.
        """
        while True:
            # Batched leaving-row sweep: one pass gathers every row's
            # fused-rhs sign (an O(1) slot read under the packed kernel),
            # then Bland's dual rule picks the smallest basic index among
            # the negative ones.
            basis = self.basis
            negative = [
                row
                for row, rhs in enumerate(self._column(_RHS))
                if rhs < 0
            ]
            if not negative:
                return "optimal"
            leaving = min(negative, key=basis.__getitem__)
            # The entering ratio is reduced[col] / (-coefficient); the cost
            # and pivot row denominators are constant across candidates, so
            # comparing numerator cross-products picks the same column.
            entering = None
            best_cost = best_coefficient = 0
            for col, coefficient in self.row_entries(leaving):
                if col == _RHS or coefficient >= 0:
                    continue
                if allowed_columns is not None and col not in allowed_columns:
                    continue
                cost = self._cost.numerator_at(col)
                if entering is None or (
                    cost * -best_coefficient < best_cost * -coefficient
                ):
                    entering = col
                    best_cost = cost
                    best_coefficient = coefficient
            if entering is None:
                return "infeasible"
            self.pivot(leaving, entering)

    def ray_direction(self, entering: int) -> List[Fraction]:
        """The improving ray associated with an unbounded entering column."""
        direction = [_ZERO] * self.num_cols
        direction[entering] = _ONE
        for row, basic_col in enumerate(self.basis):
            direction[basic_col] = -self.rows[row].get(entering)
        return direction


class _StackedTableau(_Tableau):
    """The packed kernel: rows live in one stacked int64 matrix.

    Delegates all row storage to
    :class:`~repro.linalg.stacked.StackedTableau` so that a pivot is one
    fused broadcast sweep and the Bland/ratio/dual scans gather their
    per-row values as plain slices.  The cost row stays a
    :class:`~repro.linalg.packed.PackedRow` (or an exact ``SparseRow``
    after an overflow) and merges against zero-copy views of the matrix
    rows.  The inherited ``optimize``/``dual_optimize`` loops run
    unchanged — only the storage-touching methods are overridden — and
    every pivot decision compares exact values, so statuses, optima and
    pivot sequences are bit-identical to the exact tableau's.
    """

    kernel = "packed"

    def __init__(
        self,
        rows: List[SparseRow],
        num_cols: int,
        cost: SparseRow,
    ):
        width = num_cols + 1  # one slot per column plus the _RHS sentinel
        stacked = StackedTableau(width)
        for row in rows:
            stacked.append_row(row)
        self.stacked = stacked
        self.rows = None  # all row storage lives in self.stacked
        self.num_rows = stacked.num_rows
        self.num_cols = num_cols
        self.basis = []
        self._cost = pack_row(cost, width)
        self.pivot_count = 0
        self._gathered = None

    def _pack(self, row: SparseRow):
        return pack_row(row, self.num_cols + 1)

    def install_cost(self, cost: List[Fraction]) -> None:
        priced = self._pack(SparseRow.from_pairs(enumerate(cost)))
        stacked = self.stacked
        for row_index, basic_col in enumerate(self.basis):
            if priced.numerator_at(basic_col):
                priced = priced.eliminate(
                    basic_col, stacked.row_view(row_index)
                )
        self._cost = priced

    def append_column(self, cost: Fraction = _ZERO) -> int:
        column = super().append_column(cost)
        self.stacked.ensure_width(self.num_cols + 1)
        return column

    def append_row(self, row: SparseRow, basic_column: int) -> None:
        self.stacked.append_row(row)
        self.basis.append(basic_column)
        self.num_rows += 1
        self._gathered = None

    def eliminate_against_basis(self, row: SparseRow) -> SparseRow:
        stacked = self.stacked
        for row_index, basic_col in enumerate(self.basis):
            if row.numerator_at(basic_col):
                row = row.eliminate(basic_col, stacked.row_view(row_index))
        return row

    def _column(self, col: int) -> List[int]:
        return self.stacked.column(col)

    def row_entries(self, row: int):
        return self.stacked.row_entries(row)

    def pivot(self, row: int, col: int) -> None:
        cached = self._gathered
        self._gathered = None
        column = cached[1] if cached and cached[0] == col else self._column(col)
        self.stacked.pivot(row, col, column)
        s_c = self._cost.numerator_at(col)
        if s_c:
            pivot_view = self.stacked.row_view(row)
            p_c = pivot_view.numerator_at(col)
            result = self._cost._merge(
                pivot_view, p_c, -s_c, self._cost.denominator * p_c
            )
            self._cost = self._pack(result)
        self.basis[row] = col
        self.pivot_count += 1
        count_stacked_pivot()

    def _ratio_test(self, entering: int) -> Optional[int]:
        column = self._column(entering)
        self._gathered = (entering, column)
        rhs_column = self.stacked.column(_RHS)
        leaving = None
        best_rhs = best_coefficient = 0
        for row, coefficient in enumerate(column):
            if coefficient <= 0:
                continue
            rhs = rhs_column[row]
            if leaving is None:
                take = True
            else:
                lhs = rhs * best_coefficient
                rhs_cross = best_rhs * coefficient
                take = lhs < rhs_cross or (
                    lhs == rhs_cross
                    and self.basis[row] < self.basis[leaving]
                )
            if take:
                leaving = row
                best_rhs = rhs
                best_coefficient = coefficient
        return leaving

    def column_values(self) -> List[Fraction]:
        values = [_ZERO] * self.num_cols
        stacked = self.stacked
        for row, col in enumerate(self.basis):
            values[col] = stacked.value_at(row, _RHS)
        return values

    def ray_direction(self, entering: int) -> List[Fraction]:
        direction = [_ZERO] * self.num_cols
        direction[entering] = _ONE
        stacked = self.stacked
        for row, basic_col in enumerate(self.basis):
            direction[basic_col] = -stacked.value_at(row, entering)
        return direction


def _make_tableau(
    rows: List[SparseRow],
    num_cols: int,
    cost: SparseRow,
    kernel: str,
) -> _Tableau:
    """Build the tableau variant for an already-resolved *kernel*."""
    if kernel == "packed":
        return _StackedTableau(rows, num_cols, cost)
    return _Tableau(rows, num_cols, cost)


def _two_phase(
    standard: _StandardForm, kernel: str = "exact"
) -> Tuple[bool, _Tableau, int]:
    """Phase 1: find a basic feasible solution for *standard*.

    Returns ``(feasible, tableau, artificial_start)``; on success the
    tableau's basis is primal feasible and every artificial column is
    either out of the basis or stuck at zero in a redundant row.
    """
    num_rows = len(standard.matrix)
    num_cols = standard.num_columns

    # Rows whose slack can serve as the initial basic variable need no
    # artificial column; only the remaining rows get one.
    artificial_start = num_cols
    needy_rows = [
        row_index
        for row_index in range(num_rows)
        if standard.basis_candidate[row_index] is None
    ]
    artificial_of_row = {
        row_index: artificial_start + position
        for position, row_index in enumerate(needy_rows)
    }
    rows: List[SparseRow] = []
    for row_index, row in enumerate(standard.matrix):
        pairs = [(_RHS, standard.rhs[row_index])]
        pairs.extend(enumerate(row))
        if row_index in artificial_of_row:
            pairs.append((artificial_of_row[row_index], _ONE))
        rows.append(SparseRow.from_pairs(pairs))
    phase1_cost = [
        (artificial_start + position, _ONE)
        for position in range(len(needy_rows))
    ]
    tableau = _make_tableau(rows, num_cols + len(needy_rows),
                            SparseRow.from_pairs(phase1_cost), kernel)
    tableau.basis = [
        artificial_of_row.get(row_index, standard.basis_candidate[row_index])
        for row_index in range(num_rows)
    ]
    if needy_rows:
        tableau.install_cost(
            [_ZERO] * num_cols + [_ONE] * len(needy_rows)
        )
        status, _ = tableau.optimize()
        assert status == "optimal", "phase 1 is always bounded below by zero"
        if tableau.objective_value() > 0:
            return (False, tableau, artificial_start)

    # Drive any leftover artificial variables out of the basis.
    for row in range(num_rows):
        if tableau.basis[row] >= artificial_start:
            replacement = None
            for col, _ in tableau.row_entries(row):
                if 0 <= col < num_cols:
                    replacement = col
                    break
            if replacement is not None:
                tableau.pivot(row, replacement)
            # Otherwise the row is redundant (all-zero over real columns);
            # the artificial stays basic at value zero, which is harmless
            # as long as it can never re-enter with a non-zero value.

    return (True, tableau, artificial_start)


def solve_lp(
    objective: LinExpr,
    constraints: Sequence[Constraint],
    sense: Sense = Sense.MINIMIZE,
    variables: Optional[Sequence[str]] = None,
    nonnegative: FrozenSet[str] = frozenset(),
    kernel: str = "exact",
) -> LpResult:
    """Solve ``optimise objective subject to constraints`` exactly.

    ``variables`` fixes the set (and order) of variables appearing in the
    result; when omitted it is inferred from the constraints and objective.
    Variables in ``nonnegative`` are treated as implicitly ``≥ 0`` (single
    standard-form column instead of a split pair).  ``kernel`` selects the
    row representation (see :data:`repro.linalg.packed.KERNELS`); the
    result — statuses, optima, pivot counts — is identical either way.
    """
    if variables is None:
        names = set(objective.variables())
        for constraint in constraints:
            names |= set(constraint.variables())
        variables = sorted(names)

    minimize_objective = (
        objective if sense is Sense.MINIMIZE else -objective
    )
    standard = _StandardForm(
        minimize_objective, constraints, variables, nonnegative
    )

    num_cols = standard.num_columns
    kernel = resolve_kernel(kernel, num_cols + 1)
    feasible, tableau, artificial_start = _two_phase(standard, kernel)
    if not feasible:
        return LpResult(status=LpStatus.INFEASIBLE, pivots=tableau.pivot_count)

    # ---- Phase 2: optimise the real objective -----------------------------
    num_artificials = tableau.num_cols - num_cols
    tableau.install_cost(list(standard.cost) + [_ZERO] * num_artificials)
    allowed = set(range(num_cols))
    status, entering = tableau.optimize(allowed_columns=allowed)

    values = tableau.column_values()[:num_cols]
    assignment = standard.to_original(values)

    if status == "unbounded":
        direction = tableau.ray_direction(entering)[:num_cols]
        ray = standard.to_original(direction)
        return LpResult(
            status=LpStatus.UNBOUNDED,
            assignment=assignment,
            ray=ray,
            pivots=tableau.pivot_count,
        )

    objective_value = tableau.objective_value() + standard.objective_constant
    if sense is Sense.MAXIMIZE:
        objective_value = -objective_value
    return LpResult(
        status=LpStatus.OPTIMAL,
        assignment=assignment,
        objective=objective_value,
        pivots=tableau.pivot_count,
    )


class SimplexState:
    """A persistent LP whose optimal basis is reused across solves.

    The supported mutations between solves are exactly the ones the lazy
    synthesis loop needs:

    * :meth:`declare` a new variable — new variables may only appear in
      constraints added afterwards, which is how the δ of a fresh
      counterexample behaves (their columns are all-zero in the solved
      rows, so the basis stays valid);
    * :meth:`add_constraint` — appended as slack-form rows; after a solved
      instance this triggers dual-simplex pivots from the previous optimal
      basis instead of a cold two-phase solve;
    * :meth:`set_objective` — re-priced against the current basis and
      re-optimised with primal pivots.

    The first :meth:`solve` (and any solve after an UNBOUNDED outcome,
    where no optimal basis exists to restart from) is a cold two-phase
    solve; every other solve is warm.  ``cold_solves`` / ``warm_solves`` /
    ``total_pivots`` / ``last_solve_pivots`` expose the counters the
    evaluation harness aggregates into
    :class:`~repro.core.lp_instance.LpStatistics`.

    Appending a *batch* of constraints between solves costs one
    dual-simplex basis-repair pass for the whole batch, not one per row:
    every pending row is installed first, and a single
    :meth:`_Tableau.dual_optimize` run restores primal feasibility for
    all of them (``dual_repair_passes`` / ``last_repair_passes`` count
    the passes so the ``cex_batch`` ablation can assert this).  When the
    objective change since the last solve only *added* terms on columns
    that are still nonbasic — the shape of every batched counterexample
    iteration, whose fresh δ columns carry the new objective terms — the
    repricing is a constant-size cost-row update instead of a full
    re-elimination against the basis (``incremental_repricings``).

    ``kernel`` selects the row representation (``"auto"`` resolves
    against the tableau width at the first cold solve; see
    :mod:`repro.linalg.packed`).  Pivot sequences and results are
    identical across kernels.
    """

    def __init__(self, sense: Sense = Sense.MINIMIZE, kernel: str = "auto"):
        self.sense = sense
        self.kernel = kernel
        self._objective = LinExpr()
        self._declared: Dict[str, bool] = {}  # name -> nonnegative, in order
        self._constraints: List[Constraint] = []
        self._pending_variables: List[str] = []
        self._pending_constraints: List[Constraint] = []
        self._tableau: Optional[_Tableau] = None
        self._plus: Dict[str, int] = {}
        self._minus: Dict[str, int] = {}
        self._allowed: Set[int] = set()
        self._priced_objective: Optional[LinExpr] = None
        self._warm_ready = False
        self._infeasible = False
        self._last_result: Optional[LpResult] = None
        self.cold_solves = 0
        self.warm_solves = 0
        self.total_pivots = 0
        self.last_solve_pivots = 0
        self.last_solve_warm = False
        self.dual_repair_passes = 0
        self.last_repair_passes = 0
        self.incremental_repricings = 0

    # -- construction ----------------------------------------------------------

    def declare(self, *names: str, nonnegative: bool = False) -> None:
        """Declare variables (optionally known nonnegative).

        Re-declaring with the same bound is a no-op; changing the bound
        in either direction raises (tightening would invalidate solved
        rows, loosening would silently ignore the caller's request).
        """
        for name in names:
            if name in self._declared:
                if nonnegative != self._declared[name]:
                    raise ValueError(
                        "variable %r is already declared %s and cannot be "
                        "re-declared %s"
                        % (
                            name,
                            "nonnegative" if self._declared[name] else "free",
                            "nonnegative" if nonnegative else "free",
                        )
                    )
                continue
            self._declared[name] = nonnegative
            self._pending_variables.append(name)
            self._last_result = None

    def _auto_declare(self, names) -> None:
        for name in sorted(names):
            if name not in self._declared:
                self.declare(name)

    def add_constraint(self, constraint: Constraint) -> None:
        """Queue a constraint; it joins the tableau at the next solve."""
        if constraint.relation is Relation.LT:
            raise ValueError("strict inequalities are not LP constraints")
        self._auto_declare(constraint.variables())
        self._pending_constraints.append(constraint)
        self._last_result = None

    def add_constraints(self, constraints: Sequence[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    def set_objective(self, objective: LinExpr) -> None:
        self._auto_declare(objective.variables())
        if objective != self._objective:
            self._objective = objective
            self._last_result = None

    # -- solving ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self._constraints) + len(self._pending_constraints)

    def _minimized_objective(self) -> LinExpr:
        return (
            self._objective
            if self.sense is Sense.MINIMIZE
            else -self._objective
        )

    def _cost_vector(self, length: int) -> List[Fraction]:
        cost = [_ZERO] * length
        _spread_terms(
            self._minimized_objective().terms, self._plus, self._minus, cost
        )
        return cost

    def solve(self) -> LpResult:
        """Solve the current instance, warm-starting whenever possible."""
        if self._infeasible:
            # Constraints only ever accumulate, so infeasibility is final.
            return LpResult(status=LpStatus.INFEASIBLE)
        if self._last_result is not None:
            return self._last_result
        if self._tableau is None or not self._warm_ready:
            result = self._solve_cold()
        else:
            result = self._solve_warm()
        self._last_result = result
        return result

    def _commit_pending(self) -> None:
        self._constraints.extend(self._pending_constraints)
        self._pending_constraints = []
        self._pending_variables = []

    def _solve_cold(self) -> LpResult:
        self._commit_pending()
        variables = list(self._declared)
        nonnegative = frozenset(
            name for name, flag in self._declared.items() if flag
        )
        standard = _StandardForm(
            self._minimized_objective(),
            self._constraints,
            variables,
            nonnegative,
        )
        num_cols = standard.num_columns
        feasible, tableau, _ = _two_phase(
            standard, resolve_kernel(self.kernel, num_cols + 1)
        )
        if not feasible:
            self._record(tableau.pivot_count, warm=False)
            self._infeasible = True
            return LpResult(
                status=LpStatus.INFEASIBLE, pivots=tableau.pivot_count
            )
        num_artificials = tableau.num_cols - num_cols
        tableau.install_cost(list(standard.cost) + [_ZERO] * num_artificials)
        allowed = set(range(num_cols))
        status, entering = tableau.optimize(allowed_columns=allowed)

        self._tableau = tableau
        self._plus = dict(standard.plus_index)
        self._minus = dict(standard.minus_index)
        self._allowed = allowed
        self._priced_objective = self._objective
        self._warm_ready = status == "optimal"
        self._record(tableau.pivot_count, warm=False)
        return self._extract(status, entering, tableau.pivot_count)

    def _solve_warm(self) -> LpResult:
        tableau = self._tableau
        assert tableau is not None
        start_pivots = tableau.pivot_count

        # 1. New variables become fresh columns.  They are absent from every
        # committed row (they were declared afterwards), so the columns are
        # all-zero and the basis stays optimal for the priced objective.
        for name in self._pending_variables:
            self._plus[name] = tableau.append_column()
            self._allowed.add(self._plus[name])
            if not self._declared[name]:
                self._minus[name] = tableau.append_column()
                self._allowed.add(self._minus[name])

        # 2. New constraints become slack-form rows (an equality contributes
        # one ≤ row per direction), eliminated against the current basis;
        # a negative right-hand side is precisely what the dual simplex
        # repairs next.  The whole batch is installed before any repair
        # pivot runs, so a ``cex_batch = k`` iteration pays one repair
        # pass, not k.
        for constraint in self._pending_constraints:
            expressions = [constraint.expr]
            if constraint.relation is Relation.EQ:
                expressions.append(-constraint.expr)
            for expr in expressions:
                slack = tableau.append_column()
                self._allowed.add(slack)
                entries = _sparse_terms(expr.terms, self._plus, self._minus)
                entries[slack] = _ONE
                entries[_RHS] = -expr.constant_term
                row = tableau.eliminate_against_basis(
                    tableau._pack(SparseRow.from_dict(entries))
                )
                tableau.append_row(row, slack)
        self._commit_pending()

        # 3. Restore primal feasibility under the previously-priced
        # objective (for which the basis is dual feasible): one multi-row
        # dual-simplex repair pass for the whole appended batch.
        self.dual_repair_passes += 1
        self.last_repair_passes = 1
        status = tableau.dual_optimize(self._allowed)
        if status == "infeasible":
            self._record(tableau.pivot_count - start_pivots, warm=True)
            self._infeasible = True
            return LpResult(
                status=LpStatus.INFEASIBLE,
                pivots=tableau.pivot_count - start_pivots,
            )

        # 4. Price the current objective and re-optimise with primal
        # pivots.  Appending rows leaves the maintained reduced-cost row
        # valid (the new slack is basic with cost zero, so no existing
        # reduced cost moves), so repricing is only needed when the
        # objective itself changed since it was last priced.
        if self._objective != self._priced_objective:
            self._reprice(tableau)
        status, entering = tableau.optimize(allowed_columns=self._allowed)
        self._priced_objective = self._objective
        self._warm_ready = status == "optimal"
        pivots = tableau.pivot_count - start_pivots
        self._record(pivots, warm=True)
        return self._extract(status, entering, pivots)

    def _reprice(self, tableau: _Tableau) -> None:
        """Price the current objective against the tableau's basis.

        When the change since the last pricing only *adds* terms on
        columns that are currently nonbasic — the batched-refinement
        shape, where each iteration's objective gains one fresh δ per
        appended counterexample — the cost row is patched in place
        (:meth:`_Tableau.extend_cost`) instead of being rebuilt and
        re-eliminated against every basic column.
        """
        previous = (
            self._priced_objective
            if self.sense is Sense.MINIMIZE
            else -self._priced_objective
        )
        delta = self._minimized_objective() - previous
        if not delta.terms:
            # Constant-only change: the constant lives outside the tableau
            # (it is re-added at extraction), so the priced row is intact.
            self.incremental_repricings += 1
            return
        entries = _sparse_terms(delta.terms, self._plus, self._minus)
        basic = set(tableau.basis)
        if all(column not in basic for column in entries):
            tableau.extend_cost(entries)
            self.incremental_repricings += 1
            return
        tableau.install_cost(self._cost_vector(tableau.num_cols))

    def _record(self, pivots: int, warm: bool) -> None:
        self.total_pivots += pivots
        self.last_solve_pivots = pivots
        self.last_solve_warm = warm
        if warm:
            self.warm_solves += 1
        else:
            self.cold_solves += 1

    def _to_original(self, values: Sequence[Fraction]) -> Dict[str, Fraction]:
        result: Dict[str, Fraction] = {}
        for name in self._declared:
            if name not in self._plus:
                result[name] = _ZERO  # declared after the last solve
                continue
            result[name] = _column_value(name, self._plus, self._minus, values)
        return result

    def _extract(
        self, status: str, entering: Optional[int], pivots: int
    ) -> LpResult:
        tableau = self._tableau
        assert tableau is not None
        assignment = self._to_original(tableau.column_values())
        if status == "unbounded":
            ray = self._to_original(tableau.ray_direction(entering))
            return LpResult(
                status=LpStatus.UNBOUNDED,
                assignment=assignment,
                ray=ray,
                pivots=pivots,
            )
        objective_value = (
            tableau.objective_value()
            + self._minimized_objective().constant_term
        )
        if self.sense is Sense.MAXIMIZE:
            objective_value = -objective_value
        return LpResult(
            status=LpStatus.OPTIMAL,
            assignment=assignment,
            objective=objective_value,
            pivots=pivots,
        )


def check_feasibility(
    constraints: Sequence[Constraint],
    variables: Optional[Sequence[str]] = None,
    kernel: str = "exact",
) -> LpResult:
    """Feasibility check: solve with the zero objective."""
    return solve_lp(
        LinExpr(), constraints, Sense.MINIMIZE, variables, kernel=kernel
    )
