"""The convex-polyhedra abstract domain (Cousot & Halbwachs 1978).

Abstract values are :class:`~repro.polyhedra.polyhedron.Polyhedron`
objects over the program variables.  This is the domain the paper's
toolchain obtains from Aspic/Pagai and the one used by default for every
benchmark of the reproduction.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.invariants.domain import AbstractDomain
from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.polyhedra.polyhedron import Polyhedron


class PolyhedraDomain(AbstractDomain[Polyhedron]):
    """Closed convex polyhedra with the standard widening."""

    def __init__(
        self,
        variables: Sequence[str],
        integer_variables=None,
        thresholds: Sequence[Constraint] = (),
    ):
        super().__init__(variables)
        self.integer_variables = set(
            integer_variables if integer_variables is not None else variables
        )
        # "Widening up to" (Halbwachs): candidate constraints — typically the
        # guards of the program — that are re-added after the standard
        # widening whenever the new iterate still satisfies them.  This is
        # the trick Aspic/Pagai use to keep loop bounds such as ``i ≤ 4``.
        self.thresholds: List[Constraint] = [
            threshold.weaken() for threshold in thresholds
        ]

    # -- lattice -----------------------------------------------------------------

    def top(self) -> Polyhedron:
        return Polyhedron.universe(self.variables)

    def bottom(self) -> Polyhedron:
        return Polyhedron.empty(self.variables)

    def is_bottom(self, value: Polyhedron) -> bool:
        return value.is_empty()

    def join(self, left: Polyhedron, right: Polyhedron) -> Polyhedron:
        return left.join(right)

    def widen(self, previous: Polyhedron, current: Polyhedron) -> Polyhedron:
        joined = previous.join(current)
        widened = previous.widen(joined)
        if not self.thresholds:
            return widened
        kept = [
            threshold
            for threshold in self.thresholds
            if joined.entails_constraint(threshold)
            and not widened.entails_constraint(threshold)
        ]
        if not kept:
            return widened
        return widened.intersect_constraints(kept)

    def includes(self, bigger: Polyhedron, smaller: Polyhedron) -> bool:
        return bigger.includes(smaller)

    # -- transfer functions ----------------------------------------------------------

    def constrain(
        self, value: Polyhedron, constraints: Sequence[Constraint]
    ) -> Polyhedron:
        prepared: List[Constraint] = []
        for constraint in constraints:
            if constraint.is_strict():
                # Integer programs: x > c becomes x ≥ c + 1; otherwise take
                # the topological closure, which is a sound over-approximation.
                if constraint.variables() <= self.integer_variables:
                    prepared.append(constraint.tighten_for_integers().weaken())
                else:
                    prepared.append(constraint.weaken())
            else:
                prepared.append(constraint)
        return value.intersect_constraints(prepared)

    def assign(
        self, value: Polyhedron, variable: str, expression: LinExpr
    ) -> Polyhedron:
        return value.assign(variable, expression)

    def havoc(self, value: Polyhedron, variable: str) -> Polyhedron:
        return value.havoc(variable)

    # -- conversions -------------------------------------------------------------------

    def to_polyhedron(self, value: Polyhedron) -> Polyhedron:
        return value

    def narrow(self, previous: Polyhedron, current: Polyhedron) -> Polyhedron:
        # Descending iteration: the new value is always sound; guard against
        # accidental loss of the fixpoint property by keeping the meet.
        return previous.intersect(current)
