"""Invariant maps: one polyhedron per control location."""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Sequence

from repro.linexpr.constraint import Constraint
from repro.linexpr.formula import Formula, conjunction
from repro.polyhedra.polyhedron import Polyhedron


class InvariantMap:
    """The ``I_k`` of Definition 4: a polyhedral invariant per location."""

    def __init__(self, variables: Sequence[str]):
        self.variables = list(variables)
        self._invariants: Dict[str, Polyhedron] = {}

    @classmethod
    def universal(
        cls, variables: Sequence[str], locations: Sequence[str]
    ) -> "InvariantMap":
        """The trivial invariant (no information) at every location."""
        result = cls(variables)
        for location in locations:
            result.set(location, Polyhedron.universe(variables))
        return result

    @classmethod
    def from_constraints(
        cls,
        variables: Sequence[str],
        table: Mapping[str, Sequence[Constraint]],
    ) -> "InvariantMap":
        """Build from explicit constraint lists (used by the paper examples)."""
        result = cls(variables)
        for location, constraints in table.items():
            result.set(location, Polyhedron(variables, constraints))
        return result

    def set(self, location: str, invariant: Polyhedron) -> None:
        self._invariants[location] = invariant

    def get(self, location: str) -> Polyhedron:
        """The invariant at *location* (universe when unknown)."""
        return self._invariants.get(
            location, Polyhedron.universe(self.variables)
        )

    def formula(self, location: str) -> Formula:
        """The invariant at *location* as a conjunction formula."""
        return conjunction(self.get(location).constraints)

    def locations(self) -> Iterator[str]:
        return iter(self._invariants)

    def items(self):
        return self._invariants.items()

    def __contains__(self, location: str) -> bool:
        return location in self._invariants

    def __repr__(self) -> str:
        lines = [
            "  %s: %r" % (location, invariant)
            for location, invariant in sorted(self._invariants.items())
        ]
        return "InvariantMap(\n%s\n)" % "\n".join(lines)
