"""The abstract-interpretation engine.

A standard worklist algorithm over the control-flow automaton:

* abstract values are propagated along transitions with the domain's
  transfer functions (guard, assignments, havoc),
* at *widening points* (by default the cut-set of the automaton) the new
  value is widened against the previous one, guaranteeing termination,
* once the ascending iteration stabilises, a bounded number of descending
  (narrowing) iterations recovers some precision lost to widening.

The output is an :class:`~repro.invariants.invariant_map.InvariantMap`
with one polyhedron per reachable location.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.invariants.domain import AbstractDomain
from repro.invariants.invariant_map import InvariantMap
from repro.invariants.polyhedra_domain import PolyhedraDomain
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import TRUE
from repro.linexpr.transform import dnf_conjunctions
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset
from repro.program.transition import Transition


class InvariantAnalyzer:
    """Forward reachability analysis parameterised by an abstract domain."""

    def __init__(
        self,
        automaton: ControlFlowAutomaton,
        domain: Optional[AbstractDomain] = None,
        widening_points: Optional[Sequence[str]] = None,
        widening_delay: int = 2,
        descending_iterations: int = 1,
        max_iterations: int = 10_000,
    ):
        self.automaton = automaton
        if domain is None:
            domain = PolyhedraDomain(
                automaton.variables,
                automaton.integer_variables,
                thresholds=_guard_thresholds(automaton),
            )
        self.domain = domain
        self.widening_points = set(
            widening_points
            if widening_points is not None
            else compute_cutset(automaton)
        )
        self.widening_delay = widening_delay
        self.descending_iterations = descending_iterations
        self.max_iterations = max_iterations

    # -- the public entry point ----------------------------------------------------

    def run(self) -> InvariantMap:
        values = self._ascending_phase()
        for _ in range(self.descending_iterations):
            values = self._descending_pass(values)
        invariants = InvariantMap(self.automaton.variables)
        for location, value in values.items():
            invariants.set(
                location, self.domain.to_polyhedron(value).minimized()
            )
        return invariants

    # -- iteration phases --------------------------------------------------------------

    def _initial_values(self) -> Dict[str, object]:
        values: Dict[str, object] = {
            location: self.domain.bottom()
            for location in self.automaton.locations
        }
        initial = self.domain.top()
        for conjunct in self._initial_conjuncts():
            initial = self.domain.constrain(self.domain.top(), conjunct)
            break
        values[self.automaton.initial_location] = initial
        return values

    def _initial_conjuncts(self):
        condition = self.automaton.initial_condition
        if condition is TRUE:
            return []
        return dnf_conjunctions(condition)[:1] or []

    def _ascending_phase(self) -> Dict[str, object]:
        values = self._initial_values()
        visit_count: Dict[str, int] = {}
        worklist: List[str] = [self.automaton.initial_location]
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > self.max_iterations:
                raise RuntimeError(
                    "invariant analysis did not converge within %d steps"
                    % self.max_iterations
                )
            location = worklist.pop(0)
            for transition in self.automaton.outgoing(location):
                contribution = self._post(values[location], transition)
                if self.domain.is_bottom(contribution):
                    continue
                target = transition.target
                previous = values[target]
                if self.domain.includes(previous, contribution):
                    continue
                joined = self.domain.join(previous, contribution)
                if target in self.widening_points:
                    visit_count[target] = visit_count.get(target, 0) + 1
                    if visit_count[target] > self.widening_delay:
                        joined = self.domain.widen(previous, joined)
                values[target] = joined
                if target not in worklist:
                    worklist.append(target)
        return values

    def _descending_pass(self, values: Dict[str, object]) -> Dict[str, object]:
        refined = dict(values)
        for location in sorted(self.automaton.locations):
            if location == self.automaton.initial_location:
                continue
            incoming = self.automaton.incoming(location)
            if not incoming:
                continue
            recomputed = self.domain.bottom()
            for transition in incoming:
                contribution = self._post(refined[transition.source], transition)
                recomputed = self.domain.join(recomputed, contribution)
            refined[location] = self.domain.narrow(values[location], recomputed)
        return refined

    # -- transfer function ------------------------------------------------------------------

    def _post(self, value: object, transition: Transition) -> object:
        if self.domain.is_bottom(value):
            return value
        guard_constraints = transition.guard_constraints()
        if guard_constraints is None:
            # Disjunctive or quantified guard: analyse each disjunct and join,
            # which keeps the transfer function sound and reasonably precise.
            disjuncts = dnf_conjunctions(transition.guard)
            result = self.domain.bottom()
            for conjunct in disjuncts:
                constrained = self.domain.constrain(value, conjunct)
                result = self.domain.join(
                    result, self._apply_updates(constrained, transition)
                )
            return result
        constrained = self.domain.constrain(value, guard_constraints)
        return self._apply_updates(constrained, transition)

    def _apply_updates(self, value: object, transition: Transition) -> object:
        if self.domain.is_bottom(value):
            return value
        result = value
        # Updates are simultaneous; stage them through fresh names when a
        # right-hand side mentions a variable that is itself updated.
        updated = set(transition.updates)
        needs_staging = any(
            expression is not None
            and (set(expression.variables()) & updated) - {name}
            for name, expression in transition.updates.items()
        )
        if not needs_staging:
            for name, expression in transition.updates.items():
                if expression is None:
                    result = self.domain.havoc(result, name)
                else:
                    result = self.domain.assign(result, name, expression)
            return result
        # Simultaneous update via the polyhedron fallback: this is exact for
        # the polyhedra domain and a sound approximation for boxes.
        polyhedron = self.domain.to_polyhedron(result)
        staged = {}
        for name, expression in transition.updates.items():
            if expression is None:
                polyhedron = polyhedron.havoc(name)
            else:
                staged[name] = expression
        if staged:
            stage_names = {name: name + "!stage" for name in staged}
            extended = polyhedron.extend_space(
                list(polyhedron.variables) + list(stage_names.values())
            )
            for name, expression in staged.items():
                extended = extended.assign(
                    stage_names[name], expression
                )
            for name in staged:
                extended = extended.assign(
                    name, LinExpr.variable(stage_names[name])
                )
            polyhedron = extended.project(self.domain.variables)
        converted = self.domain.constrain(self.domain.top(), polyhedron.constraints)
        return converted


def _guard_thresholds(automaton: ControlFlowAutomaton):
    """Widening-up-to thresholds: the guard constraints of the program.

    These are the constraints Aspic/Pagai would typically keep across
    widening; using them recovers loop bounds such as ``i ≤ 4`` that plain
    widening throws away.
    """
    from repro.linexpr.transform import formula_atoms

    integer_variables = automaton.integer_variables
    thresholds = []
    sources = [automaton.initial_condition] + [
        transition.guard for transition in automaton.transitions
    ]
    for formula in sources:
        for constraint in formula_atoms(formula):
            prepared = constraint
            if constraint.is_strict() and constraint.variables() <= integer_variables:
                prepared = constraint.tighten_for_integers()
            thresholds.append(prepared.weaken())
    return thresholds


def compute_invariants(
    automaton: ControlFlowAutomaton,
    domain: Optional[AbstractDomain] = None,
    **options,
) -> InvariantMap:
    """Convenience wrapper: run the analyzer with default settings."""
    return InvariantAnalyzer(automaton, domain, **options).run()
