"""The interval (box) abstract domain.

A much cheaper domain than polyhedra: each variable is tracked
independently as a closed interval with optionally infinite bounds.  It is
used by tests, by the Loopus-style heuristic baseline (which only needs
variable bounds) and as a fallback when the polyhedral analysis is too
slow for a benchmark sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.invariants.domain import AbstractDomain
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.polyhedra.polyhedron import Polyhedron

Bound = Optional[Fraction]  # None encodes the corresponding infinity.


@dataclass(frozen=True)
class Box:
    """A product of intervals, or bottom."""

    intervals: Tuple[Tuple[str, Bound, Bound], ...]
    empty: bool = False

    def as_dict(self) -> Dict[str, Tuple[Bound, Bound]]:
        return {name: (low, high) for name, low, high in self.intervals}


class IntervalDomain(AbstractDomain[Box]):
    """Independent per-variable intervals with the standard widening."""

    def __init__(self, variables: Sequence[str], integer_variables=None):
        super().__init__(variables)
        self.integer_variables = set(
            integer_variables if integer_variables is not None else variables
        )

    # -- construction helpers -----------------------------------------------------

    def _box(self, bounds: Dict[str, Tuple[Bound, Bound]], empty=False) -> Box:
        return Box(
            tuple(
                (name, *bounds.get(name, (None, None)))
                for name in self.variables
            ),
            empty,
        )

    # -- lattice --------------------------------------------------------------------

    def top(self) -> Box:
        return self._box({})

    def bottom(self) -> Box:
        return self._box({}, empty=True)

    def is_bottom(self, value: Box) -> bool:
        if value.empty:
            return True
        return any(
            low is not None and high is not None and low > high
            for _, low, high in value.intervals
        )

    def join(self, left: Box, right: Box) -> Box:
        if self.is_bottom(left):
            return right
        if self.is_bottom(right):
            return left
        left_bounds = left.as_dict()
        right_bounds = right.as_dict()
        merged: Dict[str, Tuple[Bound, Bound]] = {}
        for name in self.variables:
            left_low, left_high = left_bounds[name]
            right_low, right_high = right_bounds[name]
            low = None if left_low is None or right_low is None else min(
                left_low, right_low
            )
            high = None if left_high is None or right_high is None else max(
                left_high, right_high
            )
            merged[name] = (low, high)
        return self._box(merged)

    def widen(self, previous: Box, current: Box) -> Box:
        if self.is_bottom(previous):
            return current
        if self.is_bottom(current):
            return previous
        previous_bounds = previous.as_dict()
        current_bounds = self.join(previous, current).as_dict()
        widened: Dict[str, Tuple[Bound, Bound]] = {}
        for name in self.variables:
            old_low, old_high = previous_bounds[name]
            new_low, new_high = current_bounds[name]
            low = old_low if old_low is not None and new_low == old_low else (
                None if new_low is None or old_low is None or new_low < old_low else new_low
            )
            high = old_high if old_high is not None and new_high == old_high else (
                None if new_high is None or old_high is None or new_high > old_high else new_high
            )
            widened[name] = (low, high)
        return self._box(widened)

    def includes(self, bigger: Box, smaller: Box) -> bool:
        if self.is_bottom(smaller):
            return True
        if self.is_bottom(bigger):
            return False
        big = bigger.as_dict()
        small = smaller.as_dict()
        for name in self.variables:
            big_low, big_high = big[name]
            small_low, small_high = small[name]
            if big_low is not None and (small_low is None or small_low < big_low):
                return False
            if big_high is not None and (small_high is None or small_high > big_high):
                return False
        return True

    # -- expression evaluation ----------------------------------------------------------

    def _evaluate(self, value: Box, expression: LinExpr) -> Tuple[Bound, Bound]:
        """Interval of a linear expression over a box."""
        bounds = value.as_dict()
        low: Bound = expression.constant_term
        high: Bound = expression.constant_term
        for name, coefficient in expression.terms.items():
            if name not in bounds:
                return (None, None)
            var_low, var_high = bounds[name]
            if coefficient >= 0:
                term_low = None if var_low is None else coefficient * var_low
                term_high = None if var_high is None else coefficient * var_high
            else:
                term_low = None if var_high is None else coefficient * var_high
                term_high = None if var_low is None else coefficient * var_low
            low = None if low is None or term_low is None else low + term_low
            high = None if high is None or term_high is None else high + term_high
        return (low, high)

    # -- transfer functions ----------------------------------------------------------------

    def constrain(self, value: Box, constraints: Sequence[Constraint]) -> Box:
        if self.is_bottom(value):
            return value
        bounds = dict(value.as_dict())
        for constraint in constraints:
            prepared = constraint
            if constraint.is_strict() and constraint.variables() <= self.integer_variables:
                prepared = constraint.tighten_for_integers()
            box_value = self._box(bounds)
            expr_low, expr_high = self._evaluate(box_value, prepared.expr)
            # Unsatisfiable within the current box?
            if prepared.relation is Relation.LE and expr_low is not None and expr_low > 0:
                return self.bottom()
            if prepared.relation is Relation.LT and expr_low is not None and expr_low >= 0:
                return self.bottom()
            if prepared.relation is Relation.EQ and (
                (expr_low is not None and expr_low > 0)
                or (expr_high is not None and expr_high < 0)
            ):
                return self.bottom()
            # Refine single-variable constraints exactly.
            terms = prepared.expr.terms
            if len(terms) == 1:
                (name, coefficient), = terms.items()
                constant = prepared.expr.constant_term
                threshold = -constant / coefficient
                low, high = bounds[name]
                if prepared.relation in (Relation.LE, Relation.LT):
                    if coefficient > 0:
                        high = threshold if high is None else min(high, threshold)
                    else:
                        low = threshold if low is None else max(low, threshold)
                else:  # equality
                    low = threshold if low is None else max(low, threshold)
                    high = threshold if high is None else min(high, threshold)
                bounds[name] = (low, high)
        return self._box(bounds)

    def assign(self, value: Box, variable: str, expression: LinExpr) -> Box:
        if self.is_bottom(value):
            return value
        low, high = self._evaluate(value, expression)
        bounds = dict(value.as_dict())
        bounds[variable] = (low, high)
        return self._box(bounds)

    def havoc(self, value: Box, variable: str) -> Box:
        if self.is_bottom(value):
            return value
        bounds = dict(value.as_dict())
        bounds[variable] = (None, None)
        return self._box(bounds)

    # -- conversions ---------------------------------------------------------------------------

    def to_polyhedron(self, value: Box) -> Polyhedron:
        if self.is_bottom(value):
            return Polyhedron.empty(self.variables)
        constraints: List[Constraint] = []
        for name, low, high in value.intervals:
            if low is not None:
                constraints.append(LinExpr.variable(name) >= low)
            if high is not None:
                constraints.append(LinExpr.variable(name) <= high)
        return Polyhedron(self.variables, constraints)
