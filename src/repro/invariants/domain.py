"""The abstract-domain interface used by the invariant analyzer.

An abstract value represents a set of environments (assignments of the
program variables to rationals).  Domains are value-oriented: operations
return new abstract values, never mutate.
"""

from __future__ import annotations

import abc
from typing import Generic, Sequence, TypeVar

from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.polyhedra.polyhedron import Polyhedron

Value = TypeVar("Value")


class AbstractDomain(abc.ABC, Generic[Value]):
    """Operations every abstract domain must provide."""

    def __init__(self, variables: Sequence[str]):
        self.variables = list(variables)

    # -- lattice ---------------------------------------------------------------

    @abc.abstractmethod
    def top(self) -> Value:
        """The abstract value representing every environment."""

    @abc.abstractmethod
    def bottom(self) -> Value:
        """The abstract value representing no environment."""

    @abc.abstractmethod
    def is_bottom(self, value: Value) -> bool:
        """Whether *value* denotes the empty set."""

    @abc.abstractmethod
    def join(self, left: Value, right: Value) -> Value:
        """An upper bound of both arguments (the merge at control joins)."""

    @abc.abstractmethod
    def widen(self, previous: Value, current: Value) -> Value:
        """Widening: an upper bound enforcing convergence of iteration."""

    @abc.abstractmethod
    def includes(self, bigger: Value, smaller: Value) -> bool:
        """Whether *smaller* ⊑ *bigger* (used as the fixpoint test)."""

    # -- transfer functions ------------------------------------------------------

    @abc.abstractmethod
    def constrain(self, value: Value, constraints: Sequence[Constraint]) -> Value:
        """Intersect with a conjunction of linear constraints (guard)."""

    @abc.abstractmethod
    def assign(self, value: Value, variable: str, expression: LinExpr) -> Value:
        """Strongest post of the deterministic assignment ``variable := e``."""

    @abc.abstractmethod
    def havoc(self, value: Value, variable: str) -> Value:
        """Forget all information about *variable*."""

    # -- conversions ---------------------------------------------------------------

    @abc.abstractmethod
    def to_polyhedron(self, value: Value) -> Polyhedron:
        """A polyhedron over-approximating *value* (what the synthesiser uses)."""

    def narrow(self, previous: Value, current: Value) -> Value:
        """Narrowing used by descending iterations (defaults to *current*)."""
        return current
