"""Inductive invariant generation by abstract interpretation.

The paper assumes "some external tool provides us with invariants" (§2.2)
— Aspic or Pagai in the authors' toolchain.  This package is the
reproduction's stand-in: a classic abstract-interpretation engine
(Cousot–Halbwachs) over

* the convex-polyhedra domain (:class:`PolyhedraDomain`), the default, and
* the interval domain (:class:`IntervalDomain`), a cheaper alternative
  used by some benchmarks and by tests,

with widening at the cut points and a configurable number of descending
(narrowing) iterations.  The result is an :class:`InvariantMap` giving, at
every control location, a closed convex polyhedron that over-approximates
the reachable states — exactly the ``I_k`` of Definition 4.
"""

from repro.invariants.domain import AbstractDomain
from repro.invariants.intervals import IntervalDomain
from repro.invariants.polyhedra_domain import PolyhedraDomain
from repro.invariants.invariant_map import InvariantMap
from repro.invariants.analyzer import InvariantAnalyzer, compute_invariants

__all__ = [
    "AbstractDomain",
    "IntervalDomain",
    "PolyhedraDomain",
    "InvariantMap",
    "InvariantAnalyzer",
    "compute_invariants",
]
