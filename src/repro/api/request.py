"""The one request schema of the analysis front doors.

:class:`AnalysisRequest` bundles everything one analysis needs — the
program source, the prover, the :class:`~repro.api.config.AnalysisConfig`
and an optional caller-chosen request id — into a single frozen,
validated, exactly JSON-round-trippable value.  The library entry points
(:func:`repro.api.analyze` / :func:`repro.api.analyze_many`), the
``repro prove`` command line and the JSON-RPC service of
:mod:`repro.service` all construct and consume *this* object, so there is
exactly one request schema across every front door.

The request is also the unit of **content addressing**:
:meth:`AnalysisRequest.cache_key` hashes the canonicalised program text
together with the tool name and the config's canonical JSON, which is the
key of the service's checker-revalidated result cache
(:mod:`repro.service.cache`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.api.config import AnalysisConfig, ConfigError


class RequestError(ValueError):
    """An :class:`AnalysisRequest` field failed validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def canonical_program_text(source: str) -> str:
    """The canonical form of a program used for content addressing.

    Line endings are normalised to ``\\n``, trailing whitespace is
    stripped per line, and leading/trailing blank lines are dropped —
    so two sources that compile identically token-for-token under the
    mini-language lexer share one cache entry.  Interior indentation is
    preserved (it is insignificant to the lexer but keeping it is free
    and makes keys auditable by eye).
    """
    lines = source.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    canonical = [line.rstrip() for line in lines]
    while canonical and not canonical[0]:
        canonical.pop(0)
    while canonical and not canonical[-1]:
        canonical.pop()
    return "\n".join(canonical)


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis to perform: program + tool + config (+ optional id).

    ``program`` is mini-language source text (the wire format of the
    service; prepared automata stay a library-only convenience of
    :class:`~repro.api.pipeline.Analysis`).  ``tool`` is canonicalised
    through the prover registry at construction, so a request never
    carries an alias spelling.  ``request_id`` is an opaque caller-chosen
    correlation id; it does not affect the cache key.

    ``deadline_seconds`` is the caller's wall-clock budget for this one
    request.  The service honours it on both front doors — capped by
    the server's own ``--timeout``, never extending it — and answers
    ``REQUEST_TIMEOUT`` past it.  Like ``name`` and ``request_id`` it is
    delivery metadata and does not affect the cache key: the same
    analysis under a tighter deadline is still the same analysis.
    """

    program: str
    tool: str = "termite"
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    name: str = "program"
    request_id: Optional[str] = None
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        from repro.api.registry import canonical_name

        _require(
            isinstance(self.program, str) and bool(self.program.strip()),
            "program must be non-empty source text, got %r" % (self.program,),
        )
        _require(
            isinstance(self.tool, str), "tool must be a str, got %r" % (self.tool,)
        )
        try:
            object.__setattr__(
                self, "tool", canonical_name(self.tool.strip().lower())
            )
        except KeyError as error:
            raise RequestError(error.args[0]) from None
        _require(
            isinstance(self.config, AnalysisConfig),
            "config must be an AnalysisConfig, got %r" % type(self.config).__name__,
        )
        _require(
            isinstance(self.name, str) and bool(self.name),
            "name must be a non-empty str, got %r" % (self.name,),
        )
        _require(
            self.request_id is None or isinstance(self.request_id, str),
            "request_id must be None or a str, got %r" % (self.request_id,),
        )
        if self.deadline_seconds is not None:
            _require(
                isinstance(self.deadline_seconds, (int, float))
                and not isinstance(self.deadline_seconds, bool)
                and math.isfinite(self.deadline_seconds)
                and self.deadline_seconds > 0,
                "deadline_seconds must be a positive finite number, got %r"
                % (self.deadline_seconds,),
            )
            object.__setattr__(
                self, "deadline_seconds", float(self.deadline_seconds)
            )

    # -- content addressing ------------------------------------------------------

    def canonical_program(self) -> str:
        """The canonicalised program text (see :func:`canonical_program_text`)."""
        return canonical_program_text(self.program)

    def cache_key(self) -> str:
        """The content address: SHA-256 over (canonical program, tool, config).

        The config participates via its canonical (sorted-keys) JSON, so
        two requests agree on the key exactly when the analysis they ask
        for is identical.  ``name`` and ``request_id`` are presentation
        metadata and deliberately do not participate.
        """
        digest = hashlib.sha256()
        digest.update(self.canonical_program().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.tool.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.config.to_json().encode("utf-8"))
        return digest.hexdigest()

    def replace(self, **changes) -> "AnalysisRequest":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dictionary; inverse of :meth:`from_dict`."""
        document = {
            "program": self.program,
            "tool": self.tool,
            "config": self.config.to_dict(),
            "name": self.name,
            "request_id": self.request_id,
        }
        # Only stamped when set: requests written by older callers and
        # deadline-free requests share one wire shape.
        if self.deadline_seconds is not None:
            document["deadline_seconds"] = self.deadline_seconds
        return document

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisRequest":
        """Rebuild a request from :meth:`to_dict` output.

        Unknown keys are rejected (a request written by a newer schema
        must not be silently misread); missing keys take their defaults.
        """
        if not isinstance(data, dict):
            raise RequestError(
                "request must be a dict, got %r" % type(data).__name__
            )
        known = {
            "program",
            "tool",
            "config",
            "name",
            "request_id",
            "deadline_seconds",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise RequestError("unknown request keys: %s" % ", ".join(unknown))
        if "program" not in data:
            raise RequestError("request is missing the 'program' key")
        kwargs = {key: data[key] for key in known & set(data)}
        config = kwargs.get("config")
        if config is not None and not isinstance(config, AnalysisConfig):
            try:
                kwargs["config"] = AnalysisConfig.from_dict(config)
            except ConfigError as error:
                raise RequestError("invalid config: %s" % error) from None
        elif config is None:
            kwargs.pop("config", None)
        if kwargs.get("name") is None:
            kwargs.pop("name", None)
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise RequestError("invalid request JSON: %s" % error) from None
        return cls.from_dict(data)
