"""The built-in provers, registered under their stable names.

Importing this module (which :mod:`repro.api` does) populates the
registry with the six tools of the evaluation:

========================  =====================================================
``termite``               the paper's lazy counterexample-guided synthesis
``eager_farkas``          Rank/ADFG-style global eager Farkas synthesis
``eager_generators``      Ben-Amram & Genaim-style generator enumeration
``podelski_rybalchenko``  complete monodimensional synthesis (VMCAI 2004)
``heuristic``             Loopus-style syntactic candidate guessing
``dnf``                   per-disjunct greedy lexicographic elimination
========================  =====================================================

Hyphenated spellings (``eager-farkas``, …) are accepted by every lookup
(:func:`repro.api.canonical_name` normalises them) for backwards
compatibility with the historical Table-1 command lines.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.api.config import AnalysisConfig
from repro.api.registry import Prover, register_prover
from repro.api.result import AnalysisResult, AnalysisStatus
from repro.baselines import (
    dnf_prover,
    eager_farkas_lexicographic,
    eager_generator_synthesis,
    heuristic_prover,
    podelski_rybalchenko,
)
from repro.baselines.result import BaselineResult
from repro.core.certificate import check_certificate
from repro.core.lp_instance import LpStatistics
from repro.core.monodim import MaxIterationsExceeded
from repro.core.multidim import synthesize_multidim
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction


class TermiteProver(Prover):
    """The paper's contribution: lazy, counterexample-guided synthesis.

    The counterexample source and refinement policy are swappable
    through ``config.cex_oracle`` / ``cex_strategy`` / ``cex_batch`` /
    ``oracle_seed`` (see :mod:`repro.synthesis`); *observer*, when
    given, receives the engine's per-iteration
    :class:`~repro.synthesis.engine.CegisEvent` stream.
    """

    name = "termite"
    supports_certificates = True
    extra_capabilities = frozenset(
        {"cex-oracles", "cex-strategies", "lp-modes", "max-dimension", "events"}
    )
    summary = (
        "lazy multidimensional synthesis from extremal counterexamples "
        "(Gonnord, Monniaux & Radanne, PLDI 2015)"
    )

    def prove(
        self,
        problem: TerminationProblem,
        config: AnalysisConfig,
        observer=None,
    ) -> AnalysisResult:
        start = time.perf_counter()
        lp_statistics = LpStatistics()
        if not problem.blocks:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.TERMINATING,
                ranking=LexicographicRankingFunction(),
                time_seconds=time.perf_counter() - start,
                dimension=0,
                lp_statistics=lp_statistics,
                message="no cycle through the cut-set",
            )
        try:
            outcome = synthesize_multidim(
                problem,
                smt_mode=config.search_mode,
                integer_mode=config.integer_mode,
                max_dimension=config.max_dimension,
                max_iterations=config.max_iterations,
                lp_statistics=lp_statistics,
                lp_mode=config.lp_mode,
                oracle=config.cex_oracle,
                cex_strategy=config.cex_strategy,
                cex_batch=config.cex_batch,
                oracle_seed=config.oracle_seed,
                observers=(observer,) if observer is not None else (),
            )
        except MaxIterationsExceeded as error:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.UNKNOWN,
                time_seconds=time.perf_counter() - start,
                lp_statistics=lp_statistics,
                message=str(error),
            )
        elapsed = time.perf_counter() - start
        iterations = sum(
            component.statistics.iterations for component in outcome.components
        )
        if not outcome.success:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.UNKNOWN,
                time_seconds=elapsed,
                iterations=iterations,
                lp_statistics=lp_statistics,
                message="no lexicographic linear ranking function "
                "relative to the computed invariant",
            )
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.TERMINATING,
            ranking=outcome.ranking,
            time_seconds=elapsed,
            iterations=iterations,
            dimension=outcome.dimension,
            lp_statistics=lp_statistics,
        )

    def certify(
        self,
        problem: TerminationProblem,
        result: AnalysisResult,
        config: AnalysisConfig,
    ) -> bool:
        if result.ranking is None:
            return False
        return check_certificate(
            problem, result.ranking, integer_mode=config.integer_mode
        )


class BaselineProver(Prover):
    """Adapter putting one baseline function behind the prover interface.

    The baselines are fixed published methods reproduced as-is; the only
    config knob they honour is ``max_dimension`` (where the method is
    lexicographic at all — Podelski–Rybalchenko is inherently
    monodimensional).  Their rankings are certified by the independent
    Farkas checker of :mod:`repro.checking`, whose per-transition
    Definition-6 obligations accept every sound lexicographic style (the
    SMT-based check of :mod:`repro.core.certificate` assumes Termite's
    globally-nonnegative components).
    """

    supports_certificates = True

    def __init__(
        self,
        name: str,
        summary: str,
        function: Callable[..., BaselineResult],
        accepts_max_dimension: bool = True,
    ):
        self.name = name
        self.summary = summary
        self._function = function
        self._accepts_max_dimension = accepts_max_dimension
        self.extra_capabilities = (
            frozenset({"max-dimension"}) if accepts_max_dimension else frozenset()
        )

    def prove(
        self, problem: TerminationProblem, config: AnalysisConfig
    ) -> AnalysisResult:
        kwargs = {}
        if self._accepts_max_dimension and config.max_dimension is not None:
            kwargs["max_dimension"] = config.max_dimension
        outcome = self._function(problem, **kwargs)
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.TERMINATING
            if outcome.proved
            else AnalysisStatus.UNKNOWN,
            ranking=outcome.ranking,
            time_seconds=outcome.time_seconds,
            dimension=outcome.ranking.dimension if outcome.ranking else 0,
            lp_statistics=outcome.lp_statistics,
            details=dict(outcome.details),
        )

    def certify(
        self,
        problem: TerminationProblem,
        result: AnalysisResult,
        config: AnalysisConfig,
    ) -> bool:
        # Imported lazily: repro.checking sits above the api layering.
        from repro.checking.checker import CertificateVerdict, check_ranking

        if result.ranking is None:
            return False
        # Budget overruns surface as an "inconclusive" verdict from
        # check_ranking itself; anything else the checker raises is a
        # checker bug and must propagate loudly (the pipeline records it
        # as an error result) — a second opinion that fails silently is
        # no opinion.  The full verdict lands in the result details so
        # JSON consumers can tell invalid / inconclusive / unchecked
        # apart, not just see certificate_checked=False.
        verdict = check_ranking(
            problem, result.ranking, integer_mode=config.integer_mode
        )
        result.details["certificate_verdict"] = verdict.to_dict()
        return verdict.status == CertificateVerdict.VALID


register_prover(TermiteProver())
register_prover(
    BaselineProver(
        "eager_farkas",
        "eager global Farkas synthesis over the DNF expansion "
        "(Rank / Alias-Darte-Feautrier-Gonnord style)",
        eager_farkas_lexicographic,
    )
)
register_prover(
    BaselineProver(
        "eager_generators",
        "eager vertex/ray enumeration via double description "
        "(Ben-Amram & Genaim style)",
        eager_generator_synthesis,
    )
)
register_prover(
    BaselineProver(
        "podelski_rybalchenko",
        "complete monodimensional linear ranking synthesis (VMCAI 2004)",
        podelski_rybalchenko,
        accepts_max_dimension=False,
    )
)
register_prover(
    BaselineProver(
        "heuristic",
        "Loopus-style syntactic candidate guessing over loop guards",
        heuristic_prover,
    )
)
register_prover(
    BaselineProver(
        "dnf",
        "greedy per-disjunct lexicographic elimination over the eager DNF",
        dnf_prover,
    )
)
