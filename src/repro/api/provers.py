"""The built-in provers, registered under their stable names.

Importing this module (which :mod:`repro.api` does) populates the
registry with the six tools of the evaluation:

========================  =====================================================
``termite``               the paper's lazy counterexample-guided synthesis
``eager_farkas``          Rank/ADFG-style global eager Farkas synthesis
``eager_generators``      Ben-Amram & Genaim-style generator enumeration
``podelski_rybalchenko``  complete monodimensional synthesis (VMCAI 2004)
``heuristic``             Loopus-style syntactic candidate guessing
``dnf``                   per-disjunct greedy lexicographic elimination
========================  =====================================================

Hyphenated spellings (``eager-farkas``, …) are accepted by every lookup
(:func:`repro.api.canonical_name` normalises them) for backwards
compatibility with the historical Table-1 command lines.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.api.config import AnalysisConfig
from repro.api.registry import Prover, register_prover
from repro.api.result import AnalysisResult, AnalysisStatus
from repro.baselines import (
    dnf_prover,
    eager_farkas_lexicographic,
    eager_generator_synthesis,
    heuristic_prover,
    podelski_rybalchenko,
)
from repro.baselines.result import BaselineResult
from repro.core.certificate import check_certificate
from repro.core.lp_instance import LpStatistics
from repro.core.monodim import MaxIterationsExceeded
from repro.core.multidim import synthesize_multidim
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction


class TermiteProver(Prover):
    """The paper's contribution: lazy, counterexample-guided synthesis.

    The counterexample source and refinement policy are swappable
    through ``config.cex_oracle`` / ``cex_strategy`` / ``cex_batch`` /
    ``oracle_seed`` (see :mod:`repro.synthesis`); *observer*, when
    given, receives the engine's per-iteration
    :class:`~repro.synthesis.engine.CegisEvent` stream.
    """

    name = "termite"
    supports_certificates = True
    extra_capabilities = frozenset(
        {
            "cex-oracles",
            "cex-strategies",
            "lp-modes",
            "kernels",
            "max-dimension",
            "events",
            "nontermination",
        }
    )
    summary = (
        "lazy multidimensional synthesis from extremal counterexamples "
        "(Gonnord, Monniaux & Radanne, PLDI 2015)"
    )

    def prove(
        self,
        problem: TerminationProblem,
        config: AnalysisConfig,
        observer=None,
        automaton=None,
    ) -> AnalysisResult:
        start = time.perf_counter()
        lp_statistics = LpStatistics()
        if not problem.blocks:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.TERMINATING,
                ranking=LexicographicRankingFunction(),
                time_seconds=time.perf_counter() - start,
                dimension=0,
                lp_statistics=lp_statistics,
                message="no cycle through the cut-set",
            )
        mode = config.nonterm if automaton is not None else "off"
        if mode == "only":
            return self._prove_nontermination(
                config, automaton, observer, start, lp_statistics
            )
        if mode == "auto":
            return self._race(
                problem, config, automaton, observer, start, lp_statistics
            )
        return self._prove_termination(
            problem, config, observer, start, lp_statistics
        )

    def _prove_termination(
        self,
        problem: TerminationProblem,
        config: AnalysisConfig,
        observer,
        start: float,
        lp_statistics: LpStatistics,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> AnalysisResult:
        try:
            outcome = synthesize_multidim(
                problem,
                smt_mode=config.search_mode,
                integer_mode=config.integer_mode,
                max_dimension=config.max_dimension,
                max_iterations=config.max_iterations,
                lp_statistics=lp_statistics,
                lp_mode=config.lp_mode,
                kernel=config.kernel,
                oracle=config.cex_oracle,
                cex_strategy=config.cex_strategy,
                cex_batch=config.cex_batch,
                oracle_seed=config.oracle_seed,
                observers=(observer,) if observer is not None else (),
                should_stop=should_stop,
            )
        except MaxIterationsExceeded as error:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.UNKNOWN,
                time_seconds=time.perf_counter() - start,
                lp_statistics=lp_statistics,
                message=str(error),
            )
        elapsed = time.perf_counter() - start
        iterations = sum(
            component.statistics.iterations for component in outcome.components
        )
        if not outcome.success:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.UNKNOWN,
                time_seconds=elapsed,
                iterations=iterations,
                lp_statistics=lp_statistics,
                message="no lexicographic linear ranking function "
                "relative to the computed invariant",
            )
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.TERMINATING,
            ranking=outcome.ranking,
            time_seconds=elapsed,
            iterations=iterations,
            dimension=outcome.dimension,
            lp_statistics=lp_statistics,
        )

    def _prove_nontermination(
        self,
        config: AnalysisConfig,
        automaton,
        observer,
        start: float,
        lp_statistics: LpStatistics,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> AnalysisResult:
        # Imported lazily so the prover table stays importable even if
        # the nontermination package is stripped from a deployment.
        from repro.nontermination import synthesize_recurrence

        outcome = synthesize_recurrence(
            automaton,
            budget=config.nonterm_budget,
            observers=(observer,) if observer is not None else (),
            should_stop=should_stop,
            kernel=config.kernel,
        )
        elapsed = time.perf_counter() - start
        if outcome.success:
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.NONTERMINATING,
                lasso=outcome.lasso,
                time_seconds=elapsed,
                iterations=outcome.iterations,
                lp_statistics=lp_statistics,
                message=outcome.lasso.describe(),
                details={"nonterm": outcome.statistics.to_dict()},
            )
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.UNKNOWN,
            time_seconds=elapsed,
            iterations=outcome.iterations,
            lp_statistics=lp_statistics,
            message="no recurrence set found (%s)" % outcome.message,
            details={"nonterm": outcome.statistics.to_dict()},
        )

    def _race(
        self,
        problem: TerminationProblem,
        config: AnalysisConfig,
        automaton,
        observer,
        start: float,
        lp_statistics: LpStatistics,
    ) -> AnalysisResult:
        """Race termination against nontermination; first verdict wins.

        Each lane runs in its own thread with a co-operative
        ``should_stop`` hook; the lane that reaches a definitive verdict
        sets the shared event and the loser stands down at its next
        iteration boundary (raising
        :class:`~repro.synthesis.engine.SynthesisCancelled`, absorbed
        here).  Soundness makes the race deterministic: on a given
        program at most one lane can ever succeed, so which thread is
        scheduled first only affects wall time, never the verdict.
        """
        from repro.synthesis.engine import SynthesisCancelled

        stop = threading.Event()
        outcomes: dict = {}

        def lane(label: str, run: Callable[[], AnalysisResult], wins) -> None:
            try:
                result = run()
            except SynthesisCancelled:
                outcomes[label] = None
                return
            except BaseException as error:  # re-raised on the caller thread
                outcomes[label] = error
                stop.set()
                return
            outcomes[label] = result
            if wins(result):
                stop.set()

        threads = [
            threading.Thread(
                target=lane,
                args=(
                    "termination",
                    lambda: self._prove_termination(
                        problem,
                        config,
                        observer,
                        start,
                        lp_statistics,
                        should_stop=stop.is_set,
                    ),
                    lambda result: result.proved,
                ),
                daemon=True,
            ),
            threading.Thread(
                target=lane,
                args=(
                    "nontermination",
                    lambda: self._prove_nontermination(
                        config,
                        automaton,
                        observer,
                        start,
                        lp_statistics,
                        should_stop=stop.is_set,
                    ),
                    lambda result: result.disproved,
                ),
                daemon=True,
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        term = outcomes.get("termination")
        nonterm = outcomes.get("nontermination")
        term_ok = isinstance(term, AnalysisResult) and term.proved
        nonterm_ok = isinstance(nonterm, AnalysisResult) and nonterm.disproved
        if term_ok and nonterm_ok:
            # Both lanes claiming is a soundness bug somewhere; refuse to
            # pick a side so the harness flags it loudly.
            return AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.ERROR,
                time_seconds=time.perf_counter() - start,
                lp_statistics=lp_statistics,
                error="termination and nontermination both claimed a verdict",
            )
        if term_ok:
            return term
        if nonterm_ok:
            return nonterm
        for outcome in (term, nonterm):
            if isinstance(outcome, BaseException):
                raise outcome
        merged = (
            term
            if isinstance(term, AnalysisResult)
            else AnalysisResult(
                tool=self.name,
                status=AnalysisStatus.UNKNOWN,
                lp_statistics=lp_statistics,
            )
        )
        merged.time_seconds = time.perf_counter() - start
        if isinstance(nonterm, AnalysisResult):
            merged.details["nonterm"] = nonterm.details.get("nonterm", {})
            if nonterm.message:
                merged.message = (
                    "%s; %s" % (merged.message, nonterm.message)
                    if merged.message
                    else nonterm.message
                )
        return merged

    def certify(
        self,
        problem: TerminationProblem,
        result: AnalysisResult,
        config: AnalysisConfig,
    ) -> bool:
        if result.ranking is None:
            return False
        return check_certificate(
            problem, result.ranking, integer_mode=config.integer_mode
        )


class BaselineProver(Prover):
    """Adapter putting one baseline function behind the prover interface.

    The baselines are fixed published methods reproduced as-is; the only
    config knob they honour is ``max_dimension`` (where the method is
    lexicographic at all — Podelski–Rybalchenko is inherently
    monodimensional).  Their rankings are certified by the independent
    Farkas checker of :mod:`repro.checking`, whose per-transition
    Definition-6 obligations accept every sound lexicographic style (the
    SMT-based check of :mod:`repro.core.certificate` assumes Termite's
    globally-nonnegative components).
    """

    supports_certificates = True

    def __init__(
        self,
        name: str,
        summary: str,
        function: Callable[..., BaselineResult],
        accepts_max_dimension: bool = True,
    ):
        self.name = name
        self.summary = summary
        self._function = function
        self._accepts_max_dimension = accepts_max_dimension
        self.extra_capabilities = (
            frozenset({"max-dimension"}) if accepts_max_dimension else frozenset()
        )

    def prove(
        self, problem: TerminationProblem, config: AnalysisConfig
    ) -> AnalysisResult:
        kwargs = {}
        if self._accepts_max_dimension and config.max_dimension is not None:
            kwargs["max_dimension"] = config.max_dimension
        outcome = self._function(problem, **kwargs)
        return AnalysisResult(
            tool=self.name,
            status=AnalysisStatus.TERMINATING
            if outcome.proved
            else AnalysisStatus.UNKNOWN,
            ranking=outcome.ranking,
            time_seconds=outcome.time_seconds,
            dimension=outcome.ranking.dimension if outcome.ranking else 0,
            lp_statistics=outcome.lp_statistics,
            details=dict(outcome.details),
        )

    def certify(
        self,
        problem: TerminationProblem,
        result: AnalysisResult,
        config: AnalysisConfig,
    ) -> bool:
        # Imported lazily: repro.checking sits above the api layering.
        from repro.checking.checker import CertificateVerdict, check_ranking

        if result.ranking is None:
            return False
        # Budget overruns surface as an "inconclusive" verdict from
        # check_ranking itself; anything else the checker raises is a
        # checker bug and must propagate loudly (the pipeline records it
        # as an error result) — a second opinion that fails silently is
        # no opinion.  The full verdict lands in the result details so
        # JSON consumers can tell invalid / inconclusive / unchecked
        # apart, not just see certificate_checked=False.
        verdict = check_ranking(
            problem, result.ranking, integer_mode=config.integer_mode
        )
        result.details["certificate_verdict"] = verdict.to_dict()
        return verdict.status == CertificateVerdict.VALID


register_prover(TermiteProver())
register_prover(
    BaselineProver(
        "eager_farkas",
        "eager global Farkas synthesis over the DNF expansion "
        "(Rank / Alias-Darte-Feautrier-Gonnord style)",
        eager_farkas_lexicographic,
    )
)
register_prover(
    BaselineProver(
        "eager_generators",
        "eager vertex/ray enumeration via double description "
        "(Ben-Amram & Genaim style)",
        eager_generator_synthesis,
    )
)
register_prover(
    BaselineProver(
        "podelski_rybalchenko",
        "complete monodimensional linear ranking synthesis (VMCAI 2004)",
        podelski_rybalchenko,
        accepts_max_dimension=False,
    )
)
register_prover(
    BaselineProver(
        "heuristic",
        "Loopus-style syntactic candidate guessing over loop guards",
        heuristic_prover,
    )
)
register_prover(
    BaselineProver(
        "dnf",
        "greedy per-disjunct lexicographic elimination over the eager DNF",
        dnf_prover,
    )
)
