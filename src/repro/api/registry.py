"""The prover registry: every termination tool behind one interface.

A :class:`Prover` turns a prepared
:class:`~repro.core.problem.TerminationProblem` plus an
:class:`~repro.api.config.AnalysisConfig` into an
:class:`~repro.api.result.AnalysisResult`.  Tools register under stable
names (``termite``, ``eager_farkas``, ``eager_generators``,
``podelski_rybalchenko``, ``heuristic``, ``dnf``) and are looked up with
:func:`get_prover`; hyphenated spellings (``eager-farkas``) are accepted
as aliases so historical command lines keep working.

The registry is what lets the batch runner, the Table-1 harness and the
``repro`` CLI schedule heterogeneous solvers uniformly — no tool-specific
invocation glue anywhere above this module.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.config import AnalysisConfig
    from repro.api.result import AnalysisResult
    from repro.core.problem import TerminationProblem


#: The capability flags a prover may advertise:
#:
#: ``certificates``    — :meth:`Prover.certify` performs a real check;
#: ``cex-oracles``     — honours :attr:`AnalysisConfig.cex_oracle`;
#: ``cex-strategies``  — honours ``cex_strategy`` / ``cex_batch`` /
#:                       ``oracle_seed``;
#: ``lp-modes``        — honours ``lp_mode`` (warm/cold/audit);
#: ``kernels``         — honours ``kernel`` (packed int64 fast path vs
#:                       exact bignum rows, or automatic selection);
#: ``max-dimension``   — honours ``max_dimension``;
#: ``events``          — :meth:`Prover.prove` accepts an ``observer``
#:                       keyword receiving per-iteration engine events;
#: ``nontermination``  — honours ``nonterm`` / ``nonterm_budget`` and can
#:                       return NONTERMINATING with a lasso witness
#:                       (:meth:`Prover.prove` accepts an ``automaton``
#:                       keyword).
CAPABILITIES = (
    "certificates",
    "cex-oracles",
    "cex-strategies",
    "lp-modes",
    "kernels",
    "max-dimension",
    "events",
    "nontermination",
)


class Prover(abc.ABC):
    """One termination prover behind the uniform analysis interface."""

    #: Stable registry name (also the ``tool`` field of results).
    name: str = ""
    #: One-line description shown by ``repro list-provers``.
    summary: str = ""
    #: Whether :meth:`certify` performs a real check (gates the pipeline's
    #: ``certificate`` stage; a no-op certifier is simply skipped).
    supports_certificates: bool = False
    #: Which optional config knobs / hooks this prover honours beyond
    #: certification (a subset of :data:`CAPABILITIES`); everything else
    #: is silently ignored, and the flags let
    #: ``available_provers(capability=...)`` and the CLI tell callers so
    #: up front.
    extra_capabilities: frozenset = frozenset()

    @property
    def capabilities(self) -> frozenset:
        """All capability flags of this prover.

        ``"certificates"`` is derived from :attr:`supports_certificates`
        (the attribute that actually gates the pipeline's certificate
        stage), so the two can never drift apart.
        """
        flags = set(self.extra_capabilities)
        if self.supports_certificates:
            flags.add("certificates")
        return frozenset(flags)

    @abc.abstractmethod
    def prove(
        self, problem: "TerminationProblem", config: "AnalysisConfig"
    ) -> "AnalysisResult":
        """Attempt a termination proof of *problem* under *config*."""

    def certify(
        self,
        problem: "TerminationProblem",
        result: "AnalysisResult",
        config: "AnalysisConfig",
    ) -> bool:
        """Independently re-check *result*'s ranking function.

        Runs as the pipeline's ``certificate`` stage.  The default is a
        no-op (not every prover's witness format supports the exact
        checker); provers that do support it override this.
        """
        return False

    def __repr__(self) -> str:
        return "<Prover %s>" % (self.name or type(self).__name__)


_REGISTRY: Dict[str, Prover] = {}


def register_prover(prover: Prover) -> Prover:
    """Register *prover* under its :attr:`~Prover.name`.

    Re-registering a name replaces the previous prover (kept simple so
    tests can install stubs).
    """
    if not prover.name:
        raise ValueError("prover %r has no name" % (prover,))
    _REGISTRY[prover.name] = prover
    return prover


def canonical_name(name: str) -> str:
    """Resolve *name* to the registry key.

    Hyphenated spellings (``eager-farkas``) normalise onto the canonical
    underscore names, so historical Table-1 command lines keep working.
    Raises :class:`KeyError` with the list of available provers when the
    name is unknown.
    """
    if name in _REGISTRY:
        return name
    normalised = name.replace("-", "_")
    if normalised in _REGISTRY:
        return normalised
    raise KeyError(
        "unknown tool %r (available: %s)" % (name, ", ".join(available_provers()))
    )


def get_prover(name: str) -> Prover:
    """Look up a registered prover by name or alias."""
    return _REGISTRY[canonical_name(name)]


def available_provers(capability: Optional[str] = None) -> List[str]:
    """Canonical prover names, in registration order.

    With *capability* (one of :data:`CAPABILITIES`) only the provers
    advertising that flag are listed — e.g.
    ``available_provers("cex-oracles")`` names the tools whose
    counterexample source is swappable.
    """
    if capability is None:
        return list(_REGISTRY)
    if capability not in CAPABILITIES:
        raise KeyError(
            "unknown capability %r (available: %s)"
            % (capability, ", ".join(CAPABILITIES))
        )
    return [
        name
        for name, prover in _REGISTRY.items()
        if capability in prover.capabilities
    ]


def prover_summaries() -> Dict[str, str]:
    """``{name: one-line summary}`` for every registered prover."""
    return {name: prover.summary for name, prover in _REGISTRY.items()}


def prover_capabilities() -> Dict[str, List[str]]:
    """``{name: sorted capability flags}`` for every registered prover."""
    return {
        name: sorted(prover.capabilities)
        for name, prover in _REGISTRY.items()
    }
