"""The unified, JSON-serializable analysis result.

One result type for every tool: Termite, the five baselines, the batch
runner, and the CLI all produce :class:`AnalysisResult`.  It subsumes the
three divergent result shapes the package grew historically
(``TerminationResult``, ``BaselineResult`` and the runner's
``ProgramOutcome``), which survive only as thin wrappers/aliases.

The result round-trips through JSON **exactly**:
``AnalysisResult.from_dict(json.loads(json.dumps(r.to_dict()))) == r``,
including the synthesised ranking function (whose exact-rational
coefficients are serialised as fraction strings) and the LP statistics.
That property is what lets results cross the crash-isolated worker
boundary, land in CI artifacts, and be reloaded for offline analysis
without loss.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from repro.core.lp_instance import LpStatistics
from repro.core.ranking import (
    AffineRankingFunction,
    LexicographicRankingFunction,
)
from repro.linalg.vector import Vector
from repro.nontermination.witness import Lasso


class AnalysisStatus(str, enum.Enum):
    """Outcome classification of one analysis run.

    The enum inherits :class:`str`, so ``result.status == "terminating"``
    keeps working for callers written against the old string field.
    """

    TERMINATING = "terminating"
    NONTERMINATING = "nonterminating"
    UNKNOWN = "unknown"
    ERROR = "error"
    TIMEOUT = "timeout"


@dataclass
class StageTiming:
    """Wall-clock seconds spent in one pipeline stage."""

    name: str
    seconds: float

    def to_dict(self) -> dict:
        return {"name": self.name, "seconds": self.seconds}

    @classmethod
    def from_dict(cls, data: dict) -> "StageTiming":
        return cls(name=data["name"], seconds=data["seconds"])


#: Valid values of :attr:`Provenance.cache`.
CACHE_DISPOSITIONS = ("hit", "miss", "bypass")


@dataclass
class Provenance:
    """How a result was served, stamped by the analysis service.

    Results obtained through direct library calls carry no provenance
    (``result.provenance is None``); the service front door of
    :mod:`repro.service` stamps every response it serves:

    * ``cache`` — ``"hit"`` (served from the content-addressed cache),
      ``"miss"`` (computed, then stored) or ``"bypass"`` (computed with
      caching disabled);
    * ``key`` — the content address (:meth:`repro.api.request.
      AnalysisRequest.cache_key`) of the request;
    * ``revalidated`` — ``True`` iff the independent certificate checker
      re-validated the served certificate (always checked before a proved
      cache hit is served; vacuously true for proved results with no
      proof obligations);
    * ``worker_pid`` — the pid of the process that produced the payload
      (a pool worker on a miss, the serving process on a hit);
    * ``degraded`` — the load-shedding degradations the service applied
      before computing (empty when the request ran exactly as asked).
      Under overload pressure the admission gate may drop a
      ``nonterm="auto"`` race to termination-only
      (``"nonterm:auto->off"``) or force a non-default kernel back to
      ``"kernel:...->auto"``; every such trade is stamped here so a
      caller can always tell a full answer from a degraded one.
    * ``kernel`` — which LP kernel actually ran the pivots
      (``lp_statistics.kernel_chosen`` of the payload: ``"packed"``,
      ``"exact"``, ``"mixed"`` or ``""`` when no pivot was recorded).
    """

    cache: str = "miss"
    key: str = ""
    revalidated: bool = False
    worker_pid: int = 0
    degraded: tuple = ()
    kernel: str = ""

    def __post_init__(self) -> None:
        if self.cache not in CACHE_DISPOSITIONS:
            raise ValueError(
                "cache must be one of %s, got %r"
                % (", ".join(CACHE_DISPOSITIONS), self.cache)
            )
        object.__setattr__(self, "degraded", tuple(self.degraded))

    def to_dict(self) -> dict:
        return {
            "cache": self.cache,
            "key": self.key,
            "revalidated": self.revalidated,
            "worker_pid": self.worker_pid,
            "degraded": list(self.degraded),
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Provenance":
        return cls(
            cache=data.get("cache", "miss"),
            key=data.get("key", ""),
            revalidated=data.get("revalidated", False),
            worker_pid=data.get("worker_pid", 0),
            degraded=tuple(data.get("degraded", ())),
            kernel=data.get("kernel", ""),
        )


# -- exact serialisation of ranking functions --------------------------------------


def _fraction_to_str(value: Fraction) -> str:
    return str(value)


def ranking_to_dict(ranking: LexicographicRankingFunction) -> dict:
    """Serialise a ranking function with exact rational coefficients."""
    return {
        "components": [
            {
                "variables": list(component.variables),
                "coefficients": {
                    location: [_fraction_to_str(entry) for entry in vector]
                    for location, vector in component.coefficients.items()
                },
                "offsets": {
                    location: _fraction_to_str(offset)
                    for location, offset in component.offsets.items()
                },
                "strict": component.strict,
            }
            for component in ranking.components
        ]
    }


def ranking_from_dict(data: dict) -> LexicographicRankingFunction:
    """Inverse of :func:`ranking_to_dict` (exact, Fraction-for-Fraction)."""
    components = []
    for entry in data.get("components", []):
        components.append(
            AffineRankingFunction(
                variables=tuple(entry["variables"]),
                coefficients={
                    location: Vector(Fraction(text) for text in entries)
                    for location, entries in entry["coefficients"].items()
                },
                offsets={
                    location: Fraction(text)
                    for location, text in entry["offsets"].items()
                },
                strict=entry.get("strict", False),
            )
        )
    return LexicographicRankingFunction(components)


@dataclass
class AnalysisResult:
    """Outcome of running one prover on one program.

    ``status`` is the single source of truth; ``proved`` is a derived
    view kept for compatibility with the historical result types.
    """

    tool: str = "termite"
    program: str = ""
    status: AnalysisStatus = AnalysisStatus.UNKNOWN
    ranking: Optional[LexicographicRankingFunction] = None
    time_seconds: float = 0.0
    iterations: int = 0
    dimension: int = 0
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    certificate_checked: bool = False
    problem_statistics: Dict[str, int] = field(default_factory=dict)
    stages: List[StageTiming] = field(default_factory=list)
    message: str = ""
    error: Optional[str] = None
    timed_out: bool = False
    details: Dict[str, object] = field(default_factory=dict)
    lasso: Optional[Lasso] = None
    provenance: Optional[Provenance] = None

    def __post_init__(self) -> None:
        # Accept plain strings for convenience; store the enum.
        if not isinstance(self.status, AnalysisStatus):
            self.status = AnalysisStatus(self.status)

    # -- derived views -----------------------------------------------------------

    @property
    def proved(self) -> bool:
        return self.status is AnalysisStatus.TERMINATING

    @property
    def disproved(self) -> bool:
        """Whether the analysis established *non*-termination."""
        return self.status is AnalysisStatus.NONTERMINATING

    def stage_seconds(self, name: str) -> float:
        """Total seconds recorded for the stage called *name*."""
        return sum(stage.seconds for stage in self.stages if stage.name == name)

    def __repr__(self) -> str:
        return "AnalysisResult(%s, %s, dim=%d, %.1f ms, LP avg (%.1f, %.1f))" % (
            self.tool,
            self.status.value,
            self.dimension,
            self.time_seconds * 1000.0,
            self.lp_statistics.average_rows,
            self.lp_statistics.average_cols,
        )

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON dictionary; inverse of :meth:`from_dict`.

        ``proved`` and ``time_ms`` are derived convenience keys for
        dashboards and the Table-1 JSON consumers; :meth:`from_dict`
        recomputes them from the raw fields.  The ``lasso`` key is only
        present on NONTERMINATING results, keeping the document shape of
        every pre-existing status byte-identical.
        """
        document = {
            "tool": self.tool,
            "program": self.program,
            "status": self.status.value,
            "proved": self.proved,
            "ranking": ranking_to_dict(self.ranking) if self.ranking is not None else None,
            "time_seconds": self.time_seconds,
            "time_ms": round(self.time_seconds * 1000.0, 3),
            "iterations": self.iterations,
            "dimension": self.dimension,
            "lp": self.lp_statistics.to_dict(),
            "certificate_checked": self.certificate_checked,
            "problem_statistics": dict(self.problem_statistics),
            "stages": [stage.to_dict() for stage in self.stages],
            "message": self.message,
            "error": self.error,
            "timed_out": self.timed_out,
            "details": dict(self.details),
            "provenance": (
                self.provenance.to_dict() if self.provenance is not None else None
            ),
        }
        if self.lasso is not None:
            document["lasso"] = self.lasso.to_dict()
        return document

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisResult":
        ranking = data.get("ranking")
        provenance = data.get("provenance")
        lasso = data.get("lasso")
        return cls(
            tool=data.get("tool", "termite"),
            program=data.get("program", ""),
            status=AnalysisStatus(data.get("status", "unknown")),
            ranking=ranking_from_dict(ranking) if ranking is not None else None,
            time_seconds=data.get("time_seconds", 0.0),
            iterations=data.get("iterations", 0),
            dimension=data.get("dimension", 0),
            lp_statistics=LpStatistics.from_dict(data.get("lp", {})),
            certificate_checked=data.get("certificate_checked", False),
            problem_statistics=dict(data.get("problem_statistics", {})),
            stages=[StageTiming.from_dict(s) for s in data.get("stages", [])],
            message=data.get("message", ""),
            error=data.get("error"),
            timed_out=data.get("timed_out", False),
            details=dict(data.get("details", {})),
            lasso=Lasso.from_dict(lasso) if lasso is not None else None,
            provenance=(
                Provenance.from_dict(provenance) if provenance is not None else None
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        return cls.from_dict(json.loads(text))
