"""The typed, serializable analysis configuration.

:class:`AnalysisConfig` is the single place every knob of the analysis
pipeline lives.  It is

* **frozen** — a config is a value, safe to share between threads, cache
  keys, and worker processes;
* **validated** — every field is checked at construction time, so a typo
  like ``lp_mode="warm"`` fails immediately with a :class:`ConfigError`
  instead of deep inside the synthesis loop;
* **exactly JSON round-trippable** — ``from_dict(json.loads(json.dumps(
  cfg.to_dict()))) == cfg`` holds field for field, which is what lets a
  config travel through the crash-isolated parallel engine, CI artifacts,
  and the ``repro`` command line unchanged.

Non-serializable inputs (a prepared :class:`~repro.invariants.domain.
AbstractDomain` instance, externally supplied invariants or cut-sets) are
deliberately *not* part of the config; they are advanced overrides passed
directly to :class:`repro.api.pipeline.Analysis`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.lp_instance import LP_MODES
from repro.linalg.packed import KERNELS
from repro.smt.optimize import SearchMode
from repro.synthesis.oracles import ORACLE_NAMES
from repro.synthesis.strategies import STRATEGY_NAMES

#: Valid values of :attr:`AnalysisConfig.smt_mode`.
SMT_MODES = tuple(mode.value for mode in SearchMode)

#: Valid values of :attr:`AnalysisConfig.domain`.
DOMAINS = ("polyhedra", "intervals")

#: Valid values of :attr:`AnalysisConfig.cex_oracle`.
CEX_ORACLES = tuple(ORACLE_NAMES)

#: Valid values of :attr:`AnalysisConfig.cex_strategy`.
CEX_STRATEGIES = tuple(STRATEGY_NAMES)

#: Valid values of :attr:`AnalysisConfig.nonterm`.
NONTERM_MODES = ("off", "auto", "only")


class ConfigError(ValueError):
    """An :class:`AnalysisConfig` field failed validation."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class AnalysisConfig:
    """Every knob of the termination analysis, as one immutable value.

    The fields correspond one-to-one to the keyword arguments the old
    ``TerminationProver`` constructor used to take (see
    ``docs/MIGRATION.md`` for the mapping).
    """

    #: Counterexample search strategy of the optimising SMT oracle:
    #: ``"local"`` (per-disjunct optimisation) or ``"global"``.
    smt_mode: str = SearchMode.LOCAL.value
    #: How ``LP(V, Constraints(I))`` is re-solved across counterexample
    #: iterations: ``"incremental"`` (warm-started persistent tableau),
    #: ``"cold"`` (rebuild from scratch) or ``"audit"`` (both + cross-check).
    lp_mode: str = "incremental"
    #: Row representation of the simplex/projection kernels:
    #: ``"packed"`` (fixed-width numpy int64 rows with exact fallback on
    #: int64 overflow), ``"exact"`` (pure-Python bignum rows) or
    #: ``"auto"`` (packed iff numpy is available and the rows are wide
    #: enough to win).  Verdicts, optima and pivot sequences are
    #: identical across kernels; combine with ``lp_mode="audit"`` to
    #: cross-check the packed path against the exact one per solve.
    kernel: str = "auto"
    #: Tighten strict inequalities over integer-valued variables.
    integer_mode: bool = False
    #: Iteration budget of one monodimensional synthesis loop.
    max_iterations: int = 200
    #: Cap on the lexicographic dimension (``None``: the stacked dimension).
    max_dimension: Optional[int] = None
    #: Independently re-check the synthesised ranking function.
    check_certificates: bool = True
    #: Restrict invariants to the states that can still reach a cycle.
    restrict_to_guarded: bool = True
    #: Abstract domain of the invariant generator: ``"polyhedra"`` or
    #: ``"intervals"``.
    domain: str = "polyhedra"
    #: Counterexample oracle of the CEGIS engine: ``"smt"`` (the paper's
    #: optimising extremal-point query), ``"dd"`` (double-description
    #: vertex/ray enumeration) or ``"sampling"`` (seeded interior points).
    cex_oracle: str = "smt"
    #: Counterexample selection strategy: ``"extremal"`` (the paper's
    #: choice), ``"arbitrary"`` (first found, no optimisation) or
    #: ``"random"`` (seeded pick) — the §4.2 ablation axis.
    cex_strategy: str = "extremal"
    #: LP rows added per refinement iteration (batched refinement; 1
    #: replays the paper's one-row-per-counterexample loop).
    cex_batch: int = 1
    #: Seed of the sampling oracle and the random strategy.
    oracle_seed: int = 0
    #: Nontermination analysis: ``"off"`` (termination only — the
    #: historical behaviour), ``"auto"`` (race recurrence-set synthesis
    #: against termination; first definitive verdict wins) or ``"only"``
    #: (recurrence-set synthesis alone).  Only provers advertising the
    #: ``"nontermination"`` capability honour it.
    nonterm: str = "off"
    #: Cap on recurrence-set candidates (cycle x guard-conjunct x havoc
    #: choice combinations) examined per program.
    nonterm_budget: int = 64

    def __post_init__(self) -> None:
        _require(
            self.smt_mode in SMT_MODES,
            "smt_mode must be one of %s, got %r" % (", ".join(SMT_MODES), self.smt_mode),
        )
        _require(
            self.lp_mode in LP_MODES,
            "lp_mode must be one of %s, got %r" % (", ".join(LP_MODES), self.lp_mode),
        )
        _require(
            self.kernel in KERNELS,
            "kernel must be one of %s, got %r" % (", ".join(KERNELS), self.kernel),
        )
        _require(
            isinstance(self.integer_mode, bool),
            "integer_mode must be a bool, got %r" % (self.integer_mode,),
        )
        _require(
            isinstance(self.max_iterations, int)
            and not isinstance(self.max_iterations, bool)
            and self.max_iterations >= 1,
            "max_iterations must be a positive int, got %r" % (self.max_iterations,),
        )
        _require(
            self.max_dimension is None
            or (
                isinstance(self.max_dimension, int)
                and not isinstance(self.max_dimension, bool)
                and self.max_dimension >= 1
            ),
            "max_dimension must be None or a positive int, got %r"
            % (self.max_dimension,),
        )
        _require(
            isinstance(self.check_certificates, bool),
            "check_certificates must be a bool, got %r" % (self.check_certificates,),
        )
        _require(
            isinstance(self.restrict_to_guarded, bool),
            "restrict_to_guarded must be a bool, got %r" % (self.restrict_to_guarded,),
        )
        _require(
            self.domain in DOMAINS,
            "domain must be one of %s, got %r" % (", ".join(DOMAINS), self.domain),
        )
        _require(
            self.cex_oracle in CEX_ORACLES,
            "cex_oracle must be one of %s, got %r"
            % (", ".join(CEX_ORACLES), self.cex_oracle),
        )
        _require(
            self.cex_strategy in CEX_STRATEGIES,
            "cex_strategy must be one of %s, got %r"
            % (", ".join(CEX_STRATEGIES), self.cex_strategy),
        )
        _require(
            isinstance(self.cex_batch, int)
            and not isinstance(self.cex_batch, bool)
            and self.cex_batch >= 1,
            "cex_batch must be a positive int, got %r" % (self.cex_batch,),
        )
        _require(
            isinstance(self.oracle_seed, int)
            and not isinstance(self.oracle_seed, bool)
            and self.oracle_seed >= 0,
            "oracle_seed must be a nonnegative int, got %r"
            % (self.oracle_seed,),
        )
        _require(
            self.nonterm in NONTERM_MODES,
            "nonterm must be one of %s, got %r"
            % (", ".join(NONTERM_MODES), self.nonterm),
        )
        _require(
            isinstance(self.nonterm_budget, int)
            and not isinstance(self.nonterm_budget, bool)
            and self.nonterm_budget >= 1,
            "nonterm_budget must be a positive int, got %r"
            % (self.nonterm_budget,),
        )

    # -- derived views -----------------------------------------------------------

    @property
    def search_mode(self) -> SearchMode:
        """The :attr:`smt_mode` as the solver's :class:`SearchMode` enum."""
        return SearchMode(self.smt_mode)

    def replace(self, **changes) -> "AnalysisConfig":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON dictionary; inverse of :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AnalysisConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys are rejected (a config written by a newer version
        must not be silently misread), missing keys take their defaults.
        """
        if not isinstance(data, dict):
            raise ConfigError("config must be a dict, got %r" % type(data).__name__)
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError("unknown config keys: %s" % ", ".join(unknown))
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError("invalid config JSON: %s" % error) from None
        return cls.from_dict(data)
