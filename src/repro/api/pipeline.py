"""The staged analysis pipeline and the batch entry points.

:class:`Analysis` decomposes a termination analysis into named stages —

    ``frontend`` → ``invariants`` → ``cutset`` → ``large_block``
    → ``synthesis`` → ``certificate``

— times each one, notifies observer hooks around them, and **caches the
built** :class:`~repro.core.problem.TerminationProblem`: running several
provers on the same program (``analysis.run("termite")`` then
``analysis.run("heuristic")``) builds the front half of the pipeline once
and shares it, instead of recomputing invariants per tool.

:func:`analyze` is the one-call entry point; :func:`analyze_many` fans a
batch out over the crash-isolated parallel engine of
:mod:`repro.reporting.parallel`, one worker task per program (all
requested tools run inside the same task so the problem cache is shared
even across process boundaries).
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.api.config import AnalysisConfig
from repro.api.registry import canonical_name, get_prover
from repro.api.request import AnalysisRequest
from repro.api.result import AnalysisResult, AnalysisStatus, StageTiming
from repro.core.problem import TerminationProblem
from repro.core.relevance import restrict_to_guarded_states
from repro.frontend.lowering import compile_program
from repro.invariants.analyzer import compute_invariants
from repro.invariants.domain import AbstractDomain
from repro.invariants.intervals import IntervalDomain
from repro.invariants.invariant_map import InvariantMap
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset
from repro.program.large_block import large_block_encoding

if TYPE_CHECKING:  # pragma: no cover - layering: reporting imports the api
    from repro.reporting.parallel import TaskResult
    from repro.synthesis.engine import CegisEvent

#: An observer callback: ``hook(event, stage, seconds)`` with ``event`` in
#: ``{"start", "end"}`` (``seconds`` is ``None`` on ``"start"``).
StageObserver = Callable[[str, str, Optional[float]], None]

#: An engine observer: receives every per-iteration
#: :class:`~repro.synthesis.engine.CegisEvent` of a prover that
#: advertises the ``"events"`` capability (see ``Analysis``).
EngineObserver = Callable[["CegisEvent"], None]

#: Stages that build the shared :class:`TerminationProblem` (run once per
#: program) as opposed to the per-tool ``synthesis``/``certificate`` half.
BUILD_STAGES = ("frontend", "invariants", "cutset", "large_block")

#: All pipeline stages, in execution order.
STAGES = BUILD_STAGES + ("synthesis", "certificate")

#: Anything :class:`Analysis` accepts as its program argument.
ProgramLike = Union[str, ControlFlowAutomaton]


class Analysis:
    """One program moving through the staged termination pipeline.

    *program* is mini-language source text or a prepared control-flow
    automaton.  *invariants*, *cutset* and *domain* are advanced overrides
    (externally computed invariants, a fixed cut-set, a prepared abstract
    domain instance); they are not part of the serializable config.
    """

    def __init__(
        self,
        program: ProgramLike,
        config: Optional[AnalysisConfig] = None,
        name: Optional[str] = None,
        observers: Sequence[StageObserver] = (),
        engine_observers: Sequence[EngineObserver] = (),
        invariants: Optional[InvariantMap] = None,
        cutset: Optional[Sequence[str]] = None,
        domain: Optional[AbstractDomain] = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        if isinstance(program, ControlFlowAutomaton):
            self._source: Optional[str] = None
            self._automaton: Optional[ControlFlowAutomaton] = program
        elif isinstance(program, str):
            self._source = program
            self._automaton = None
        else:
            raise TypeError(
                "program must be source text or a ControlFlowAutomaton, got %r"
                % type(program).__name__
            )
        self.name = name or getattr(self._automaton, "name", "") or "program"
        self._observers: List[StageObserver] = list(observers)
        self._engine_observers: List[EngineObserver] = list(engine_observers)
        self._given_invariants = invariants
        self._given_cutset = list(cutset) if cutset is not None else None
        self._given_domain = domain
        self._problem: Optional[TerminationProblem] = None
        self._build_stages: List[StageTiming] = []
        self._build_lp_saved = 0
        self._build_kernel_counts: Dict[str, int] = {}

    # -- observers ---------------------------------------------------------------

    def add_observer(self, observer: StageObserver) -> None:
        self._observers.append(observer)

    def add_engine_observer(self, observer: EngineObserver) -> None:
        """Subscribe to the synthesis engine's per-iteration events.

        Events flow only from provers advertising the ``"events"``
        capability (the CEGIS-based ``termite``); other tools simply
        produce none.
        """
        self._engine_observers.append(observer)

    def _notify(self, event: str, stage: str, seconds: Optional[float]) -> None:
        for observer in self._observers:
            observer(event, stage, seconds)

    def _notify_engine(self, event: "CegisEvent") -> None:
        for observer in self._engine_observers:
            observer(event)

    @contextmanager
    def _stage(self, stage: str, timings: List[StageTiming]):
        self._notify("start", stage, None)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            timings.append(StageTiming(stage, elapsed))
            self._notify("end", stage, elapsed)

    # -- the front half: building the shared problem -----------------------------

    def automaton(self) -> ControlFlowAutomaton:
        """The control-flow automaton (``frontend`` stage, cached)."""
        if self._automaton is None:
            with self._stage("frontend", self._build_stages):
                self._automaton = compile_program(self._source, self.name)
        return self._automaton

    def _domain_instance(
        self, automaton: ControlFlowAutomaton
    ) -> Optional[AbstractDomain]:
        if self._given_domain is not None:
            return self._given_domain
        if self.config.domain == "intervals":
            return IntervalDomain(automaton.variables)
        return None  # the analyzer defaults to the polyhedra domain

    @property
    def problem_built(self) -> bool:
        return self._problem is not None

    def problem(self) -> TerminationProblem:
        """The built termination problem (cached across :meth:`run` calls)."""
        if self._problem is not None:
            return self._problem
        from repro.linalg import packed
        from repro.polyhedra import projection

        build_snapshot = projection.statistics.snapshot()
        build_kernel_snapshot = packed.kernel_counters_snapshot()
        automaton = self.automaton()
        if not any(stage.name == "frontend" for stage in self._build_stages):
            # Automaton was given directly: record a zero-cost frontend
            # stage so every result carries the full stage breakdown.
            self._build_stages.append(StageTiming("frontend", 0.0))
            self._notify("start", "frontend", None)
            self._notify("end", "frontend", 0.0)
        with self._stage("invariants", self._build_stages):
            invariants = self._given_invariants
            if invariants is None:
                invariants = compute_invariants(
                    automaton, self._domain_instance(automaton)
                )
        with self._stage("cutset", self._build_stages):
            cutset = self._given_cutset or compute_cutset(automaton)
            if not cutset:
                # No cycle at all: the program trivially terminates; keep a
                # placeholder cut point so the problem stays well-formed.
                cutset = [automaton.initial_location]
        with self._stage("large_block", self._build_stages):
            if self.config.restrict_to_guarded:
                invariants = restrict_to_guarded_states(
                    automaton, cutset, invariants
                )
            blocks = large_block_encoding(automaton, cutset)
            self._problem = TerminationProblem(
                automaton.variables,
                cutset,
                invariants,
                blocks,
                sorted(automaton.integer_variables),
            )
        # Like the build-stage timings, projection savings from the
        # shared problem build reappear in every result of this Analysis.
        self._build_lp_saved = projection.lp_calls_saved_since(build_snapshot)
        self._build_kernel_counts = packed.kernel_counters_since(
            build_kernel_snapshot
        )
        return self._problem

    def build_seconds(self) -> float:
        """Wall-clock spent building the shared problem (0.0 until built)."""
        return sum(stage.seconds for stage in self._build_stages)

    # -- the back half: running a prover -----------------------------------------

    def run(self, tool: str = "termite") -> AnalysisResult:
        """Run *tool* (a registry name) on the cached problem.

        The returned result carries the full per-stage breakdown; the
        build stages are shared — their recorded timings reappear in every
        result of this :class:`Analysis`, they are *not* re-run.
        """
        from repro.linalg import packed
        from repro.polyhedra import projection

        prover = get_prover(tool)
        problem = self.problem()
        snapshot = projection.statistics.snapshot()
        kernel_snapshot = packed.kernel_counters_snapshot()
        run_stages: List[StageTiming] = []
        prove_kwargs = {}
        if self._engine_observers and "events" in prover.capabilities:
            prove_kwargs["observer"] = self._notify_engine
        if self.config.nonterm != "off" and "nontermination" in prover.capabilities:
            prove_kwargs["automaton"] = self.automaton()
        with self._stage("synthesis", run_stages):
            result = prover.prove(problem, self.config, **prove_kwargs)
        result.lp_statistics.redundancy_lp_saved += (
            self._build_lp_saved + projection.lp_calls_saved_since(snapshot)
        )
        # Kernel counters are global to the thread, so fold the deltas
        # recorded around this run (plus the shared build's share) into
        # the result the same way the projection savings are folded.
        run_kernel_counts = packed.kernel_counters_since(kernel_snapshot)
        for field in packed.COUNTER_FIELDS:
            total = self._build_kernel_counts.get(field, 0)
            total += run_kernel_counts.get(field, 0)
            setattr(
                result.lp_statistics,
                field,
                getattr(result.lp_statistics, field) + total,
            )
        if (
            self.config.check_certificates
            and prover.supports_certificates
            and result.proved
            and result.ranking is not None
        ):
            with self._stage("certificate", run_stages):
                result.certificate_checked = prover.certify(
                    problem, result, self.config
                )
        elif (
            self.config.check_certificates
            and result.status is AnalysisStatus.NONTERMINATING
            and result.lasso is not None
        ):
            from repro.checking.recurrence import check_recurrence

            with self._stage("certificate", run_stages):
                verdict = check_recurrence(self.automaton(), result.lasso)
                result.details["lasso_verdict"] = verdict.to_dict()
                result.certificate_checked = verdict.status == "valid"
        result.program = self.name
        result.problem_statistics = problem.statistics()
        result.stages = list(self._build_stages) + run_stages
        result.time_seconds = sum(stage.seconds for stage in result.stages)
        return result

    def run_many(self, tools: Sequence[str]) -> List[AnalysisResult]:
        """Run several tools, building the problem exactly once."""
        return [self.run(tool) for tool in tools]


# -- batch execution ------------------------------------------------------------------


def _program_name(program, name: Optional[str]) -> str:
    if name:
        return name
    return getattr(program, "name", "") or "program"


def run_tools_on_program(
    program,
    tools: Sequence[str],
    config: Optional[AnalysisConfig] = None,
    name: Optional[str] = None,
) -> List[AnalysisResult]:
    """Run every tool in *tools* on one program, sharing the built problem.

    *program* may be source text, a control-flow automaton, or any object
    with ``build()``/``name`` (e.g. a benchmark description).  A failure —
    of the build, or of one tool — is recorded as an ``error`` result; one
    tool crashing never loses the other tools' outcomes.  This is the unit
    of work the parallel engines schedule.
    """
    program_name = _program_name(program, name)
    tools = [canonical_name(tool) for tool in tools]
    try:
        if hasattr(program, "build"):
            program = program.build()
        analysis = Analysis(program, config=config, name=program_name)
        analysis.problem()
    except Exception as error:
        return [
            AnalysisResult(
                tool=tool,
                program=program_name,
                status=AnalysisStatus.ERROR,
                error="%s: %s" % (type(error).__name__, error),
            )
            for tool in tools
        ]
    results = []
    for tool in tools:
        try:
            results.append(analysis.run(tool))
        except Exception as error:
            results.append(
                AnalysisResult(
                    tool=tool,
                    program=program_name,
                    status=AnalysisStatus.ERROR,
                    error="%s: %s" % (type(error).__name__, error),
                )
            )
    return results


def results_from_task(
    task: "TaskResult",
    tools: Sequence[str],
    name: str,
    timeout: Optional[float] = None,
) -> List[AnalysisResult]:
    """Unwrap one parallel-engine envelope into per-tool results.

    A successful task already carries the result list; a timeout, crash or
    engine-level error is expanded into one failed result per tool so the
    batch output stays rectangular.
    """
    if task.ok:
        return list(task.value)
    if task.kind == "timeout":
        return [
            AnalysisResult(
                tool=tool,
                program=name,
                status=AnalysisStatus.TIMEOUT,
                time_seconds=task.elapsed,
                error="timeout after %.1fs" % (timeout or task.elapsed),
                timed_out=True,
            )
            for tool in tools
        ]
    return [
        AnalysisResult(
            tool=tool,
            program=name,
            status=AnalysisStatus.ERROR,
            time_seconds=task.elapsed,
            error=task.message or task.kind,
        )
        for tool in tools
    ]


def analyze(
    program: Union[ProgramLike, AnalysisRequest],
    tool: str = "termite",
    config: Optional[AnalysisConfig] = None,
    name: Optional[str] = None,
    observers: Sequence[StageObserver] = (),
    engine_observers: Sequence[EngineObserver] = (),
) -> AnalysisResult:
    """Analyse one program with one tool — the canonical entry point.

    *program* may be an :class:`~repro.api.request.AnalysisRequest`,
    which already carries its tool, config and name — the same request
    object the ``repro prove`` command line and the JSON-RPC service
    construct.  Passing *tool*/*config*/*name* alongside a request is an
    error: the request is the single source of truth.
    """
    if isinstance(program, AnalysisRequest):
        if tool != "termite" or config is not None or name is not None:
            raise TypeError(
                "analyze(AnalysisRequest) takes no separate tool/config/name; "
                "the request already carries them"
            )
        request = program
        program, tool, config, name = (
            request.program,
            request.tool,
            request.config,
            request.name,
        )
    return Analysis(
        program,
        config=config,
        name=name,
        observers=observers,
        engine_observers=engine_observers,
    ).run(tool)


def analyze_many(
    programs: Sequence,
    tools: Sequence[str] = ("termite",),
    config: Optional[AnalysisConfig] = None,
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List[AnalysisResult]:
    """Analyse a batch of programs, optionally in parallel.

    Returns results program-major (all tools of program 0, then program
    1, …), in deterministic submission order regardless of *jobs*.  Each
    program is one crash-isolated task: all its tools run in the same
    worker and share the built problem; *timeout* is the per-program
    budget covering every tool.
    """
    # Imported here, not at module level: the reporting package sits above
    # the api in the layering (its runner is built on these entry points).
    from repro.reporting.parallel import run_tasks

    programs = list(programs)
    if any(isinstance(program, AnalysisRequest) for program in programs):
        if not all(isinstance(program, AnalysisRequest) for program in programs):
            raise TypeError(
                "analyze_many: mix of AnalysisRequest and bare programs; "
                "pass one kind"
            )
        if tools != ("termite",) or config is not None or names is not None:
            raise TypeError(
                "analyze_many(requests) takes no separate tools/config/names; "
                "each request already carries them"
            )
        thunks = [
            functools.partial(
                run_tools_on_program,
                request.program,
                [request.tool],
                request.config,
                request.name,
            )
            for request in programs
        ]
        tasks = run_tasks(thunks, jobs=jobs, timeout=timeout)
        results: List[AnalysisResult] = []
        for task, request in zip(tasks, programs):
            results.extend(
                results_from_task(task, [request.tool], request.name, timeout)
            )
        return results

    tools = [canonical_name(tool) for tool in tools]
    if names is None:
        names = [_program_name(program, None) for program in programs]
    thunks = [
        functools.partial(run_tools_on_program, program, tools, config, name)
        for program, name in zip(programs, names)
    ]
    tasks = run_tasks(thunks, jobs=jobs, timeout=timeout)
    results = []
    for task, name in zip(tasks, names):
        results.extend(results_from_task(task, tools, name, timeout))
    return results
