"""The unified analysis API.

Everything an integrator needs sits behind four pillars:

* :class:`AnalysisConfig` — one frozen, validated, JSON round-trippable
  value for every knob of the pipeline;
* the **prover registry** — :func:`get_prover` / :func:`available_provers`
  over the six tools of the evaluation (``termite`` plus five baselines);
* :class:`AnalysisResult` — one JSON-serializable result type for every
  tool, batch runner, and the CLI;
* :class:`Analysis` — the staged pipeline (frontend → invariants → cutset
  → large_block → synthesis → certificate) with per-stage timing,
  observer hooks, and a shared problem cache, topped by the
  :func:`analyze` / :func:`analyze_many` entry points.

Quickstart::

    from repro.api import AnalysisConfig, analyze

    result = analyze(
        "var x; while (x > 0) { x = x - 1; }",
        tool="termite",
        config=AnalysisConfig(lp_mode="incremental"),
    )
    assert result.proved
    print(result.ranking.pretty())
"""

from repro.api.config import (
    AnalysisConfig,
    CEX_ORACLES,
    CEX_STRATEGIES,
    ConfigError,
    DOMAINS,
    KERNELS,
    NONTERM_MODES,
    SMT_MODES,
)
from repro.api.registry import (
    CAPABILITIES,
    Prover,
    available_provers,
    canonical_name,
    get_prover,
    prover_capabilities,
    prover_summaries,
    register_prover,
)
from repro.api.request import (
    AnalysisRequest,
    RequestError,
    canonical_program_text,
)
from repro.api.result import (
    AnalysisResult,
    AnalysisStatus,
    CACHE_DISPOSITIONS,
    Provenance,
    StageTiming,
    ranking_from_dict,
    ranking_to_dict,
)
from repro.api.pipeline import (
    Analysis,
    BUILD_STAGES,
    EngineObserver,
    STAGES,
    analyze,
    analyze_many,
    results_from_task,
    run_tools_on_program,
)

# Importing the provers module is what populates the registry.
from repro.api import provers as _provers  # noqa: F401

__all__ = [
    "AnalysisConfig",
    "ConfigError",
    "SMT_MODES",
    "DOMAINS",
    "CEX_ORACLES",
    "CEX_STRATEGIES",
    "KERNELS",
    "NONTERM_MODES",
    "CAPABILITIES",
    "Prover",
    "register_prover",
    "get_prover",
    "canonical_name",
    "available_provers",
    "prover_summaries",
    "prover_capabilities",
    "AnalysisRequest",
    "RequestError",
    "canonical_program_text",
    "AnalysisResult",
    "AnalysisStatus",
    "CACHE_DISPOSITIONS",
    "Provenance",
    "StageTiming",
    "ranking_to_dict",
    "ranking_from_dict",
    "Analysis",
    "EngineObserver",
    "STAGES",
    "BUILD_STAGES",
    "analyze",
    "analyze_many",
    "run_tools_on_program",
    "results_from_task",
]
