"""Ranking functions.

An :class:`AffineRankingFunction` is one lexicographic component: for every
cut point ``k`` an affine map ``ρ(k, x) = λ_k · x + λ0_k`` (Definition 6 of
the paper, with the function allowed to depend on the control point).  A
:class:`LexicographicRankingFunction` is a tuple of such components ordered
by decreasing significance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr


@dataclass
class AffineRankingFunction:
    """One component ``ρ(k, x) = λ_k · x + λ0_k`` over a fixed cut-set."""

    variables: Tuple[str, ...]
    coefficients: Dict[str, Vector]      # cut point -> λ_k
    offsets: Dict[str, Fraction]         # cut point -> λ0_k
    strict: bool = False                 # does it decrease on every transition?

    def expression(self, location: str) -> LinExpr:
        """``ρ(location, ·)`` as a linear expression over the program variables."""
        lam = self.coefficients[location]
        terms = {name: lam[i] for i, name in enumerate(self.variables)}
        return LinExpr(terms, self.offsets[location])

    def evaluate(self, location: str, state: Mapping[str, Fraction]) -> Fraction:
        return self.expression(location).evaluate(state)

    def is_trivial(self) -> bool:
        """True when every coefficient vector is zero."""
        return all(vector.is_zero() for vector in self.coefficients.values())

    def stacked_vector(self, locations: Sequence[str]) -> Vector:
        """The concatenated λ (Definition 13) in the given cut-point order.

        Each per-location block carries the variable coefficients followed
        by the affine offset (the coefficient of the constant-one
        coordinate of the homogenised encoding).
        """
        stacked: List[Fraction] = []
        for location in locations:
            stacked.extend(self.coefficients[location])
            stacked.append(self.offsets[location])
        return Vector(stacked)

    def pretty(self) -> str:
        pieces = []
        for location in sorted(self.coefficients):
            pieces.append("ρ(%s, x) = %s" % (location, self.expression(location)))
        return "; ".join(pieces)

    def __repr__(self) -> str:
        return "AffineRankingFunction(%s%s)" % (
            self.pretty(),
            ", strict" if self.strict else "",
        )


@dataclass
class LexicographicRankingFunction:
    """A tuple ⟨ρ_1, …, ρ_m⟩ compared lexicographically (Definition 6)."""

    components: List[AffineRankingFunction] = field(default_factory=list)

    @property
    def dimension(self) -> int:
        return len(self.components)

    def evaluate(
        self, location: str, state: Mapping[str, Fraction]
    ) -> Tuple[Fraction, ...]:
        return tuple(
            component.evaluate(location, state) for component in self.components
        )

    def expressions(self, location: str) -> List[LinExpr]:
        return [component.expression(location) for component in self.components]

    def pretty(self) -> str:
        if not self.components:
            return "⟨⟩"
        return "⟨" + "; ".join(
            component.pretty() for component in self.components
        ) + "⟩"

    def __repr__(self) -> str:
        return "LexicographicRankingFunction(%s)" % self.pretty()


def lexicographic_decreases(
    before: Sequence[Fraction], after: Sequence[Fraction]
) -> bool:
    """``after ≺ before`` in the strict lexicographic order of Definition 6."""
    for former, latter in zip(before, after):
        if latter < former:
            return True
        if latter > former:
            return False
    return False
