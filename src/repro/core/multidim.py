"""Algorithm 2: lexicographic (multidimensional) ranking functions.

One component is synthesised per dimension with Algorithm 1/3; before
synthesising dimension ``d`` the transition relation is restricted to the
steps on which every previous component is constant (``λ_{d'} · u = 0``),
exactly as in the paper.  The loop stops as soon as a component is strict
(success) or when the new component is linearly dependent on the previous
ones without being strict (failure: no lexicographic linear ranking
function exists relative to the invariant — Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.lp_instance import LpStatistics
from repro.core.monodim import MonodimResult, synthesize_monodim
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.linalg.matrix import in_span
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint, Relation
from repro.smt.optimize import SearchMode


@dataclass
class MultidimResult:
    """Outcome of the lexicographic synthesis."""

    success: bool
    ranking: Optional[LexicographicRankingFunction]
    components: List[MonodimResult] = field(default_factory=list)

    @property
    def dimension(self) -> int:
        return self.ranking.dimension if self.ranking else 0


def synthesize_multidim(
    problem: TerminationProblem,
    smt_mode: str | SearchMode = SearchMode.LOCAL,
    integer_mode: bool = False,
    max_dimension: Optional[int] = None,
    max_iterations: int = 200,
    lp_statistics: Optional[LpStatistics] = None,
    lp_mode: str = "incremental",
) -> MultidimResult:
    """Run Algorithm 2 on *problem*.

    Returns a strict lexicographic linear ranking function iff one exists
    relative to the given invariants (Theorem 1); the returned function has
    minimal dimension.  Each dimension owns one persistent incremental LP
    (``lp_mode``, see :data:`repro.core.lp_instance.LP_MODES`) that grows
    row by row as its counterexample loop runs.
    """
    if max_dimension is None:
        max_dimension = problem.stacked_dimension

    components: List[MonodimResult] = []
    stacked: List[Vector] = []
    flatness_constraints: List[Constraint] = []
    ranking = LexicographicRankingFunction()

    while True:
        result = synthesize_monodim(
            problem,
            extra_constraints=flatness_constraints,
            smt_mode=smt_mode,
            integer_mode=integer_mode,
            max_iterations=max_iterations,
            lp_statistics=lp_statistics,
            lp_mode=lp_mode,
        )
        components.append(result)
        vector = result.ranking.stacked_vector(problem.cutset)

        if not result.strict:
            if vector.is_zero() or in_span(vector, stacked):
                # The new component adds nothing: by Theorem 1, no
                # lexicographic linear ranking function exists relative to
                # the invariant.
                return MultidimResult(False, None, components)

        ranking.components.append(result.ranking)
        stacked.append(vector)

        if result.strict:
            return MultidimResult(True, ranking, components)

        if len(ranking.components) >= max_dimension:
            return MultidimResult(False, None, components)

        # Restrict the next dimension to the steps where this component is
        # constant: λ_d · u = 0.
        flatness_constraints.append(
            Constraint(problem.objective(result.ranking), Relation.EQ)
        )
