"""Algorithm 2: lexicographic (multidimensional) ranking functions.

This module is now a **thin configuration** of the pluggable CEGIS
engine: the per-dimension loop (restrict the transition relation to the
steps on which every previous component is constant, synthesise the next
component, stop on a strict component or on linear dependence — exactly
as in the paper, Theorem 1) lives in
:meth:`repro.synthesis.engine.CegisEngine.synthesize_lexicographic`,
driven by a :class:`repro.synthesis.templates.LexicographicTemplate`.
:func:`synthesize_multidim` assembles the requested oracle × strategy
pieces and delegates.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.smt.optimize import SearchMode
from repro.synthesis.engine import CegisEngine, CegisObserver, MultidimResult
from repro.synthesis.engine import MonodimResult  # noqa: F401  (compat re-export)
from repro.synthesis.oracles import make_oracle
from repro.synthesis.strategies import make_strategy
from repro.synthesis.templates import LexicographicTemplate


def synthesize_multidim(
    problem: TerminationProblem,
    smt_mode: str | SearchMode = SearchMode.LOCAL,
    integer_mode: bool = False,
    max_dimension: Optional[int] = None,
    max_iterations: int = 200,
    lp_statistics: Optional[LpStatistics] = None,
    lp_mode: str = "incremental",
    kernel: str = "auto",
    oracle: str = "smt",
    cex_strategy: str = "extremal",
    cex_batch: int = 1,
    oracle_seed: int = 0,
    observers: Sequence[CegisObserver] = (),
    should_stop: Optional[Callable[[], bool]] = None,
) -> MultidimResult:
    """Run Algorithm 2 on *problem*.

    Returns a strict lexicographic linear ranking function iff one exists
    relative to the given invariants (Theorem 1); the returned function has
    minimal dimension.  Each dimension owns one persistent incremental LP
    (``lp_mode``, see :data:`repro.core.lp_instance.LP_MODES`) that grows
    row by row as its counterexample loop runs.  ``oracle`` /
    ``cex_strategy`` / ``cex_batch`` / ``oracle_seed`` select the
    counterexample source and refinement policy of every component (see
    :mod:`repro.synthesis`); the defaults replay the paper's loop exactly.
    """
    template = LexicographicTemplate(
        problem,
        integer_mode=integer_mode,
        smt_mode=smt_mode,
        max_dimension=max_dimension,
        kernel=kernel,
    )
    engine = CegisEngine(
        make_oracle(oracle, seed=oracle_seed),
        make_strategy(cex_strategy, batch=cex_batch, seed=oracle_seed),
        max_iterations=max_iterations,
        lp_mode=lp_mode,
        kernel=kernel,
        observers=observers,
        should_stop=should_stop,
    )
    return engine.synthesize_lexicographic(
        template, lp_statistics=lp_statistics
    )
