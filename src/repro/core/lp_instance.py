"""The linear-programming instance ``LP(V, Constraints(I))`` (Definition 11).

Given the set ``V`` of counterexample generators collected so far (vertices
and rays of the convex hull of one-step differences, in the stacked
``u``-space of Definition 12) and the lifted invariant constraints
``Constraints(I)`` (Definition 14), the LP

    maximise   Σ_j δ_j
    subject to γ_{k,i} ≥ 0
               0 ≤ δ_j ≤ 1
               Σ_{k,i} γ_{k,i} (v_j · e_k(a_i^k)) ≥ δ_j     for every v_j ∈ V

yields a quasi ranking function of maximal termination power
(Proposition 5): ``λ_k = Σ_i γ_{k,i} a_i^k`` and ``λ0_k = Σ_i γ_{k,i} b_i^k``.

The instance grows by **one row per counterexample** — this is the number
reported as "lines" in Table 1 of the paper, and the reason the lazy
approach beats the eager Farkas constructions by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.problem import TerminationProblem
from repro.core.ranking import AffineRankingFunction
from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr
from repro.lp.problem import LinearProgram, LpStatus, Sense


@dataclass
class LpStatistics:
    """Sizes of the LP instances solved during one synthesis run."""

    instances: int = 0
    total_rows: int = 0
    total_cols: int = 0
    max_rows: int = 0
    max_cols: int = 0

    def record(self, rows: int, cols: int) -> None:
        self.instances += 1
        self.total_rows += rows
        self.total_cols += cols
        self.max_rows = max(self.max_rows, rows)
        self.max_cols = max(self.max_cols, cols)

    @property
    def average_rows(self) -> float:
        return self.total_rows / self.instances if self.instances else 0.0

    @property
    def average_cols(self) -> float:
        return self.total_cols / self.instances if self.instances else 0.0

    def merge(self, other: "LpStatistics") -> None:
        self.instances += other.instances
        self.total_rows += other.total_rows
        self.total_cols += other.total_cols
        self.max_rows = max(self.max_rows, other.max_rows)
        self.max_cols = max(self.max_cols, other.max_cols)


@dataclass
class RankingLpSolution:
    """Outcome of one ``LP(V, Constraints(I))`` solve."""

    gammas: List[Fraction]
    deltas: List[Fraction]
    ranking: AffineRankingFunction
    all_gamma_zero: bool
    rows: int
    cols: int

    def delta_of(self, index: int) -> Fraction:
        return self.deltas[index]


class RankingLp:
    """Builder/solver for the incremental constraint system of Algorithm 1."""

    def __init__(self, problem: TerminationProblem, statistics: Optional[LpStatistics] = None):
        self.problem = problem
        self.rows = problem.invariant_rows()
        self.stacked_rows = [problem.stacked_row(row) for row in self.rows]
        self.counterexamples: List[Vector] = []
        self.statistics = statistics if statistics is not None else LpStatistics()

    # -- construction ----------------------------------------------------------------

    def add_counterexample(self, generator: Vector) -> int:
        """Add a vertex or ray generator ``v_j``; returns its index in ``V``."""
        if len(generator) != self.problem.stacked_dimension:
            raise ValueError("counterexample has the wrong dimension")
        self.counterexamples.append(generator)
        return len(self.counterexamples) - 1

    # -- solving ------------------------------------------------------------------------

    def _gamma_name(self, index: int) -> str:
        return "gamma_%d" % index

    def _delta_name(self, index: int) -> str:
        return "delta_%d" % index

    def solve(self) -> RankingLpSolution:
        """Solve the current instance (it is always feasible, Proposition 5)."""
        program = LinearProgram(Sense.MAXIMIZE)
        objective = LinExpr()
        for j in range(len(self.counterexamples)):
            objective = objective + LinExpr.variable(self._delta_name(j))
        program.objective = objective

        for i in range(len(self.rows)):
            program.declare(self._gamma_name(i))
            program.add_constraint(LinExpr.variable(self._gamma_name(i)) >= 0)
        for j in range(len(self.counterexamples)):
            program.declare(self._delta_name(j))
            program.add_constraint(LinExpr.variable(self._delta_name(j)) >= 0)
            program.add_constraint(LinExpr.variable(self._delta_name(j)) <= 1)

        for j, generator in enumerate(self.counterexamples):
            combination = LinExpr()
            for i, stacked in enumerate(self.stacked_rows):
                coefficient = generator.dot(stacked)
                if coefficient != 0:
                    combination = combination + LinExpr(
                        {self._gamma_name(i): coefficient}
                    )
            program.add_constraint(
                combination - LinExpr.variable(self._delta_name(j)) >= 0
            )

        # Table-1 statistics: one row per counterexample, one column block
        # for the γ's plus one δ per counterexample.
        rows = len(self.counterexamples)
        cols = len(self.rows) + len(self.counterexamples)
        self.statistics.record(rows, cols)

        outcome = program.solve()
        if outcome.status is not LpStatus.OPTIMAL:
            raise RuntimeError(
                "LP(V, Constraints(I)) must be feasible and bounded, got %s"
                % outcome.status
            )

        gammas = [
            outcome.assignment.get(self._gamma_name(i), Fraction(0))
            for i in range(len(self.rows))
        ]
        deltas = [
            outcome.assignment.get(self._delta_name(j), Fraction(0))
            for j in range(len(self.counterexamples))
        ]
        ranking = self._ranking_from_gammas(gammas)
        all_zero = all(value == 0 for value in gammas)
        return RankingLpSolution(
            gammas=gammas,
            deltas=deltas,
            ranking=ranking,
            all_gamma_zero=all_zero,
            rows=rows,
            cols=cols,
        )

    def _ranking_from_gammas(self, gammas: Sequence[Fraction]) -> AffineRankingFunction:
        """``λ_k = Σ_i γ_{k,i} a_i^k`` over the homogenised space.

        The coefficient picked up by the constant-one coordinate is the
        affine offset of the per-location component.
        """
        from repro.core.problem import ONE_COORDINATE

        variables = self.problem.variables
        coefficients: Dict[str, Vector] = {}
        offsets: Dict[str, Fraction] = {}
        for location in self.problem.cutset:
            lam = Vector.zeros(len(variables))
            offset = Fraction(0)
            for gamma, row in zip(gammas, self.rows):
                if gamma == 0 or row.location != location:
                    continue
                lam = lam + Vector(
                    row.normal.coefficient(name) for name in variables
                ) * gamma
                offset += gamma * row.normal.coefficient(ONE_COORDINATE)
            coefficients[location] = lam
            offsets[location] = offset
        return AffineRankingFunction(variables, coefficients, offsets)
