"""The linear-programming instance ``LP(V, Constraints(I))`` (Definition 11).

Given the set ``V`` of counterexample generators collected so far (vertices
and rays of the convex hull of one-step differences, in the stacked
``u``-space of Definition 12) and the lifted invariant constraints
``Constraints(I)`` (Definition 14), the LP

    maximise   Σ_j δ_j
    subject to γ_{k,i} ≥ 0
               0 ≤ δ_j ≤ 1
               Σ_{k,i} γ_{k,i} (v_j · e_k(a_i^k)) ≥ δ_j     for every v_j ∈ V

yields a quasi ranking function of maximal termination power
(Proposition 5): ``λ_k = Σ_i γ_{k,i} a_i^k`` and ``λ0_k = Σ_i γ_{k,i} b_i^k``.

The instance grows by **one row per counterexample** — this is the number
reported as "lines" in Table 1 of the paper, and the reason the lazy
approach beats the eager Farkas constructions by orders of magnitude.

Because the instance only ever *grows*, the default solving mode keeps a
persistent :class:`~repro.lp.simplex.SimplexState` alive across the
counterexample loop: each new generator appends one row (plus its δ
column) to the already-solved tableau and re-solves with a handful of
dual/primal pivots instead of a cold two-phase solve.  Three modes exist:

* ``"incremental"`` (default) — warm-started persistent LP;
* ``"cold"`` — rebuild and re-solve from scratch every iteration (the
  seed behaviour, kept for the warm-vs-cold ablation);
* ``"audit"`` — warm-start *and* shadow-solve cold, asserting that both
  reach the same optimum; the measured pivot difference feeds the
  ``pivots_saved`` counter.  This is the mode the regression tests run.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence

from repro.core.problem import TerminationProblem
from repro.core.ranking import AffineRankingFunction
from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr
from repro.lp.problem import LinearProgram, LpResult, LpStatus, Sense
from repro.lp.simplex import SimplexState

#: Valid values for the ``mode`` argument of :class:`RankingLp` (and the
#: ``lp_mode`` argument threaded down from the provers).
LP_MODES = ("incremental", "cold", "audit")


@dataclass
class LpStatistics:
    """Sizes and solve costs of the LP instances of one synthesis run."""

    instances: int = 0
    total_rows: int = 0
    total_cols: int = 0
    max_rows: int = 0
    max_cols: int = 0
    pivots: int = 0
    warm_solves: int = 0
    cold_solves: int = 0
    pivots_saved: int = 0
    #: LP entailment solves the projection layer's syntactic/Kohler
    #: pruning made unnecessary during this run (attributed by the
    #: analysis pipeline from the process-wide projection counters).
    redundancy_lp_saved: int = 0
    #: Unified CEGIS-engine counters (see :mod:`repro.synthesis.engine`):
    #: counterexample-oracle queries issued, generator rows added to
    #: ``LP(V, Constraints(I))``, and flat directions absorbed into the
    #: ``AvoidSpace`` basis.
    oracle_queries: int = 0
    cex_rows: int = 0
    flat_directions: int = 0
    #: Kernel observability (attributed by the analysis pipeline from the
    #: thread-local :func:`repro.linalg.packed.kernel_counters`): how many
    #: kernel resolutions picked the stacked int64 path vs the exact
    #: sparse path, how many pivots ran as fused stacked sweeps vs on the
    #: per-row path, and how many fused ops fell back to exact bignum
    #: arithmetic under the int64 overflow bound.
    resolved_packed: int = 0
    resolved_exact: int = 0
    stacked_pivots: int = 0
    row_pivots: int = 0
    overflow_fallbacks: int = 0

    def record(self, rows: int, cols: int) -> None:
        self.instances += 1
        self.total_rows += rows
        self.total_cols += cols
        self.max_rows = max(self.max_rows, rows)
        self.max_cols = max(self.max_cols, cols)

    def record_solve(self, pivots: int, warm: bool) -> None:
        """Account one simplex solve (its pivots, and warm vs cold)."""
        self.pivots += pivots
        if warm:
            self.warm_solves += 1
        else:
            self.cold_solves += 1

    @property
    def average_rows(self) -> float:
        return self.total_rows / self.instances if self.instances else 0.0

    @property
    def average_cols(self) -> float:
        return self.total_cols / self.instances if self.instances else 0.0

    @property
    def kernel_chosen(self) -> str:
        """Which kernel the run's LP/projection work actually resolved to.

        ``"packed"`` / ``"exact"`` when every resolution agreed,
        ``"mixed"`` when both paths ran (e.g. ``auto`` crossing the
        width threshold per instance), ``""`` when nothing resolved.
        """
        if self.resolved_packed and self.resolved_exact:
            return "mixed"
        if self.resolved_packed:
            return "packed"
        if self.resolved_exact:
            return "exact"
        return ""

    def to_dict(self) -> dict:
        """Plain-JSON view: the raw counters plus derived averages.

        The derived ``average_rows``/``average_cols`` keys are included
        for human readers and dashboards; :meth:`from_dict` ignores them,
        so the raw counters round-trip exactly.
        """
        return {
            "instances": self.instances,
            "total_rows": self.total_rows,
            "total_cols": self.total_cols,
            "max_rows": self.max_rows,
            "max_cols": self.max_cols,
            "pivots": self.pivots,
            "warm_solves": self.warm_solves,
            "cold_solves": self.cold_solves,
            "pivots_saved": self.pivots_saved,
            "redundancy_lp_saved": self.redundancy_lp_saved,
            "oracle_queries": self.oracle_queries,
            "cex_rows": self.cex_rows,
            "flat_directions": self.flat_directions,
            "resolved_packed": self.resolved_packed,
            "resolved_exact": self.resolved_exact,
            "stacked_pivots": self.stacked_pivots,
            "row_pivots": self.row_pivots,
            "overflow_fallbacks": self.overflow_fallbacks,
            "average_rows": self.average_rows,
            "average_cols": self.average_cols,
            "kernel_chosen": self.kernel_chosen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LpStatistics":
        """Inverse of :meth:`to_dict` (derived keys are recomputed)."""
        return cls(
            instances=data.get("instances", 0),
            total_rows=data.get("total_rows", 0),
            total_cols=data.get("total_cols", 0),
            max_rows=data.get("max_rows", 0),
            max_cols=data.get("max_cols", 0),
            pivots=data.get("pivots", 0),
            warm_solves=data.get("warm_solves", 0),
            cold_solves=data.get("cold_solves", 0),
            pivots_saved=data.get("pivots_saved", 0),
            redundancy_lp_saved=data.get("redundancy_lp_saved", 0),
            oracle_queries=data.get("oracle_queries", 0),
            cex_rows=data.get("cex_rows", 0),
            flat_directions=data.get("flat_directions", 0),
            resolved_packed=data.get("resolved_packed", 0),
            resolved_exact=data.get("resolved_exact", 0),
            stacked_pivots=data.get("stacked_pivots", 0),
            row_pivots=data.get("row_pivots", 0),
            overflow_fallbacks=data.get("overflow_fallbacks", 0),
        )

    def merge(self, other: "LpStatistics") -> None:
        self.instances += other.instances
        self.total_rows += other.total_rows
        self.total_cols += other.total_cols
        self.max_rows = max(self.max_rows, other.max_rows)
        self.max_cols = max(self.max_cols, other.max_cols)
        self.pivots += other.pivots
        self.warm_solves += other.warm_solves
        self.cold_solves += other.cold_solves
        self.pivots_saved += other.pivots_saved
        self.redundancy_lp_saved += other.redundancy_lp_saved
        self.oracle_queries += other.oracle_queries
        self.cex_rows += other.cex_rows
        self.flat_directions += other.flat_directions
        self.resolved_packed += other.resolved_packed
        self.resolved_exact += other.resolved_exact
        self.stacked_pivots += other.stacked_pivots
        self.row_pivots += other.row_pivots
        self.overflow_fallbacks += other.overflow_fallbacks


@dataclass
class RankingLpSolution:
    """Outcome of one ``LP(V, Constraints(I))`` solve."""

    gammas: List[Fraction]
    deltas: List[Fraction]
    ranking: AffineRankingFunction
    all_gamma_zero: bool
    rows: int
    cols: int

    def delta_of(self, index: int) -> Fraction:
        return self.deltas[index]


class RankingLp:
    """Builder/solver for the incremental constraint system of Algorithm 1."""

    def __init__(
        self,
        problem: TerminationProblem,
        statistics: Optional[LpStatistics] = None,
        mode: str = "incremental",
        kernel: str = "auto",
    ):
        if mode not in LP_MODES:
            raise ValueError(
                "unknown LP mode %r (available: %s)" % (mode, ", ".join(LP_MODES))
            )
        self.problem = problem
        self.mode = mode
        #: Row-representation knob of the underlying simplex (see
        #: :data:`repro.linalg.packed.KERNELS`).  Audit mode's shadow
        #: solve always runs the exact kernel, so ``mode="audit"`` with
        #: ``kernel="packed"`` cross-checks the packed fast path against
        #: exact bignum arithmetic on every fresh instance.
        self.kernel = kernel
        self.rows = problem.invariant_rows()
        self.stacked_rows = [problem.stacked_row(row) for row in self.rows]
        self.counterexamples: List[Vector] = []
        self.statistics = statistics if statistics is not None else LpStatistics()
        self._state: Optional[SimplexState] = None
        self._synced = 0  # counterexamples already pushed into the state
        self._objective = LinExpr()

    # -- construction ----------------------------------------------------------------

    def add_counterexample(self, generator: Vector) -> int:
        """Add a vertex or ray generator ``v_j``; returns its index in ``V``."""
        if len(generator) != self.problem.stacked_dimension:
            raise ValueError("counterexample has the wrong dimension")
        self.counterexamples.append(generator)
        return len(self.counterexamples) - 1

    # -- solving ------------------------------------------------------------------------

    def _gamma_name(self, index: int) -> str:
        return "gamma_%d" % index

    def _delta_name(self, index: int) -> str:
        return "delta_%d" % index

    def _generator_row(self, j: int) -> LinExpr:
        """``Σ_i γ_i (v_j · stacked_i) − δ_j`` (constrained ``≥ 0``)."""
        generator = self.counterexamples[j]
        combination = LinExpr()
        for i, stacked in enumerate(self.stacked_rows):
            coefficient = generator.dot(stacked)
            if coefficient != 0:
                combination = combination + LinExpr(
                    {self._gamma_name(i): coefficient}
                )
        return combination - LinExpr.variable(self._delta_name(j))

    def solve(self) -> RankingLpSolution:
        """Solve the current instance (it is always feasible, Proposition 5)."""
        # Table-1 statistics: one row per counterexample, one column block
        # for the γ's plus one δ per counterexample.  A repeat solve with
        # no new counterexample returns the persistent state's cached
        # result: it must not be accounted as another instance/solve, nor
        # shadow-solved again in audit mode (cold mode has no cache and
        # genuinely re-solves, so it keeps recording every call).
        rows = len(self.counterexamples)
        cols = len(self.rows) + len(self.counterexamples)
        fresh = self._state is None or self._synced < len(self.counterexamples)
        if self.mode == "cold" or fresh:
            self.statistics.record(rows, cols)

        if self.mode == "cold":
            outcome = self._solve_cold()
        else:
            outcome = self._solve_incremental(fresh)
            if self.mode == "audit" and fresh:
                self._audit_against_cold(outcome)
        if outcome.status is not LpStatus.OPTIMAL:
            raise RuntimeError(
                "LP(V, Constraints(I)) must be feasible and bounded, got %s"
                % outcome.status
            )

        gammas = [
            outcome.assignment.get(self._gamma_name(i), Fraction(0))
            for i in range(len(self.rows))
        ]
        deltas = [
            outcome.assignment.get(self._delta_name(j), Fraction(0))
            for j in range(len(self.counterexamples))
        ]
        ranking = self._ranking_from_gammas(gammas)
        all_zero = all(value == 0 for value in gammas)
        return RankingLpSolution(
            gammas=gammas,
            deltas=deltas,
            ranking=ranking,
            all_gamma_zero=all_zero,
            rows=rows,
            cols=cols,
        )

    # -- the three solving strategies -------------------------------------------------

    def _solve_incremental(self, fresh: bool) -> LpResult:
        """Push new counterexamples into the persistent LP and re-solve.

        γ's and δ's are declared nonnegative (single standard-form columns)
        so the explicit ``γ ≥ 0`` / ``δ ≥ 0`` rows of the textbook
        formulation disappear into the column bounds; each counterexample
        contributes its ``δ_j ≤ 1`` bound and its generator row.  When
        *fresh* is false the state returns its cached result and no solve
        is accounted.
        """
        if self._state is None:
            self._state = SimplexState(Sense.MAXIMIZE, kernel=self.kernel)
            for i in range(len(self.rows)):
                self._state.declare(self._gamma_name(i), nonnegative=True)
        state = self._state
        for j in range(self._synced, len(self.counterexamples)):
            delta = self._delta_name(j)
            state.declare(delta, nonnegative=True)
            state.add_constraint(LinExpr.variable(delta) <= 1)
            state.add_constraint(self._generator_row(j) >= 0)
            self._objective = self._objective + LinExpr.variable(delta)
        self._synced = len(self.counterexamples)
        state.set_objective(self._objective)
        outcome = state.solve()
        if fresh:
            self.statistics.record_solve(
                outcome.pivots, warm=state.last_solve_warm
            )
        return outcome

    def _build_cold_program(self) -> LinearProgram:
        """The textbook formulation rebuilt from scratch (seed behaviour)."""
        program = LinearProgram(Sense.MAXIMIZE)
        objective = LinExpr()
        for j in range(len(self.counterexamples)):
            objective = objective + LinExpr.variable(self._delta_name(j))
        program.objective = objective

        for i in range(len(self.rows)):
            program.declare(self._gamma_name(i))
            program.add_constraint(LinExpr.variable(self._gamma_name(i)) >= 0)
        for j in range(len(self.counterexamples)):
            program.declare(self._delta_name(j))
            program.add_constraint(LinExpr.variable(self._delta_name(j)) >= 0)
            program.add_constraint(LinExpr.variable(self._delta_name(j)) <= 1)
        for j in range(len(self.counterexamples)):
            program.add_constraint(self._generator_row(j) >= 0)
        return program

    def _solve_cold(self) -> LpResult:
        outcome = self._build_cold_program().solve(kernel=self.kernel)
        self.statistics.record_solve(outcome.pivots, warm=False)
        return outcome

    def _audit_against_cold(self, warm_outcome: LpResult) -> None:
        """Shadow-solve from scratch and check the warm optimum against it.

        Both formulations describe the same polytope, so the *optimal
        value* must agree exactly (Fraction equality, no tolerance); the
        warm assignment must also be a feasible point of the cold program
        achieving that value.  The measured pivot difference is the saving
        the warm start bought on this instance.

        The shadow solve always runs the **exact** kernel, whatever
        ``self.kernel`` says: with ``kernel="packed"`` this is the
        bit-identical packed-vs-exact cross-check of the int64 fast path.
        """
        program = self._build_cold_program()
        cold_outcome = program.solve(kernel="exact")
        if cold_outcome.status is not warm_outcome.status:
            raise RuntimeError(
                "warm/cold status mismatch: %s vs %s"
                % (warm_outcome.status, cold_outcome.status)
            )
        if warm_outcome.status is LpStatus.OPTIMAL:
            if cold_outcome.objective != warm_outcome.objective:
                raise RuntimeError(
                    "warm/cold optimum mismatch: %s vs %s"
                    % (warm_outcome.objective, cold_outcome.objective)
                )
            for constraint in program.constraints:
                if not constraint.satisfied_by(warm_outcome.assignment):
                    raise RuntimeError(
                        "warm optimum violates cold constraint %s" % constraint
                    )
        self.statistics.pivots_saved += cold_outcome.pivots - warm_outcome.pivots

    def _ranking_from_gammas(self, gammas: Sequence[Fraction]) -> AffineRankingFunction:
        """``λ_k = Σ_i γ_{k,i} a_i^k`` over the homogenised space.

        The coefficient picked up by the constant-one coordinate is the
        affine offset of the per-location component.
        """
        from repro.core.problem import ONE_COORDINATE

        variables = self.problem.variables
        coefficients: Dict[str, Vector] = {}
        offsets: Dict[str, Fraction] = {}
        for location in self.problem.cutset:
            lam = Vector.zeros(len(variables))
            offset = Fraction(0)
            for gamma, row in zip(gammas, self.rows):
                if gamma == 0 or row.location != location:
                    continue
                lam = lam + Vector(
                    row.normal.coefficient(name) for name in variables
                ) * gamma
                offset += gamma * row.normal.coefficient(ONE_COORDINATE)
            coefficients[location] = lam
            offsets[location] = offset
        return AffineRankingFunction(variables, coefficients, offsets)
