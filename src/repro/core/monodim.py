"""Algorithm 1 / Algorithm 3: one quasi ranking function of maximal power.

The loop alternates between

* an optimising SMT query
  ``Sat(Φ ∧ AvoidSpace(u, B) ∧ λ·u ≤ 0)`` minimising ``λ·u`` — a
  counterexample is a transition on which the current candidate fails to
  decrease strictly, and minimisation makes it *extremal* (a vertex of one
  disjunct of the convex hull of one-step differences, or a ray when the
  objective is unbounded, §4.2), and
* the LP ``LP(V, Constraints(I))`` of Definition 11, which recomputes the
  quasi ranking function of maximal termination power over the generators
  collected so far.

Flat directions (counterexamples whose δ is forced to 0, i.e. every quasi
ranking function is constant along them) are accumulated in the basis ``B``
and excluded from future queries through ``AvoidSpace`` (§4.1), which is
what makes the loop terminate even when no strict ranking function exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.core.lp_instance import LpStatistics, RankingLp
from repro.core.problem import TerminationProblem
from repro.core.ranking import AffineRankingFunction
from repro.linalg.matrix import in_span, orthogonal_complement
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, conjunction, disjunction
from repro.smt.optimize import OptimizingSmtSolver, SearchMode


@dataclass
class MonodimStatistics:
    """Counters for one run of the mono-dimensional loop.

    ``lp`` carries this component's own LP solve costs (pivots, warm vs
    cold solves) so the evaluation harness can report how much of the
    counterexample loop the warm-started incremental LP saved.
    """

    iterations: int = 0
    counterexamples: int = 0
    rays: int = 0
    flat_directions: int = 0
    lp: LpStatistics = field(default_factory=LpStatistics)


@dataclass
class MonodimResult:
    """Output of Algorithm 1/3: ``(λ, λ0, strict?)`` plus diagnostics."""

    ranking: AffineRankingFunction
    strict: bool
    flat_basis: List[Vector] = field(default_factory=list)
    statistics: MonodimStatistics = field(default_factory=MonodimStatistics)

    @property
    def is_trivial(self) -> bool:
        return self.ranking.is_trivial()


class MaxIterationsExceeded(RuntimeError):
    """The synthesis loop exceeded its iteration budget.

    With an SMT solver returning generators of the transition polyhedra the
    loop provably terminates (Lemma 1); the budget is a safety net for the
    fallback paths of the reproduction's own OMT layer.
    """


def synthesize_monodim(
    problem: TerminationProblem,
    extra_constraints: Sequence[Constraint] = (),
    smt_mode: str | SearchMode = SearchMode.LOCAL,
    integer_mode: bool = False,
    max_iterations: int = 200,
    lp_statistics: Optional[LpStatistics] = None,
    lp_mode: str = "incremental",
) -> MonodimResult:
    """Run Algorithm 1 (single cut point) / Algorithm 3 (general case).

    ``extra_constraints`` restricts the transition relation — Algorithm 2
    passes the flatness constraints ``λ_{d'} · u = 0`` of the previous
    lexicographic components here.  With ``integer_mode`` the SMT queries
    treat the program variables as integers (more precise, slower);
    otherwise the rational relaxation is used, which is always sound.
    ``lp_mode`` selects how ``LP(V, Constraints(I))`` is re-solved as
    counterexamples accumulate (see :data:`repro.core.lp_instance.LP_MODES`);
    the default keeps one warm-started LP alive for the whole loop.
    """
    statistics = MonodimStatistics()
    ranking_lp = RankingLp(problem, statistics.lp, mode=lp_mode)
    transition_formula = problem.transition_formula()
    flat_basis: List[Vector] = []

    try:
        current, deltas = _counterexample_loop(
            problem,
            ranking_lp,
            statistics,
            transition_formula,
            extra_constraints,
            flat_basis,
            problem.zero_ranking(),
            integer_mode,
            smt_mode,
            max_iterations,
        )
    finally:
        # Merge even when the iteration budget blows: the caller's shared
        # statistics must reflect the LP work actually performed.
        if lp_statistics is not None:
            lp_statistics.merge(statistics.lp)

    strict = bool(deltas) and all(value == 1 for value in deltas)
    if strict:
        strict = not _has_stuttering_step(
            problem, transition_formula, extra_constraints, integer_mode
        )
    current.strict = strict
    return MonodimResult(
        ranking=current,
        strict=strict,
        flat_basis=flat_basis,
        statistics=statistics,
    )


def _counterexample_loop(
    problem: TerminationProblem,
    ranking_lp: RankingLp,
    statistics: MonodimStatistics,
    transition_formula: Formula,
    extra_constraints: Sequence[Constraint],
    flat_basis: List[Vector],
    current,
    integer_mode: bool,
    smt_mode: str | SearchMode,
    max_iterations: int,
):
    """The alternation of Algorithm 1: SMT counterexample, then LP."""
    difference_names = problem.difference_variables()
    deltas: List[Fraction] = []
    finished = False

    while not finished:
        statistics.iterations += 1
        if statistics.iterations > max_iterations:
            raise MaxIterationsExceeded(
                "mono-dimensional synthesis exceeded %d iterations"
                % max_iterations
            )
        objective = problem.objective(current)
        query = _build_query(
            problem,
            transition_formula,
            extra_constraints,
            flat_basis,
            objective,
            integer_mode,
            smt_mode,
        )
        outcome = query.minimize(objective)
        if outcome.is_unsat:
            finished = True
            break

        model = outcome.model
        witness = problem.difference_vector(model)
        statistics.counterexamples += 1
        ranking_lp.add_counterexample(witness)
        witness_index = len(ranking_lp.counterexamples) - 1

        if outcome.unbounded:
            ray = Vector(
                outcome.ray.get(name, Fraction(0)) for name in difference_names
            )
            if not ray.is_zero():
                statistics.rays += 1
                ranking_lp.add_counterexample(ray)

        solution = ranking_lp.solve()
        deltas = solution.deltas
        if solution.all_gamma_zero and all(value == 0 for value in deltas):
            # No quasi ranking function separates any collected generator:
            # the component is finished (λ stays as computed, possibly 0).
            finished = True
            current = solution.ranking
            break

        current = solution.ranking
        if solution.delta_of(witness_index) == 0:
            if not witness.is_zero() and not in_span(witness, flat_basis):
                flat_basis.append(witness)
                statistics.flat_directions += 1

    return current, deltas


# ---------------------------------------------------------------------------
# Query construction
# ---------------------------------------------------------------------------


def _build_query(
    problem: TerminationProblem,
    transition_formula: Formula,
    extra_constraints: Sequence[Constraint],
    flat_basis: Sequence[Vector],
    objective: LinExpr,
    integer_mode: bool,
    smt_mode: str | SearchMode,
) -> OptimizingSmtSolver:
    solver = OptimizingSmtSolver(
        integer_variables=problem.smt_integer_variables() if integer_mode else (),
        mode=smt_mode,
    )
    solver.assert_formula(transition_formula)
    for constraint in extra_constraints:
        solver.assert_formula(constraint)
    solver.assert_formula(avoid_space(problem, flat_basis))
    solver.assert_formula(objective <= 0)
    return solver


def avoid_space(
    problem: TerminationProblem, flat_basis: Sequence[Vector]
) -> Formula:
    """``AvoidSpace(u, B)``: the block vector must leave ``span(B)``.

    Implemented through the orthogonal complement: ``u ∈ span(B)`` iff
    ``w·u = 0`` for every ``w`` in a basis of ``span(B)^⊥``, so the
    avoidance condition is the disjunction of the dis-equalities
    ``w·u < 0 ∨ w·u > 0``.  With ``B = ∅`` this is simply ``u ≠ 0``, which
    also rules out stuttering counterexamples ``(x, x)``.
    """
    names = problem.difference_variables()
    dimension = problem.stacked_dimension
    complement = orthogonal_complement(list(flat_basis), dimension)
    disequalities: List[Formula] = []
    for normal in complement:
        expr = LinExpr(
            {name: normal[i] for i, name in enumerate(names) if normal[i] != 0}
        )
        disequalities.append(disjunction([expr < 0, expr > 0]))
    return disjunction(disequalities)


def _has_stuttering_step(
    problem: TerminationProblem,
    transition_formula: Formula,
    extra_constraints: Sequence[Constraint],
    integer_mode: bool,
) -> bool:
    """Whether ``Φ`` admits a step with ``u = 0`` (see end of Algorithm 1)."""
    solver = OptimizingSmtSolver(
        integer_variables=problem.smt_integer_variables() if integer_mode else ()
    )
    solver.assert_formula(transition_formula)
    for constraint in extra_constraints:
        solver.assert_formula(constraint)
    zero = conjunction(
        [
            LinExpr.variable(name).eq(0)
            for name in problem.difference_variables()
        ]
    )
    solver.assert_formula(zero)
    return solver.check().is_sat
