"""Algorithm 1 / Algorithm 3: one quasi ranking function of maximal power.

This module is now a **thin configuration** of the pluggable CEGIS
engine in :mod:`repro.synthesis`: the counterexample loop itself lives
in :class:`repro.synthesis.engine.CegisEngine`, the optimising SMT query
construction in :mod:`repro.synthesis.oracles`, and the candidate space
in :class:`repro.synthesis.templates.LinearTemplate`.
:func:`synthesize_monodim` assembles the paper's default pieces (``smt``
oracle, ``extremal`` strategy, one row per counterexample) — or any of
the ablation combinations — and delegates.

The loop alternates between

* an optimising SMT query
  ``Sat(Φ ∧ AvoidSpace(u, B) ∧ λ·u ≤ 0)`` minimising ``λ·u`` — a
  counterexample is a transition on which the current candidate fails to
  decrease strictly, and minimisation makes it *extremal* (a vertex of one
  disjunct of the convex hull of one-step differences, or a ray when the
  objective is unbounded, §4.2), and
* the LP ``LP(V, Constraints(I))`` of Definition 11, which recomputes the
  quasi ranking function of maximal termination power over the generators
  collected so far.

Flat directions (counterexamples whose δ is forced to 0, i.e. every quasi
ranking function is constant along them) are accumulated in the basis ``B``
and excluded from future queries through ``AvoidSpace`` (§4.1), which is
what makes the loop terminate even when no strict ranking function exists.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.linexpr.constraint import Constraint
from repro.smt.optimize import SearchMode
from repro.synthesis.engine import CegisEngine, CegisObserver, MonodimResult
from repro.synthesis.engine import MaxIterationsExceeded  # noqa: F401  (compat re-export)
from repro.synthesis.engine import MonodimStatistics  # noqa: F401  (compat re-export)
from repro.synthesis.oracles import make_oracle
from repro.synthesis.strategies import make_strategy
from repro.synthesis.templates import LinearTemplate


def synthesize_monodim(
    problem: TerminationProblem,
    extra_constraints: Sequence[Constraint] = (),
    smt_mode: str | SearchMode = SearchMode.LOCAL,
    integer_mode: bool = False,
    max_iterations: int = 200,
    lp_statistics: Optional[LpStatistics] = None,
    lp_mode: str = "incremental",
    kernel: str = "auto",
    oracle: str = "smt",
    cex_strategy: str = "extremal",
    cex_batch: int = 1,
    oracle_seed: int = 0,
    observers: Sequence[CegisObserver] = (),
) -> MonodimResult:
    """Run Algorithm 1 (single cut point) / Algorithm 3 (general case).

    ``extra_constraints`` restricts the transition relation — Algorithm 2
    passes the flatness constraints ``λ_{d'} · u = 0`` of the previous
    lexicographic components here.  With ``integer_mode`` the SMT queries
    treat the program variables as integers (more precise, slower);
    otherwise the rational relaxation is used, which is always sound.
    ``lp_mode`` selects how ``LP(V, Constraints(I))`` is re-solved as
    counterexamples accumulate (see :data:`repro.core.lp_instance.LP_MODES`);
    the default keeps one warm-started LP alive for the whole loop.

    ``oracle`` / ``cex_strategy`` / ``cex_batch`` / ``oracle_seed`` pick
    the counterexample source and selection policy (see
    :mod:`repro.synthesis.oracles` and :mod:`repro.synthesis.strategies`);
    the defaults replay the paper's extremal-counterexample loop exactly.
    """
    template = LinearTemplate(
        problem, integer_mode=integer_mode, smt_mode=smt_mode, kernel=kernel
    )
    engine = CegisEngine(
        make_oracle(oracle, seed=oracle_seed),
        make_strategy(cex_strategy, batch=cex_batch, seed=oracle_seed),
        max_iterations=max_iterations,
        lp_mode=lp_mode,
        kernel=kernel,
        observers=observers,
    )
    return engine.synthesize_component(
        template,
        extra_constraints=extra_constraints,
        lp_statistics=lp_statistics,
    )
