"""Independent checking of ranking-function certificates.

A synthesised lexicographic ranking function is only worth something if it
can be re-checked without trusting the synthesis loop.  The checker poses
the two defining conditions of Definition 6 as SMT queries over the very
same large-block encoding:

* **decrease**: there is no block transition on which the tuple fails to
  decrease lexicographically, and
* **nonnegativity**: no component is negative on a state satisfying the
  invariant of its cut point (restricted, for component ``d``, to the
  states on which the previous components are constant along a step —
  matching the restricted-invariant reading of §8 / Definition 6(3) used
  by the synthesiser).

Both queries must be UNSAT for the certificate to be accepted.

This check shares the SMT stack with the synthesiser, which makes it
fast but not independent: a bug in the solver could hide a bug in the
synthesis.  :mod:`repro.checking.checker` provides the second opinion —
the same Definition-6 obligations discharged by a self-contained exact
Gauss/Fourier–Motzkin engine (with witness states on rejection); it is
what ``repro check``, the differential fuzz harness, and the baselines'
``certify`` use.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, conjunction, disjunction
from repro.linexpr.transform import prime_suffix
from repro.smt.solver import SmtSolver


def check_certificate(
    problem: TerminationProblem,
    ranking: LexicographicRankingFunction,
    integer_mode: bool = False,
) -> bool:
    """Verify decrease and nonnegativity of *ranking* on *problem*."""
    if ranking.dimension == 0:
        return not problem.blocks
    return _check_decrease(problem, ranking, integer_mode) and _check_nonnegative(
        problem, ranking, integer_mode
    )


def _integer_declarations(problem: TerminationProblem, integer_mode: bool):
    return problem.smt_integer_variables() if integer_mode else ()


def _check_decrease(
    problem: TerminationProblem,
    ranking: LexicographicRankingFunction,
    integer_mode: bool,
) -> bool:
    """UNSAT of "some block transition does not decrease lexicographically"."""
    for block in problem.blocks:
        before = [
            component.expression(block.source)
            for component in ranking.components
        ]
        after = [
            component.expression(block.target).rename(
                {name: prime_suffix(name) for name in problem.variables}
            )
            for component in ranking.components
        ]
        solver = SmtSolver(
            integer_variables=_integer_declarations(problem, integer_mode)
        )
        solver.assert_formula(
            conjunction(problem.invariant(block.source).constraints)
        )
        solver.assert_formula(block.formula)
        solver.assert_formula(_not_lexicographically_less(after, before))
        if solver.check().is_sat:
            return False
    return True


def _not_lexicographically_less(
    after: Sequence[LinExpr], before: Sequence[LinExpr]
) -> Formula:
    """``¬(after ≺ before)`` for tuples compared lexicographically.

    ``after ⊀ before`` holds iff for every prefix where all earlier
    components are equal, the current component does not strictly decrease
    — encoded as the disjunction over the position of the first strict
    *increase-or-equal-everywhere* pattern:

        (a_1 ≥ b_1 ∧ a_1 ≠ b_1)                      -- first component grew
      ∨ (a_1 = b_1 ∧ a_2 > b_2) ∨ …                  -- later component grew
      ∨ (a_1 = b_1 ∧ … ∧ a_m = b_m)                  -- nothing decreased
    """
    cases: List[Formula] = []
    for position in range(len(before)):
        prefix_equal = [
            after[j].eq(before[j]) for j in range(position)
        ]
        cases.append(
            conjunction(prefix_equal + [after[position] > before[position]])
        )
    cases.append(
        conjunction([after[j].eq(before[j]) for j in range(len(before))])
    )
    return disjunction(cases)


def _check_nonnegative(
    problem: TerminationProblem,
    ranking: LexicographicRankingFunction,
    integer_mode: bool,
) -> bool:
    """UNSAT of "some component is negative on the invariant of its cut point".

    The synthesiser obtains every component from the Farkas cone of the
    invariant's constraints (Equation 2 / Proposition 5), so nonnegativity
    holds over the *whole* invariant; the check mirrors Definition 6(3)
    directly.
    """
    for location in problem.cutset:
        invariant = problem.invariant(location)
        if invariant.is_empty():
            continue
        for component in ranking.components:
            solver = SmtSolver(
                integer_variables=_integer_declarations(problem, integer_mode)
            )
            solver.assert_formula(conjunction(invariant.constraints))
            solver.assert_formula(component.expression(location) < 0)
            if solver.check().is_sat:
                return False
    return True
