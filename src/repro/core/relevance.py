"""Restricting invariants to the states that can take another step.

The ranking functions of Definition 6 must be nonnegative on the invariant
of their cut point.  Taken literally with a weak invariant (for instance
the universe, when nothing is known about the initial state of
``while (x > 0) x--``) this makes even trivial loops unprovable, because no
affine function is nonnegative on the whole space.

The original toolchain does not hit this problem because its front-end
places the cut points *after* the loop test, so the guard is part of the
invariant.  The reproduction keeps arbitrary cut points and instead
restricts each cut-point invariant to an over-approximation of the states
*from which a cycle-relevant step is possible*: the polyhedral join, over
the outgoing CFA edges that can reach the cut-set again, of
``I_k ∧ guard``.

This restriction is sound for termination: every state occurring on an
infinite execution takes another step through one of those edges, so it
lies in the restricted set; a function that decreases on every step and is
nonnegative on the restricted set therefore still bounds the number of
steps.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.invariants.invariant_map import InvariantMap
from repro.linexpr.constraint import Constraint
from repro.polyhedra.polyhedron import Polyhedron
from repro.program.automaton import ControlFlowAutomaton
from repro.program.transition import Transition


def restrict_to_guarded_states(
    automaton: ControlFlowAutomaton,
    cutset: Sequence[str],
    invariants: InvariantMap,
) -> InvariantMap:
    """Intersect each cut-point invariant with its outgoing relevant guards."""
    cut = set(cutset)
    restricted = InvariantMap(automaton.variables)
    for location in cutset:
        base = invariants.get(location)
        relevant = [
            transition
            for transition in automaton.outgoing(location)
            if _reaches_cutset(automaton, transition, cut)
        ]
        if not relevant:
            restricted.set(location, base)
            continue
        domain = Polyhedron.empty(automaton.variables)
        for transition in relevant:
            domain = domain.join(
                _guarded_states(automaton, base, transition)
            )
        if domain.is_empty():
            restricted.set(location, base)
        else:
            restricted.set(location, domain.minimized())
    # Locations outside the cut-set keep their original invariants.
    for location, value in invariants.items():
        if location not in cut:
            restricted.set(location, value)
    return restricted


def _guarded_states(
    automaton: ControlFlowAutomaton,
    base: Polyhedron,
    transition: Transition,
) -> Polyhedron:
    """``I_k ∧ guard`` when the guard is a conjunction, else ``I_k``."""
    guard = transition.guard_constraints()
    if guard is None:
        return base
    prepared: List[Constraint] = []
    for constraint in guard:
        if constraint.variables() - set(automaton.variables):
            # Guards over havoc inputs do not restrict the program state.
            continue
        if constraint.is_strict():
            if constraint.variables() <= automaton.integer_variables:
                prepared.append(constraint.tighten_for_integers().weaken())
            else:
                prepared.append(constraint.weaken())
        else:
            prepared.append(constraint)
    return base.intersect_constraints(prepared)


def _reaches_cutset(
    automaton: ControlFlowAutomaton, transition: Transition, cut: Set[str]
) -> bool:
    """Whether *transition* can start a path that reaches the cut-set again."""
    if transition.target in cut:
        return True
    seen: Set[str] = set()
    frontier = [transition.target]
    while frontier:
        location = frontier.pop()
        if location in seen:
            continue
        seen.add(location)
        for successor in automaton.successors(location):
            if successor in cut:
                return True
            if successor not in seen:
                frontier.append(successor)
    return False
