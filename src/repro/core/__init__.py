"""The paper's contribution: counterexample-guided ranking-function synthesis.

The central entry point is :class:`TerminationProver`, which takes a
control-flow automaton (or a prepared termination problem), computes
invariants and the large-block encoding, and runs the multidimensional,
multi-control-point synthesis algorithm (Algorithms 1–3 of the paper):

* :mod:`repro.core.monodim` — Algorithm 1 / Algorithm 3: one lexicographic
  component of maximal termination power, obtained by lazily enumerating
  extremal counterexamples (vertices and rays) with an optimising SMT
  solver and a small LP over the invariant's constraint cone.
* :mod:`repro.core.multidim` — Algorithm 2: the lexicographic loop.
* :mod:`repro.core.termination` — the end-to-end prover and its statistics
  (number of iterations, LP sizes — the numbers reported in Table 1).
* :mod:`repro.core.certificate` — an independent checker that the returned
  ranking function really is one (decrease + nonnegativity), used by the
  test suite.
"""

from repro.core.ranking import AffineRankingFunction, LexicographicRankingFunction
from repro.core.problem import TerminationProblem
from repro.core.lp_instance import RankingLp, LpStatistics
from repro.core.monodim import MonodimResult, synthesize_monodim
from repro.core.multidim import synthesize_multidim
from repro.core.termination import (
    TerminationProver,
    TerminationResult,
    prove_termination,
)
from repro.core.certificate import check_certificate
from repro.core.splitting import split_location

__all__ = [
    "AffineRankingFunction",
    "LexicographicRankingFunction",
    "TerminationProblem",
    "RankingLp",
    "LpStatistics",
    "MonodimResult",
    "synthesize_monodim",
    "synthesize_multidim",
    "TerminationProver",
    "TerminationResult",
    "prove_termination",
    "check_certificate",
    "split_location",
]
