"""The termination problem handed to the synthesis algorithms.

A :class:`TerminationProblem` packages everything Algorithms 1–3 need:

* the cut points ``W`` and the program variables ``x_1 … x_n``,
* a polyhedral invariant ``I_k`` per cut point (Definition 4/5),
* the block transitions of the large-block encoding (§2.2/§6),
* which variables range over the integers.

It also owns the encoding conventions shared by the SMT queries and the
LP.  The block vector ``u`` of Algorithm 3 (Definition 12) is laid out as
one group per cut point over the *homogenised* space ``(x, 1)``: the extra
constant-one coordinate carries the affine offset of the per-location
ranking functions, so that ``λ · u`` equals ``ρ(k, x) − ρ(k', x')``
including the offsets when the control point changes.  The invariant
constraints are lifted to that space accordingly (Definition 14): each
``a·x ≥ b`` becomes the homogeneous row ``a·x + (−b)·1 ≥ 0`` and every cut
point additionally contributes the row ``1 ≥ 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.ranking import AffineRankingFunction
from repro.invariants.invariant_map import InvariantMap
from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, conjunction, disjunction
from repro.linexpr.transform import prime_suffix
from repro.program.large_block import BlockTransition
from repro.polyhedra.polyhedron import Polyhedron

#: Name of the synthetic constant-one coordinate of the stacked space.
ONE_COORDINATE = "@one"


@dataclass
class InvariantRow:
    """One homogenised invariant constraint ``normal · (x, 1) ≥ 0``.

    ``normal`` is a linear expression over the program variables plus the
    :data:`ONE_COORDINATE`; the original ``a·x ≥ b`` constraint appears as
    ``a·x − b·@one ≥ 0`` and the implicit ``@one ≥ 0`` row closes the cone.
    """

    location: str
    normal: LinExpr


class TerminationProblem:
    """Inputs and encoding conventions of the synthesis algorithms."""

    def __init__(
        self,
        variables: Sequence[str],
        cutset: Sequence[str],
        invariants: InvariantMap,
        blocks: Sequence[BlockTransition],
        integer_variables: Optional[Sequence[str]] = None,
    ):
        if not cutset:
            raise ValueError("the cut-set must contain at least one location")
        self.variables: Tuple[str, ...] = tuple(variables)
        if ONE_COORDINATE in self.variables:
            raise ValueError("%r is a reserved variable name" % ONE_COORDINATE)
        self.space_variables: Tuple[str, ...] = self.variables + (ONE_COORDINATE,)
        self.cutset: Tuple[str, ...] = tuple(cutset)
        self.invariants = invariants
        self.blocks: List[BlockTransition] = [
            block
            for block in blocks
            if block.source in self.cutset and block.target in self.cutset
        ]
        self.integer_variables: Set[str] = set(
            integer_variables if integer_variables is not None else variables
        )
        self._rows = self._collect_invariant_rows()

    # -- dimensions and names ------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_cutpoints(self) -> int:
        return len(self.cutset)

    @property
    def stacked_dimension(self) -> int:
        """Dimension of the block vector ``u`` (``|W| · (n + 1)``)."""
        return self.num_cutpoints * len(self.space_variables)

    def difference_variable(self, location: str, variable: str) -> str:
        """Name of the ``u`` component for (cut point, space coordinate)."""
        return "u[%s][%s]" % (location, variable)

    def difference_variables(self) -> List[str]:
        return [
            self.difference_variable(location, variable)
            for location in self.cutset
            for variable in self.space_variables
        ]

    # -- invariants -------------------------------------------------------------------

    def invariant(self, location: str) -> Polyhedron:
        return self.invariants.get(location)

    def invariant_rows(self) -> List[InvariantRow]:
        """The lifted ``Constraints(I)`` of Definition 14 (homogenised)."""
        return list(self._rows)

    def _collect_invariant_rows(self) -> List[InvariantRow]:
        rows: List[InvariantRow] = []
        for location in self.cutset:
            polyhedron = self.invariant(location)
            # constraint_vectors yields (a, b) meaning a·x ≥ b; homogenise to
            # a·x + (−b)·@one ≥ 0.
            for normal, bound in polyhedron.constraint_vectors():
                rows.append(
                    InvariantRow(
                        location, normal + LinExpr({ONE_COORDINATE: -bound})
                    )
                )
            rows.append(
                InvariantRow(location, LinExpr({ONE_COORDINATE: 1}))
            )
        return rows

    # -- formulas for the SMT queries -----------------------------------------------------

    def transition_formula(self) -> Formula:
        """``Φ``: the disjunction over blocks of ``I_k(x) ∧ φ(x, x') ∧ u-defs``."""
        disjuncts: List[Formula] = []
        for block in self.blocks:
            disjuncts.append(self._block_formula(block))
        return disjunction(disjuncts)

    def _block_formula(self, block: BlockTransition) -> Formula:
        parts: List[Formula] = []
        parts.append(conjunction(self.invariant(block.source).constraints))
        parts.append(block.formula)
        parts.extend(self._difference_definitions(block.source, block.target))
        return conjunction(parts)

    def _difference_definitions(self, source: str, target: str) -> List[Formula]:
        """``u = e_source((x, 1)) − e_target((x', 1))`` componentwise."""
        definitions: List[Formula] = []
        for location in self.cutset:
            for variable in self.variables:
                name = self.difference_variable(location, variable)
                value = LinExpr()
                if location == source:
                    value = value + LinExpr.variable(variable)
                if location == target:
                    value = value - LinExpr.variable(prime_suffix(variable))
                definitions.append(LinExpr.variable(name).eq(value))
            one_name = self.difference_variable(location, ONE_COORDINATE)
            one_value = Fraction(0)
            if location == source:
                one_value += 1
            if location == target:
                one_value -= 1
            definitions.append(LinExpr.variable(one_name).eq(one_value))
        return definitions

    # -- vectors and objectives --------------------------------------------------------------

    def stacked_row(self, row: InvariantRow) -> Vector:
        """``e_k(a_i^k)`` as a vector over the stacked ``u`` space."""
        entries: List[Fraction] = []
        for location in self.cutset:
            for variable in self.space_variables:
                if location == row.location:
                    entries.append(row.normal.coefficient(variable))
                else:
                    entries.append(Fraction(0))
        return Vector(entries)

    def difference_vector(self, model: Mapping[str, Fraction]) -> Vector:
        """Extract the ``u`` value from an SMT model (missing components = 0)."""
        return Vector(
            model.get(name, Fraction(0)) for name in self.difference_variables()
        )

    def objective(self, ranking: AffineRankingFunction) -> LinExpr:
        """``λ · u`` — equal to ``ρ(k, x) − ρ(k', x')`` — over the u variables."""
        expr = LinExpr()
        for location in self.cutset:
            lam = ranking.coefficients[location]
            for index, variable in enumerate(self.variables):
                if lam[index] == 0:
                    continue
                expr = expr + LinExpr(
                    {self.difference_variable(location, variable): lam[index]}
                )
            offset = ranking.offsets[location]
            if offset != 0:
                expr = expr + LinExpr(
                    {self.difference_variable(location, ONE_COORDINATE): offset}
                )
        return expr

    def zero_ranking(self) -> AffineRankingFunction:
        """The all-zero candidate the synthesis loop starts from."""
        return AffineRankingFunction(
            self.variables,
            {
                location: Vector.zeros(self.num_variables)
                for location in self.cutset
            },
            {location: Fraction(0) for location in self.cutset},
        )

    def smt_integer_variables(self) -> Set[str]:
        """Integer declarations for the SMT queries (program vars, primed too)."""
        names: Set[str] = set()
        for variable in self.integer_variables:
            names.add(variable)
            names.add(prime_suffix(variable))
        return names

    # -- misc -----------------------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        return {
            "cut_points": self.num_cutpoints,
            "variables": self.num_variables,
            "blocks": len(self.blocks),
            "invariant_rows": len(self._rows),
            "paths_summarised": sum(block.path_count for block in self.blocks),
        }
