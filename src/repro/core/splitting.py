"""Control-point splitting for disjunctive invariants (§8 of the paper).

Some loops go through *phases* (the paper's example alternates between
``d = 1`` and ``d = −1``); a single affine ranking function per control
point cannot capture them, but splitting the control point according to a
disjunctive invariant — one copy per disjunct — makes the program amenable
to the standard algorithm again.

:func:`split_location` performs exactly that CFA transformation: the given
location is replaced by one copy per case, every transition into the
location is duplicated with the case constraint conjoined to its guard
(filtering which copy can actually be reached), and every transition out of
the location is duplicated from each copy with the case constraint as an
additional guard.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.linexpr.constraint import Constraint
from repro.linexpr.formula import Formula, conjunction
from repro.program.automaton import ControlFlowAutomaton
from repro.program.transition import Transition


def split_location(
    automaton: ControlFlowAutomaton,
    location: str,
    cases: Sequence[Sequence[Constraint]],
    case_names: Sequence[str] | None = None,
) -> ControlFlowAutomaton:
    """Split *location* into one copy per case of a disjunctive invariant.

    ``cases`` is a sequence of constraint conjunctions over the program
    variables; they should cover every reachable state of *location* (they
    typically come from a disjunctive invariant such as Pagai's).  The
    returned automaton is an over-approximation-preserving transformation:
    every execution of the original program maps to one of the new one.
    """
    if location not in automaton.locations:
        raise ValueError("unknown location %r" % location)
    if not cases:
        raise ValueError("at least one case is required")
    if case_names is None:
        case_names = ["%s#case%d" % (location, index) for index in range(len(cases))]
    if len(case_names) != len(cases):
        raise ValueError("case_names must match cases")

    split = ControlFlowAutomaton(
        automaton.variables,
        automaton.initial_location
        if automaton.initial_location != location
        else case_names[0],
        automaton.initial_condition,
        automaton.integer_variables,
    )
    for name in automaton.locations:
        if name == location:
            continue
        split.add_location(name)
    for name in case_names:
        split.add_location(name)

    for transition in automaton.transitions:
        sources = (
            [(transition.source, None)]
            if transition.source != location
            else list(zip(case_names, cases))
        )
        targets = (
            [(transition.target, None)]
            if transition.target != location
            else list(zip(case_names, cases))
        )
        for source_name, source_case in sources:
            for target_name, target_case in targets:
                guard_parts: List[Formula] = [transition.guard]
                if source_case is not None:
                    guard_parts.extend(source_case)
                if target_case is not None:
                    # The case at the *target* constrains the post-state;
                    # expressing it on pre-state variables requires the
                    # update, so it is left to the invariant generator — the
                    # split is still sound because the disjuncts cover the
                    # reachable states.  Only same-variable updates are
                    # substituted here, conservatively.
                    guard_parts.extend(
                        _post_case_guard(transition, target_case)
                    )
                split.add_transition(
                    Transition(
                        source_name,
                        target_name,
                        conjunction(guard_parts),
                        dict(transition.updates),
                        name="%s[%s->%s]"
                        % (transition.name, source_name, target_name),
                    )
                )
    return split


def _post_case_guard(
    transition: Transition, case: Sequence[Constraint]
) -> List[Constraint]:
    """Express a target-copy case on the pre-state when the update allows it."""
    guards: List[Constraint] = []
    substitution = {}
    for name, expression in transition.updates.items():
        if expression is not None:
            substitution[name] = expression
    for constraint in case:
        mentioned = constraint.variables()
        havocked = {
            name
            for name in mentioned
            if name in transition.updates and transition.updates[name] is None
        }
        if havocked:
            # The case talks about a havocked variable: cannot express it on
            # the pre-state, so do not restrict (sound over-approximation).
            continue
        guards.append(constraint.substitute(substitution))
    return guards
