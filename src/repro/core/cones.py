"""Cones of quasi ranking functions (§2.4 and §3.1 of the paper).

These helpers are not on the hot path of the synthesiser — Algorithm 1
manipulates the cone implicitly through the LP — but they make the
geometric statements of the paper executable, which the test suite uses to
validate the implementation against Propositions 1–4:

* the quasi ranking functions form a convex cone (Proposition 1),
* ``λ`` is a quasi ranking function iff it lies in
  ``Cone(Constraints(I)) ∩ Cone(V)⊥`` (Proposition 3),
* a ``π``-maximal element is maximal for inclusion (Proposition 4).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.linalg.vector import Vector
from repro.linexpr.expr import LinExpr
from repro.lp.simplex import check_feasibility


def in_constraint_cone(candidate: Vector, generators: Sequence[Vector]) -> bool:
    """Whether *candidate* is a nonnegative combination of *generators*.

    This is membership in ``Coneconstraints(I)`` when the generators are the
    ``a_i`` of the invariant (Equation 2 of the paper).
    """
    if candidate.is_zero():
        return True
    if not generators:
        return False
    names = ["mu_%d" % index for index in range(len(generators))]
    constraints = [LinExpr.variable(name) >= 0 for name in names]
    for coordinate in range(len(candidate)):
        combination = LinExpr()
        for name, generator in zip(names, generators):
            if generator[coordinate] != 0:
                combination = combination + LinExpr(
                    {name: generator[coordinate]}
                )
        constraints.append(combination.eq(candidate[coordinate]))
    return check_feasibility(constraints).is_optimal


def in_orthogonal_cone(candidate: Vector, generators: Sequence[Vector]) -> bool:
    """Whether ``candidate · v ≥ 0`` for every generator ``v``.

    Membership in the orthogonal cone ``Cone(V)⊥`` of Definition 9, i.e.
    Equation 1 of the paper expressed over a generator set of
    ``P^H_{I,τ}``.
    """
    return all(candidate.dot(generator) >= 0 for generator in generators)


def pi_set(candidate: Vector, generators: Sequence[Vector]) -> List[int]:
    """``π_V(λ)``: indices of the generators on which λ strictly decreases."""
    return [
        index
        for index, generator in enumerate(generators)
        if candidate.dot(generator) > 0
    ]


def is_quasi_ranking_direction(
    candidate: Vector,
    invariant_normals: Sequence[Vector],
    difference_generators: Sequence[Vector],
) -> bool:
    """Proposition 3: membership in the intersection of the two cones."""
    return in_constraint_cone(candidate, invariant_normals) and in_orthogonal_cone(
        candidate, difference_generators
    )
