"""The end-to-end termination prover (the reproduction's "Termite").

:class:`TerminationProver` glues the pipeline of §9 together:

1. the control-flow automaton (from the front-end or built directly),
2. invariants from the abstract-interpretation engine
   (:mod:`repro.invariants`), playing the role of Pagai/Aspic,
3. the cut-set and the large-block encoding (:mod:`repro.program`),
4. the multidimensional, multi-control-point synthesis algorithm
   (:mod:`repro.core.multidim`),
5. optionally, an independent certificate check of the result.

The :class:`TerminationResult` carries the statistics reported in the
paper's evaluation: wall-clock time, number of SMT iterations, and the
average/maximum size of the LP instances (the "(l, c)" columns of
Table 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.certificate import check_certificate
from repro.core.lp_instance import LpStatistics
from repro.core.monodim import MaxIterationsExceeded
from repro.core.multidim import synthesize_multidim
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.core.relevance import restrict_to_guarded_states
from repro.invariants.analyzer import compute_invariants
from repro.invariants.domain import AbstractDomain
from repro.invariants.invariant_map import InvariantMap
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset
from repro.program.large_block import large_block_encoding
from repro.smt.optimize import SearchMode


@dataclass
class TerminationResult:
    """Outcome of a termination proof attempt."""

    proved: bool
    ranking: Optional[LexicographicRankingFunction]
    status: str                      # "terminating", "unknown", or "error"
    time_seconds: float = 0.0
    iterations: int = 0
    dimension: int = 0
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    certificate_checked: bool = False
    problem_statistics: Dict[str, int] = field(default_factory=dict)
    message: str = ""

    def __repr__(self) -> str:
        return "TerminationResult(%s, dim=%d, %.1f ms, LP avg (%.1f, %.1f))" % (
            self.status,
            self.dimension,
            self.time_seconds * 1000.0,
            self.lp_statistics.average_rows,
            self.lp_statistics.average_cols,
        )


class TerminationProver:
    """Prove termination of a control-flow automaton."""

    def __init__(
        self,
        automaton: ControlFlowAutomaton,
        invariants: Optional[InvariantMap] = None,
        cutset: Optional[Sequence[str]] = None,
        domain: Optional[AbstractDomain] = None,
        smt_mode: str | SearchMode = SearchMode.LOCAL,
        integer_mode: bool = False,
        check_certificates: bool = True,
        restrict_to_guarded: bool = True,
        max_iterations: int = 200,
        lp_mode: str = "incremental",
    ):
        self.automaton = automaton
        self.smt_mode = smt_mode
        self.integer_mode = integer_mode
        self.check_certificates = check_certificates
        self.restrict_to_guarded = restrict_to_guarded
        self.max_iterations = max_iterations
        self.lp_mode = lp_mode
        self._domain = domain
        self._given_invariants = invariants
        self._given_cutset = list(cutset) if cutset is not None else None

    # -- pipeline ------------------------------------------------------------------

    def build_problem(self) -> TerminationProblem:
        """Run the front half of the pipeline: invariants + large blocks."""
        cutset = self._given_cutset or compute_cutset(self.automaton)
        if not cutset:
            # No cycle at all: the program trivially terminates; keep a
            # placeholder cut point so the problem object stays well-formed.
            cutset = [self.automaton.initial_location]
        invariants = self._given_invariants
        if invariants is None:
            invariants = compute_invariants(self.automaton, self._domain)
        if self.restrict_to_guarded:
            invariants = restrict_to_guarded_states(
                self.automaton, cutset, invariants
            )
        blocks = large_block_encoding(self.automaton, cutset)
        return TerminationProblem(
            self.automaton.variables,
            cutset,
            invariants,
            blocks,
            sorted(self.automaton.integer_variables),
        )

    def prove(self) -> TerminationResult:
        """Attempt to prove termination; never raises on ordinary failures."""
        start = time.perf_counter()
        lp_statistics = LpStatistics()
        try:
            problem = self.build_problem()
            if not problem.blocks:
                elapsed = time.perf_counter() - start
                return TerminationResult(
                    proved=True,
                    ranking=LexicographicRankingFunction(),
                    status="terminating",
                    time_seconds=elapsed,
                    dimension=0,
                    lp_statistics=lp_statistics,
                    problem_statistics=problem.statistics(),
                    message="no cycle through the cut-set",
                )
            outcome = synthesize_multidim(
                problem,
                smt_mode=self.smt_mode,
                integer_mode=self.integer_mode,
                max_iterations=self.max_iterations,
                lp_statistics=lp_statistics,
                lp_mode=self.lp_mode,
            )
        except MaxIterationsExceeded as error:
            elapsed = time.perf_counter() - start
            return TerminationResult(
                proved=False,
                ranking=None,
                status="unknown",
                time_seconds=elapsed,
                lp_statistics=lp_statistics,
                message=str(error),
            )

        elapsed = time.perf_counter() - start
        iterations = sum(
            component.statistics.iterations for component in outcome.components
        )
        if not outcome.success:
            return TerminationResult(
                proved=False,
                ranking=None,
                status="unknown",
                time_seconds=elapsed,
                iterations=iterations,
                lp_statistics=lp_statistics,
                problem_statistics=problem.statistics(),
                message="no lexicographic linear ranking function "
                "relative to the computed invariant",
            )

        certificate_checked = False
        if self.check_certificates and outcome.ranking is not None:
            certificate_checked = check_certificate(
                problem, outcome.ranking, integer_mode=self.integer_mode
            )
        return TerminationResult(
            proved=True,
            ranking=outcome.ranking,
            status="terminating",
            time_seconds=elapsed,
            iterations=iterations,
            dimension=outcome.dimension,
            lp_statistics=lp_statistics,
            certificate_checked=certificate_checked,
            problem_statistics=problem.statistics(),
        )


def prove_termination(
    automaton: ControlFlowAutomaton, **options
) -> TerminationResult:
    """Convenience wrapper around :class:`TerminationProver`."""
    return TerminationProver(automaton, **options).prove()
