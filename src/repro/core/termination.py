"""Backward-compatible entry points of the end-to-end prover ("Termite").

This module is now a **thin wrapper** over the unified analysis API of
:mod:`repro.api`: the staged pipeline (:class:`repro.api.pipeline.
Analysis`) owns invariant generation, cut-set computation, the
large-block encoding and the problem cache, and the ``termite`` prover of
the registry owns the synthesis of §9.  :class:`TerminationProver`,
:class:`TerminationResult` and :func:`prove_termination` keep their
historical shapes so existing call sites work unchanged; new code should
prefer::

    from repro.api import AnalysisConfig, analyze

    result = analyze(automaton_or_source, tool="termite",
                     config=AnalysisConfig(lp_mode="incremental"))

See ``docs/MIGRATION.md`` for the full mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from repro.core.lp_instance import LpStatistics
from repro.core.problem import TerminationProblem
from repro.core.ranking import LexicographicRankingFunction
from repro.invariants.domain import AbstractDomain
from repro.invariants.invariant_map import InvariantMap
from repro.program.automaton import ControlFlowAutomaton
from repro.smt.optimize import SearchMode

if TYPE_CHECKING:  # pragma: no cover - the api sits above this compat layer
    from repro.api.result import AnalysisResult


@dataclass
class TerminationResult:
    """Outcome of a termination proof attempt (historical result shape).

    New code should use :class:`repro.api.AnalysisResult`, which this is a
    projection of.
    """

    proved: bool
    ranking: Optional[LexicographicRankingFunction]
    status: str                      # "terminating", "unknown", or "error"
    time_seconds: float = 0.0
    iterations: int = 0
    dimension: int = 0
    lp_statistics: LpStatistics = field(default_factory=LpStatistics)
    certificate_checked: bool = False
    problem_statistics: Dict[str, int] = field(default_factory=dict)
    message: str = ""

    @classmethod
    def from_analysis(cls, result: "AnalysisResult") -> "TerminationResult":
        """Project a unified :class:`AnalysisResult` onto the old shape."""
        return cls(
            proved=result.proved,
            ranking=result.ranking,
            status=result.status.value,
            time_seconds=result.time_seconds,
            iterations=result.iterations,
            dimension=result.dimension,
            lp_statistics=result.lp_statistics,
            certificate_checked=result.certificate_checked,
            problem_statistics=dict(result.problem_statistics),
            message=result.message or (result.error or ""),
        )

    def __repr__(self) -> str:
        return "TerminationResult(%s, dim=%d, %.1f ms, LP avg (%.1f, %.1f))" % (
            self.status,
            self.dimension,
            self.time_seconds * 1000.0,
            self.lp_statistics.average_rows,
            self.lp_statistics.average_cols,
        )


class TerminationProver:
    """Prove termination of a control-flow automaton (compat wrapper).

    The historical keyword arguments are packed into an
    :class:`~repro.api.config.AnalysisConfig` and the work is delegated to
    the staged :class:`~repro.api.pipeline.Analysis`.
    """

    def __init__(
        self,
        automaton: ControlFlowAutomaton,
        invariants: Optional[InvariantMap] = None,
        cutset: Optional[Sequence[str]] = None,
        domain: Optional[AbstractDomain] = None,
        smt_mode: str | SearchMode = SearchMode.LOCAL,
        integer_mode: bool = False,
        check_certificates: bool = True,
        restrict_to_guarded: bool = True,
        max_iterations: int = 200,
        lp_mode: str = "incremental",
    ):
        self.automaton = automaton
        self.smt_mode = smt_mode
        self.integer_mode = integer_mode
        self.check_certificates = check_certificates
        self.restrict_to_guarded = restrict_to_guarded
        self.max_iterations = max_iterations
        self.lp_mode = lp_mode
        self._given_invariants = invariants
        self._given_cutset = list(cutset) if cutset is not None else None
        self._given_domain = domain
        self._analysis = None
        self._analysis_key = None

    @property
    def config(self):
        """The public attributes as an :class:`~repro.api.AnalysisConfig`.

        Recomputed on access: the historical contract is that the
        attributes can be mutated after construction and are honoured at
        :meth:`prove` time.
        """
        # Imported here, not at module level: the api package imports the
        # core (its config needs LP_MODES), so this compat wrapper
        # resolves its dependency on the api at call time.
        from repro.api.config import AnalysisConfig

        return AnalysisConfig(
            smt_mode=SearchMode(self.smt_mode).value,
            lp_mode=self.lp_mode,
            integer_mode=self.integer_mode,
            max_iterations=self.max_iterations,
            check_certificates=self.check_certificates,
            restrict_to_guarded=self.restrict_to_guarded,
        )

    def _current_analysis(self):
        """The cached pipeline, refreshed when the attributes changed.

        The cache is keyed on the automaton object *and* the config, so
        rebinding ``prover.automaton`` (or any config attribute) after a
        prove is honoured — the historical contract — while repeated
        proves of an unchanged prover share the built problem.
        """
        from repro.api.pipeline import Analysis

        key = (self.automaton, self.config)
        if self._analysis is None or self._analysis_key != key:
            self._analysis = Analysis(
                self.automaton,
                config=key[1],
                invariants=self._given_invariants,
                cutset=self._given_cutset,
                domain=self._given_domain,
            )
            self._analysis_key = key
        return self._analysis

    # -- pipeline ------------------------------------------------------------------

    def build_problem(self) -> TerminationProblem:
        """Run the front half of the pipeline: invariants + large blocks."""
        return self._current_analysis().problem()

    def prove(self) -> TerminationResult:
        """Attempt to prove termination; never raises on ordinary failures."""
        return TerminationResult.from_analysis(
            self._current_analysis().run("termite")
        )


def prove_termination(
    automaton: ControlFlowAutomaton, **options
) -> TerminationResult:
    """Convenience wrapper around :class:`TerminationProver`."""
    return TerminationProver(automaton, **options).prove()
