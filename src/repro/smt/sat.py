"""A small CDCL SAT solver.

Literals are non-zero integers (DIMACS convention: ``v`` is the positive
literal of variable ``v``, ``-v`` its negation).  The solver implements

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* non-chronological backjumping,
* a lightweight VSIDS-style activity heuristic with phase saving.

It is deliberately compact: the boolean structure of a large-block
transition relation is small (tens to a few hundred clauses), and the
heavy lifting of the reproduction happens in the theory solver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class SatSolver:
    """An incremental CDCL solver over integer literals."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assignment: Dict[int, bool] = {}
        self._level: Dict[int, int] = {}
        self._reason: Dict[int, Optional[int]] = {}
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._activity: Dict[int, float] = {}
        self._phase: Dict[int, bool] = {}
        self._activity_increment = 1.0
        self._unsatisfiable = False
        self._processed = 0

    # -- problem construction ------------------------------------------------

    def new_variable(self) -> int:
        """Allocate a fresh propositional variable and return its index."""
        self._num_vars += 1
        index = self._num_vars
        self._activity[index] = 0.0
        self._phase[index] = False
        return index

    @property
    def num_variables(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause; returns False when it makes the problem trivially UNSAT."""
        if self._unsatisfiable:
            return False
        self._backtrack_to(0)
        unique: List[int] = []
        seen = set()
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a literal")
            while abs(literal) > self._num_vars:
                self.new_variable()
            if -literal in seen:
                return True  # tautology, always satisfied
            if literal not in seen:
                seen.add(literal)
                unique.append(literal)
        if not unique:
            self._unsatisfiable = True
            return False
        # Drop literals already false at level 0 and detect satisfied clauses.
        filtered: List[int] = []
        for literal in unique:
            value = self._value(literal)
            if value is True:
                return True
            if value is False:
                continue
            filtered.append(literal)
        if not filtered:
            self._unsatisfiable = True
            return False
        if len(filtered) == 1:
            if not self._enqueue(filtered[0], None):
                self._unsatisfiable = True
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._unsatisfiable = True
                return False
            return True
        index = len(self._clauses)
        self._clauses.append(filtered)
        self._watch(filtered[0], index)
        self._watch(filtered[1], index)
        return True

    # -- solving ---------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> Optional[Dict[int, bool]]:
        """Return a satisfying assignment (variable → bool) or None for UNSAT.

        The assignment is total over the allocated variables.  *assumptions*
        are literals assumed true for this call only.
        """
        if self._unsatisfiable:
            return None
        self._backtrack_to(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsatisfiable = True
            return None

        for literal in assumptions:
            value = self._value(literal)
            if value is True:
                continue
            if value is False:
                return None
            self._new_decision_level()
            self._enqueue(literal, None)
            conflict = self._propagate()
            if conflict is not None:
                self._backtrack_to(0)
                return None
        assumption_level = self._decision_level()

        while True:
            conflict = self._propagate()
            if conflict is not None:
                if self._decision_level() <= assumption_level:
                    self._backtrack_to(0)
                    if assumption_level == 0:
                        self._unsatisfiable = True
                    return None
                learned, backjump_level = self._analyze(conflict)
                if backjump_level < assumption_level:
                    backjump_level = assumption_level
                self._backtrack_to(backjump_level)
                self._learn(learned)
                self._decay_activities()
            else:
                literal = self._pick_branch_literal()
                if literal is None:
                    model = {
                        var: self._assignment.get(var, self._phase.get(var, False))
                        for var in range(1, self._num_vars + 1)
                    }
                    self._backtrack_to(0)
                    return model
                self._new_decision_level()
                self._enqueue(literal, None)

    # -- internals ---------------------------------------------------------------

    def _value(self, literal: int) -> Optional[bool]:
        assigned = self._assignment.get(abs(literal))
        if assigned is None:
            return None
        return assigned if literal > 0 else not assigned

    def _watch(self, literal: int, clause_index: int) -> None:
        self._watches.setdefault(literal, []).append(clause_index)

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._value(literal)
        if value is not None:
            return value
        variable = abs(literal)
        self._assignment[variable] = literal > 0
        self._phase[variable] = literal > 0
        self._level[variable] = self._decision_level()
        self._reason[variable] = reason
        self._trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _new_decision_level(self) -> None:
        self._trail_limits.append(len(self._trail))

    def _backtrack_to(self, level: int) -> None:
        while self._decision_level() > level:
            limit = self._trail_limits.pop()
            while len(self._trail) > limit:
                literal = self._trail.pop()
                variable = abs(literal)
                del self._assignment[variable]
                self._level.pop(variable, None)
                self._reason.pop(variable, None)
        if self._processed > len(self._trail):
            self._processed = len(self._trail)

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        queue_index = self._processed
        while queue_index < len(self._trail):
            literal = self._trail[queue_index]
            queue_index += 1
            self._processed = queue_index
            conflict = self._propagate_literal(-literal)
            if conflict is not None:
                return conflict
        self._processed = len(self._trail)
        return None

    def _propagate_literal(self, false_literal: int) -> Optional[int]:
        watching = self._watches.get(false_literal, [])
        index = 0
        while index < len(watching):
            clause_index = watching[index]
            clause = self._clauses[clause_index]
            # Ensure the false literal sits at position 1.
            if clause[0] == false_literal:
                clause[0], clause[1] = clause[1], clause[0]
            first = clause[0]
            if self._value(first) is True:
                index += 1
                continue
            # Look for a replacement watch.
            replacement = None
            for position in range(2, len(clause)):
                if self._value(clause[position]) is not False:
                    replacement = position
                    break
            if replacement is not None:
                clause[1], clause[replacement] = clause[replacement], clause[1]
                watching[index] = watching[-1]
                watching.pop()
                self._watch(clause[1], clause_index)
                continue
            # Clause is unit or conflicting.
            if self._value(first) is False:
                return clause_index
            self._enqueue(first, clause_index)
            index += 1
        return None

    def _analyze(self, conflict_index: int):
        """First-UIP conflict analysis; returns (learned clause, backjump level)."""
        learned: List[int] = []
        seen = set()
        counter = 0
        literal = None
        clause = list(self._clauses[conflict_index])
        trail_index = len(self._trail) - 1
        current_level = self._decision_level()

        while True:
            for clause_literal in clause:
                if literal is not None and clause_literal == literal:
                    continue
                variable = abs(clause_literal)
                if variable in seen:
                    continue
                if self._level.get(variable, 0) == 0:
                    continue
                seen.add(variable)
                self._bump_activity(variable)
                if self._level[variable] == current_level:
                    counter += 1
                else:
                    learned.append(clause_literal)
            # Find the next literal on the trail to resolve on.
            while True:
                literal = self._trail[trail_index]
                trail_index -= 1
                if abs(literal) in seen:
                    break
            counter -= 1
            seen.discard(abs(literal))
            if counter == 0:
                break
            reason_index = self._reason.get(abs(literal))
            clause = list(self._clauses[reason_index]) if reason_index is not None else []
        learned.insert(0, -literal)

        if len(learned) == 1:
            return learned, 0
        backjump = max(self._level[abs(lit)] for lit in learned[1:])
        return learned, backjump

    def _learn(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._enqueue(learned[0], None)
            return
        # Place a literal from the backjump level in the second watch slot.
        backjump = max(self._level.get(abs(lit), 0) for lit in learned[1:])
        for position in range(1, len(learned)):
            if self._level.get(abs(learned[position]), 0) == backjump:
                learned[1], learned[position] = learned[position], learned[1]
                break
        index = len(self._clauses)
        self._clauses.append(learned)
        self._watch(learned[0], index)
        self._watch(learned[1], index)
        self._enqueue(learned[0], index)

    def _pick_branch_literal(self) -> Optional[int]:
        best_variable = None
        best_activity = -1.0
        for variable in range(1, self._num_vars + 1):
            if variable in self._assignment:
                continue
            activity = self._activity.get(variable, 0.0)
            if activity > best_activity:
                best_activity = activity
                best_variable = variable
        if best_variable is None:
            return None
        preferred = self._phase.get(best_variable, False)
        return best_variable if preferred else -best_variable

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] = (
            self._activity.get(variable, 0.0) + self._activity_increment
        )
        if self._activity[variable] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._activity_increment *= 1e-100

    def _decay_activities(self) -> None:
        self._activity_increment /= 0.95
