"""Optimisation modulo theory (OMT).

The synthesis loop of the paper asks the SMT solver to *minimise* ``λ·u``
over the models of ``I ∧ τ ∧ AvoidSpace(u, B)`` so that the returned
counterexample is extremal — a vertex of (one disjunct of) the convex hull
of one-step differences, or a ray when the objective is unbounded
(section 4.2 of the paper).

Two search modes are provided:

* ``"local"`` (default): take the first theory-consistent disjunct found by
  the lazy solver and minimise inside it.  The witness is a generator of
  that disjunct's polyhedron, which is all the termination argument of the
  paper needs, and it is what keeps the query cheap.
* ``"global"``: enumerate every theory-consistent boolean assignment and
  return the overall optimum.  This matches the letter of
  "optimization modulo theory" and is used by the ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, atom
from repro.lp.branch_bound import BranchAndBoundLimit, solve_ilp
from repro.lp.problem import LpResult, LpStatus, Sense
from repro.lp.simplex import solve_lp
from repro.smt.solver import SmtSolver, SmtStatus


class SearchMode(enum.Enum):
    LOCAL = "local"
    GLOBAL = "global"


@dataclass
class OptimizationResult:
    """Result of minimising an objective over the models of a formula."""

    status: SmtStatus
    model: Dict[str, Fraction] = field(default_factory=dict)
    objective_value: Optional[Fraction] = None
    unbounded: bool = False
    ray: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is SmtStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SmtStatus.UNSAT


class OptimizingSmtSolver:
    """Minimise a linear objective over the models of asserted formulas."""

    def __init__(
        self,
        integer_variables: Optional[Iterable[str]] = None,
        mode: str | SearchMode = SearchMode.LOCAL,
        kernel: str = "exact",
    ):
        self._formulas: List[Formula] = []
        self._integer_variables: Set[str] = set(integer_variables or ())
        self._mode = SearchMode(mode) if isinstance(mode, str) else mode
        self._kernel = kernel
        self.statistics: Dict[str, int] = {
            "queries": 0,
            "assignments_explored": 0,
        }

    # -- construction ------------------------------------------------------------

    def assert_formula(self, formula) -> None:
        """Conjoin *formula* (a Formula or a bare Constraint) to the assertions."""
        self._formulas.append(atom(formula))

    def add_integer_variables(self, names: Iterable[str]) -> None:
        self._integer_variables |= set(names)

    # -- queries --------------------------------------------------------------------

    def check(self) -> OptimizationResult:
        """Plain satisfiability of the asserted conjunction."""
        solver = self._fresh_solver()
        result = solver.check()
        return OptimizationResult(result.status, model=result.model)

    def minimize(self, objective: LinExpr) -> OptimizationResult:
        """Minimise *objective*; extremal model or ray per the search mode."""
        self.statistics["queries"] += 1
        solver = self._fresh_solver()
        best: Optional[OptimizationResult] = None
        for constraints, model in solver.enumerate_assignments():
            self.statistics["assignments_explored"] += 1
            candidate = self._minimize_in_disjunct(objective, constraints, model)
            if candidate.unbounded:
                return candidate
            if best is None or self._improves(candidate, best):
                best = candidate
            if self._mode is SearchMode.LOCAL:
                break
        if best is None:
            return OptimizationResult(SmtStatus.UNSAT)
        return best

    # -- internals ---------------------------------------------------------------------

    def _fresh_solver(self) -> SmtSolver:
        solver = SmtSolver(
            integer_variables=self._integer_variables, kernel=self._kernel
        )
        for formula in self._formulas:
            solver.assert_formula(formula)
        return solver

    @staticmethod
    def _improves(
        candidate: OptimizationResult, incumbent: OptimizationResult
    ) -> bool:
        if candidate.objective_value is None:
            return False
        if incumbent.objective_value is None:
            return True
        return candidate.objective_value < incumbent.objective_value

    def _minimize_in_disjunct(
        self,
        objective: LinExpr,
        constraints: Sequence[Constraint],
        fallback_model: Dict[str, Fraction],
    ) -> OptimizationResult:
        """Minimise the objective inside one theory-consistent conjunction."""
        closure = [constraint.weaken() for constraint in constraints]
        names = sorted(
            set(fallback_model)
            | {n for c in closure for n in c.variables()}
            | set(objective.variables())
        )
        outcome = self._solve(objective, closure, names)

        if outcome.status is LpStatus.UNBOUNDED:
            ray = {
                name: value
                for name, value in outcome.ray.items()
                if value != 0
            }
            model = self._complete(outcome.assignment or fallback_model, names)
            if not self._satisfies(constraints, model):
                model = self._complete(fallback_model, names)
            value = objective.evaluate(model)
            return OptimizationResult(
                SmtStatus.SAT,
                model=model,
                objective_value=value,
                unbounded=True,
                ray=ray,
            )

        if outcome.status is LpStatus.OPTIMAL:
            model = self._complete(outcome.assignment, names)
            if self._satisfies(constraints, model):
                return OptimizationResult(
                    SmtStatus.SAT,
                    model=model,
                    objective_value=outcome.objective,
                )
        # The optimum of the closure violates a strict constraint (it can
        # only come from an AvoidSpace atom); fall back to the theory model,
        # which satisfies every literal of the assignment.
        model = self._complete(fallback_model, names)
        value = objective.evaluate(model)
        return OptimizationResult(
            SmtStatus.SAT, model=model, objective_value=value
        )

    def _solve(
        self,
        objective: LinExpr,
        closure: Sequence[Constraint],
        names: Sequence[str],
    ) -> LpResult:
        integers = [name for name in names if name in self._integer_variables]
        if integers:
            try:
                return solve_ilp(
                    objective,
                    list(closure),
                    integers,
                    Sense.MINIMIZE,
                    names,
                    kernel=self._kernel,
                )
            except BranchAndBoundLimit:
                return solve_lp(
                    objective,
                    list(closure),
                    Sense.MINIMIZE,
                    names,
                    kernel=self._kernel,
                )
        return solve_lp(
            objective, list(closure), Sense.MINIMIZE, names, kernel=self._kernel
        )

    @staticmethod
    def _satisfies(
        constraints: Sequence[Constraint], model: Dict[str, Fraction]
    ) -> bool:
        try:
            return all(c.satisfied_by(model) for c in constraints)
        except KeyError:
            return False

    @staticmethod
    def _complete(
        model: Dict[str, Fraction], names: Sequence[str]
    ) -> Dict[str, Fraction]:
        completed = dict(model)
        for name in names:
            completed.setdefault(name, Fraction(0))
        return completed
