"""Theory solver for conjunctions of linear arithmetic constraints.

Given a conjunction of (possibly strict) linear constraints over rational
or integer variables, the solver decides satisfiability, produces a model
and, when unsatisfiable, extracts a small *unsat core* that the lazy SMT
loop turns into a blocking clause.

Strict inequalities are handled exactly with the standard trick: every
``e < 0`` is replaced by ``e + δ ≤ 0`` for a shared fresh variable ``δ``
and we maximise ``δ`` under ``0 ≤ δ ≤ 1``; the conjunction is satisfiable
with strict inequalities iff the maximum is positive.  Constraints whose
variables are all integers are instead tightened to ``e ≤ -1`` which keeps
the branch-and-bound integer search exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.branch_bound import BranchAndBoundLimit, solve_ilp
from repro.lp.problem import LpStatus, Sense
from repro.lp.simplex import solve_lp

_DELTA = "__delta__"


@dataclass
class TheoryResult:
    """Outcome of a conjunction feasibility check."""

    satisfiable: bool
    model: Dict[str, Fraction] = field(default_factory=dict)
    core: List[int] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.satisfiable


def _prepare(
    constraints: Sequence[Constraint], integer_variables: Set[str]
) -> Tuple[List[Constraint], bool]:
    """Rewrite strict inequalities; returns (rows, uses_delta)."""
    rows: List[Constraint] = []
    uses_delta = False
    for constraint in constraints:
        if constraint.relation is Relation.LT:
            integral = constraint.variables() <= integer_variables
            tightened = constraint.tighten_for_integers() if integral else None
            if tightened is not None and tightened.relation is Relation.LE:
                rows.append(tightened)
            else:
                rows.append(
                    Constraint(
                        constraint.expr + LinExpr.variable(_DELTA),
                        Relation.LE,
                    )
                )
                uses_delta = True
        else:
            rows.append(constraint)
    return rows, uses_delta


def check_conjunction(
    constraints: Sequence[Constraint],
    integer_variables: Optional[Set[str]] = None,
    minimize_core: bool = True,
    kernel: str = "exact",
) -> TheoryResult:
    """Decide satisfiability of a conjunction of linear constraints."""
    integer_variables = integer_variables or set()

    trivially_false = [
        index
        for index, constraint in enumerate(constraints)
        if constraint.is_trivially_false()
    ]
    if trivially_false:
        return TheoryResult(False, core=[trivially_false[0]])

    rows, uses_delta = _prepare(constraints, integer_variables)

    all_variables: List[str] = sorted(
        {name for row in rows for name in row.variables()}
    )

    if uses_delta:
        objective = LinExpr.variable(_DELTA)
        bounds = [
            LinExpr.variable(_DELTA) >= 0,
            LinExpr.variable(_DELTA) <= 1,
        ]
        outcome = _solve(
            objective,
            rows + bounds,
            Sense.MAXIMIZE,
            all_variables,
            integer_variables,
            kernel,
        )
        satisfiable = (
            outcome.status is LpStatus.OPTIMAL
            and outcome.objective is not None
            and outcome.objective > 0
        )
    else:
        outcome = _solve(
            LinExpr(),
            rows,
            Sense.MINIMIZE,
            all_variables,
            integer_variables,
            kernel,
        )
        satisfiable = outcome.status is not LpStatus.INFEASIBLE

    if satisfiable:
        model = {
            name: value
            for name, value in outcome.assignment.items()
            if name != _DELTA
        }
        return TheoryResult(True, model=model)

    core = list(range(len(constraints)))
    if minimize_core:
        core = _minimize_core(constraints, integer_variables, kernel)
    return TheoryResult(False, core=core)


def _solve(
    objective: LinExpr,
    rows: Sequence[Constraint],
    sense: Sense,
    variables: Sequence[str],
    integer_variables: Set[str],
    kernel: str = "exact",
):
    names = sorted(
        set(variables)
        | set(objective.variables())
        | {name for row in rows for name in row.variables()}
    )
    relevant_integers = [name for name in names if name in integer_variables]
    if relevant_integers:
        try:
            return solve_ilp(
                objective,
                list(rows),
                relevant_integers,
                sense,
                names,
                kernel=kernel,
            )
        except BranchAndBoundLimit:
            # Fall back to the rational relaxation: for the synthesis loop a
            # rational witness is still a sound counterexample direction.
            return solve_lp(objective, list(rows), sense, names, kernel=kernel)
    return solve_lp(objective, list(rows), sense, names, kernel=kernel)


def _minimize_core(
    constraints: Sequence[Constraint],
    integer_variables: Set[str],
    kernel: str = "exact",
) -> List[int]:
    """Single-pass deletion filter: an irreducible unsatisfiable core.

    Each constraint is tentatively removed once; if the remainder is still
    unsatisfiable the removal is kept.  One pass suffices for an
    irreducible core and costs a linear number of LP feasibility checks.
    """
    core = list(range(len(constraints)))
    for candidate in list(core):
        if len(core) <= 1:
            break
        trial = [index for index in core if index != candidate]
        subset = [constraints[index] for index in trial]
        result = check_conjunction(
            subset, integer_variables, minimize_core=False, kernel=kernel
        )
        if not result.satisfiable:
            core = trial
    return core
