"""The lazy DPLL(T) loop.

:class:`SmtSolver` ties together the propositional abstraction
(:mod:`repro.smt.cnf`), the CDCL SAT core (:mod:`repro.smt.sat`) and the
linear-arithmetic theory solver (:mod:`repro.smt.theory`):

1. the asserted formulas are Tseitin-encoded,
2. the SAT core proposes a boolean model,
3. the linear atoms assigned by that model are checked for consistency,
4. an inconsistent assignment is blocked through its (minimised) unsat
   core, and the loop continues until either a theory-consistent model is
   found or the propositional abstraction becomes unsatisfiable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Formula,
    Or,
    TRUE,
    atom,
)
from repro.linexpr.transform import formula_variables, to_nnf
from repro.smt.cnf import CnfEncoder
from repro.smt.sat import SatSolver
from repro.smt.theory import check_conjunction


class SmtStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SmtResult:
    """Outcome of a satisfiability check."""

    status: SmtStatus
    model: Dict[str, Fraction] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is SmtStatus.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is SmtStatus.UNSAT


class SmtSolver:
    """Lazy SMT solver for quantifier-free / existential linear arithmetic."""

    def __init__(
        self,
        integer_variables: Optional[Iterable[str]] = None,
        max_theory_iterations: int = 10_000,
        core_minimization_limit: int = 12,
        kernel: str = "exact",
    ):
        self._sat = SatSolver()
        self._kernel = kernel
        self._encoder = CnfEncoder(self._sat)
        self._integer_variables: Set[str] = set(integer_variables or ())
        self._free_variables: Set[str] = set()
        self._roots: List[Formula] = []
        self._max_theory_iterations = max_theory_iterations
        # Deletion-based core minimisation costs one LP per constraint; past
        # this size the raw conflict is blocked instead, which is cheaper
        # overall because justified conflicts are already path-sized.
        self._core_minimization_limit = core_minimization_limit
        self.statistics: Dict[str, int] = {
            "sat_calls": 0,
            "theory_calls": 0,
            "theory_conflicts": 0,
        }

    # -- problem construction ---------------------------------------------------

    def add_integer_variables(self, names: Iterable[str]) -> None:
        self._integer_variables |= set(names)

    def assert_formula(self, formula) -> None:
        """Conjoin *formula* (a Formula or a bare Constraint) to the assertions."""
        node = to_nnf(atom(formula))
        self._free_variables |= formula_variables(node)
        self._roots.append(node)
        self._encoder.assert_formula(node)

    # -- solving -------------------------------------------------------------------

    def check(self) -> SmtResult:
        """Decide satisfiability of the asserted conjunction."""
        assignment = self._next_consistent_assignment()
        if assignment is None:
            return SmtResult(SmtStatus.UNSAT)
        _, theory_model = assignment
        return SmtResult(SmtStatus.SAT, model=self._complete_model(theory_model))

    def enumerate_assignments(
        self,
    ) -> Iterable[Tuple[List[Constraint], Dict[str, Fraction]]]:
        """Yield theory-consistent assignments, blocking each one in turn.

        Every yielded pair is ``(asserted constraints, model)`` where the
        constraints are the theory literals made true by the boolean model.
        The generator terminates when the propositional abstraction has no
        further theory-consistent models.  Used by the optimising layer to
        search all disjuncts for the global optimum.
        """
        while True:
            assignment = self._next_consistent_assignment()
            if assignment is None:
                return
            literals, model = assignment
            yield self._constraints_of(literals), self._complete_model(model)
            # Block this exact set of theory literals.
            self._sat.add_clause([-literal for literal in literals])

    # -- internals --------------------------------------------------------------------

    def _next_consistent_assignment(
        self,
    ) -> Optional[Tuple[List[int], Dict[str, Fraction]]]:
        iterations = 0
        while True:
            iterations += 1
            if iterations > self._max_theory_iterations:
                raise RuntimeError(
                    "theory/SAT refinement did not converge within %d rounds"
                    % self._max_theory_iterations
                )
            self.statistics["sat_calls"] += 1
            boolean_model = self._sat.solve()
            if boolean_model is None:
                return None
            literals = self._theory_literals(boolean_model)
            constraints = self._constraints_of(literals)
            self.statistics["theory_calls"] += 1
            outcome = check_conjunction(
                constraints,
                self._integer_variables,
                minimize_core=len(constraints) <= self._core_minimization_limit,
                kernel=self._kernel,
            )
            if outcome.satisfiable:
                return literals, outcome.model
            self.statistics["theory_conflicts"] += 1
            core_literals = [literals[index] for index in outcome.core]
            if not core_literals:
                # The conjunction is inconsistent independently of any atom
                # (cannot happen with a sound theory solver); fail safe.
                return None
            self._sat.add_clause([-literal for literal in core_literals])

    def _theory_literals(self, boolean_model: Dict[int, bool]) -> List[int]:
        """A *justification*: atoms sufficient to make every assertion true.

        After NNF conversion every atom occurs with positive polarity only,
        so the assertions are monotone in their atoms and it is enough to
        collect, for each asserted formula, the atoms of one satisfied
        branch (the first true child of every disjunction under the current
        boolean model).  This keeps the theory conjunction the size of one
        program path — exactly the disjunct the paper's algorithm reasons
        about — instead of the whole formula, and it makes theory conflicts
        and their blocking clauses much smaller.
        """
        justified: Dict[int, None] = {}
        for root in self._roots:
            self._justify(root, boolean_model, justified)
        return list(justified)

    def _justify(
        self,
        node: Formula,
        boolean_model: Dict[int, bool],
        justified: Dict[int, None],
    ) -> None:
        if node is TRUE:
            return
        if isinstance(node, Atom):
            constraint = node.constraint
            if constraint.is_trivially_true():
                return
            justified.setdefault(self._encoder.atom_literal(constraint))
            return
        if isinstance(node, And):
            for child in node.operands:
                self._justify(child, boolean_model, justified)
            return
        if isinstance(node, Or):
            for child in node.operands:
                if self._holds(child, boolean_model):
                    self._justify(child, boolean_model, justified)
                    return
            # No child is boolean-true (can only happen through rounding of
            # don't-care variables); fall back to the first child.
            self._justify(node.operands[0], boolean_model, justified)
            return
        if isinstance(node, Exists):
            self._justify(node.body, boolean_model, justified)
            return
        raise TypeError("unexpected formula node %r in justification" % (node,))

    def _holds(self, node: Formula, boolean_model: Dict[int, bool]) -> bool:
        """Evaluate a (monotone, NNF) formula under the boolean model."""
        if node is TRUE:
            return True
        if node is FALSE:
            return False
        if isinstance(node, Atom):
            if node.constraint.is_trivially_true():
                return True
            if node.constraint.is_trivially_false():
                return False
            literal = self._encoder.atom_literal(node.constraint)
            return bool(boolean_model.get(literal))
        if isinstance(node, And):
            return all(self._holds(child, boolean_model) for child in node.operands)
        if isinstance(node, Or):
            return any(self._holds(child, boolean_model) for child in node.operands)
        if isinstance(node, Exists):
            return self._holds(node.body, boolean_model)
        return False

    def _constraints_of(self, literals: Sequence[int]) -> List[Constraint]:
        constraints: List[Constraint] = []
        for literal in literals:
            constraint = self._encoder.constraint_of(abs(literal))
            if constraint is None:
                continue
            if literal > 0:
                constraints.append(constraint)
            else:
                constraints.append(self._negate(constraint))
        return constraints

    @staticmethod
    def _negate(constraint: Constraint) -> Constraint:
        if constraint.relation is Relation.EQ:
            # ¬(e = 0) is a disjunction; over-approximating it as TRUE would
            # be unsound for satisfiability, so keep it as a non-strict
            # disequality witness: we choose the half the theory can check.
            # The encoder never produces negative equality literals because
            # equalities appear positively in the NNF input fragment, so
            # reaching this branch indicates a blocking clause artefact; the
            # safe over-approximation for *blocking* purposes is "true",
            # represented by a trivially satisfied constraint.
            return Constraint(constraint.expr * 0, Relation.LE)
        return constraint.negate()

    def _complete_model(self, theory_model: Dict[str, Fraction]) -> Dict[str, Fraction]:
        model = dict(theory_model)
        for name in self._free_variables:
            model.setdefault(name, Fraction(0))
        return model

    # -- helpers exposed to the optimiser -----------------------------------------------

    @property
    def integer_variables(self) -> Set[str]:
        return set(self._integer_variables)

    @property
    def free_variables(self) -> Set[str]:
        return set(self._free_variables)
