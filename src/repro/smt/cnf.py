"""Propositional abstraction and Tseitin encoding of formulas.

Each distinct (normalised) linear atom gets one propositional variable;
every composite node of the formula DAG gets a Tseitin variable.  The
encoder caches on object identity, so sub-formulas shared by the
large-block encoding are translated once — the CNF stays linear in the
size of the program rather than in its number of paths, which is the
structural property the paper's laziness relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.linexpr.constraint import Constraint
from repro.linexpr.formula import (
    And,
    Atom,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
)
from repro.linexpr.transform import to_nnf
from repro.smt.sat import SatSolver


class CnfEncoder:
    """Maps formulas to clauses of a :class:`~repro.smt.sat.SatSolver`."""

    def __init__(self, solver: SatSolver):
        self._solver = solver
        self._atom_literal: Dict[Constraint, int] = {}
        self._literal_atom: Dict[int, Constraint] = {}
        # The cache stores (formula, literal) pairs: keeping a reference to
        # the formula object is essential, otherwise CPython may reuse the
        # id() of a garbage-collected node and alias two distinct formulas.
        self._node_cache: Dict[int, Tuple[Formula, int]] = {}
        self._true_literal: Optional[int] = None

    # -- atom bookkeeping ------------------------------------------------------

    def atom_literal(self, constraint: Constraint) -> int:
        """The propositional variable standing for *constraint*."""
        key = constraint.normalized()
        literal = self._atom_literal.get(key)
        if literal is None:
            literal = self._solver.new_variable()
            self._atom_literal[key] = literal
            self._literal_atom[literal] = key
        return literal

    def atoms(self) -> Dict[int, Constraint]:
        """Mapping from propositional variable to the atom it encodes."""
        return dict(self._literal_atom)

    def constraint_of(self, variable: int) -> Optional[Constraint]:
        return self._literal_atom.get(variable)

    # -- encoding ----------------------------------------------------------------

    def assert_formula(self, formula: Formula) -> None:
        """Add clauses forcing *formula* to be true."""
        literal = self.encode(formula)
        self._solver.add_clause([literal])

    def encode(self, formula: Formula) -> int:
        """Tseitin-encode *formula*; returns the literal representing it."""
        return self._encode(to_nnf(formula))

    def _constant(self, value: bool) -> int:
        if self._true_literal is None:
            self._true_literal = self._solver.new_variable()
            self._solver.add_clause([self._true_literal])
        return self._true_literal if value else -self._true_literal

    def _encode(self, formula: Formula) -> int:
        if formula is TRUE:
            return self._constant(True)
        if formula is FALSE:
            return self._constant(False)
        cached = self._node_cache.get(id(formula))
        if cached is not None:
            return cached[1]

        if isinstance(formula, Atom):
            constraint = formula.constraint
            if constraint.is_trivially_true():
                literal = self._constant(True)
            elif constraint.is_trivially_false():
                literal = self._constant(False)
            else:
                literal = self.atom_literal(constraint)
        elif isinstance(formula, Not):
            # NNF leaves Not only above atoms that could not be negated
            # syntactically; encode as the negation of the operand literal.
            literal = -self._encode(formula.operand)
        elif isinstance(formula, And):
            children = [self._encode(child) for child in formula.operands]
            literal = self._define_and(children)
        elif isinstance(formula, Or):
            children = [self._encode(child) for child in formula.operands]
            literal = self._define_or(children)
        elif isinstance(formula, Exists):
            # The bound variables are theory variables; satisfiability of the
            # existential closure is exactly satisfiability of the body.
            literal = self._encode(formula.body)
        else:
            raise TypeError("cannot encode formula node %r" % (formula,))

        self._node_cache[id(formula)] = (formula, literal)
        return literal

    def _define_and(self, children: List[int]) -> int:
        if not children:
            return self._constant(True)
        if len(children) == 1:
            return children[0]
        fresh = self._solver.new_variable()
        for child in children:
            self._solver.add_clause([-fresh, child])
        self._solver.add_clause([fresh] + [-child for child in children])
        return fresh

    def _define_or(self, children: List[int]) -> int:
        if not children:
            return self._constant(False)
        if len(children) == 1:
            return children[0]
        fresh = self._solver.new_variable()
        for child in children:
            self._solver.add_clause([-child, fresh])
        self._solver.add_clause([-fresh] + list(children))
        return fresh
