"""A lazy SMT solver for linear arithmetic, with optimisation.

This is the reproduction's stand-in for Z3: the synthesis algorithm needs

* satisfiability of formulas built from ∧ / ∨ / ∃ over linear atoms
  (the large-block transition relations of the paper),
* models (values of the program variables before and after a transition),
* *optimisation* modulo theory — minimise ``λ·u`` so counterexamples are
  extremal (vertices of the convex hull of one-step differences), and
* detection of unbounded objectives, returning the improving **ray**.

Architecture (classic lazy SMT / DPLL(T)):

``formula → NNF → Tseitin CNF (DAG-shared) → CDCL SAT core``; every
boolean model is checked for theory consistency by an exact-simplex
theory solver; theory conflicts are returned as unsat cores and blocked.
Integer variables are handled by branch-and-bound inside the theory
solver.
"""

from repro.smt.solver import SmtResult, SmtSolver, SmtStatus
from repro.smt.optimize import OptimizationResult, OptimizingSmtSolver
from repro.smt.theory import TheoryResult, check_conjunction

__all__ = [
    "SmtSolver",
    "SmtResult",
    "SmtStatus",
    "OptimizingSmtSolver",
    "OptimizationResult",
    "TheoryResult",
    "check_conjunction",
]
