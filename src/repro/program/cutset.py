"""Cut-set computation.

A *cut-set* (Shamir 1979, used in §2.2 of the paper) is a set of control
locations whose removal breaks every cycle of the control-flow graph.  The
synthesiser only attaches ranking functions to cut-set locations; all other
locations are summarised away by the large-block encoding.

For reducible control-flow graphs (everything produced by the structured
mini-language front-end) the targets of DFS back edges — the loop headers —
form a cut-set.  For irreducible graphs built directly through the
automaton API, a greedy completion pass adds locations until every cycle is
cut; the result is still a valid (if not always minimum) cut-set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.program.automaton import ControlFlowAutomaton


def compute_cutset(automaton: ControlFlowAutomaton) -> List[str]:
    """A cut-set of the automaton's control-flow graph (loop headers first)."""
    headers: List[str] = []
    for transition in automaton._back_edges():
        if transition.target not in headers:
            headers.append(transition.target)

    cutset = list(headers)
    # Greedy completion for irreducible graphs: while a cycle avoiding the
    # cut-set remains, add the location with the highest degree on such a
    # cycle.
    while True:
        cycle = _find_cycle_avoiding(automaton, set(cutset))
        if cycle is None:
            break
        best = max(
            cycle,
            key=lambda location: len(automaton.outgoing(location))
            + len(automaton.incoming(location)),
        )
        cutset.append(best)
    return cutset


def is_cutset(automaton: ControlFlowAutomaton, cutset: Iterable[str]) -> bool:
    """Whether removing *cutset* breaks every cycle of the CFG."""
    return _find_cycle_avoiding(automaton, set(cutset)) is None


def _find_cycle_avoiding(
    automaton: ControlFlowAutomaton, excluded: Set[str]
) -> List[str] | None:
    """A cycle of the CFG avoiding *excluded*, or None if none exists."""
    color: Dict[str, int] = {}
    stack: List[str] = []

    def visit(location: str) -> List[str] | None:
        color[location] = 1
        stack.append(location)
        for transition in automaton.outgoing(location):
            successor = transition.target
            if successor in excluded:
                continue
            state = color.get(successor, 0)
            if state == 1:
                cycle_start = stack.index(successor)
                return stack[cycle_start:]
            if state == 0:
                found = visit(successor)
                if found is not None:
                    return found
        stack.pop()
        color[location] = 2
        return None

    for start in sorted(automaton.locations):
        if start in excluded or color.get(start, 0) != 0:
            continue
        found = visit(start)
        if found is not None:
            return found
    return None
