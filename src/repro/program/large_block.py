"""Large-block encoding of a control-flow automaton.

Given a cut-set ``W``, every pair ``(k, k')`` of cut points connected by a
path that stays outside ``W`` gives rise to one :class:`BlockTransition`
whose formula relates the variables at ``k`` (unprimed) with the variables
at ``k'`` (primed) and existentially quantifies (by simply leaving free)
one set of copies per intermediate location.

The construction is the one described in §2.2 of the paper: because the
region between cut points is acyclic, a formula *linear in the size of the
program* can describe the union of all (possibly exponentially many) paths
— disjunctions appear at control-flow joins and are never expanded.  The
formula objects are shared (a DAG), and the Tseitin encoder of the SMT
layer caches on identity, so laziness is preserved end-to-end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import FALSE, Formula, conjunction, disjunction
from repro.linexpr.transform import prime_suffix
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset
from repro.program.transition import Transition

_block_counter = itertools.count()


@dataclass
class BlockTransition:
    """All paths from cut point *source* to cut point *target*.

    ``formula`` is over the program variables ``x`` (values at *source*)
    and their primed versions ``x'`` (values at *target*); every other
    variable occurring in it is an implicitly existentially quantified
    intermediate copy or havoc input.
    """

    source: str
    target: str
    formula: Formula
    path_count: int

    def __repr__(self) -> str:
        return "BlockTransition(%s -> %s, %d paths)" % (
            self.source,
            self.target,
            self.path_count,
        )


def large_block_encoding(
    automaton: ControlFlowAutomaton,
    cutset: Optional[Sequence[str]] = None,
) -> List[BlockTransition]:
    """Summarise the automaton onto its cut-set.

    Returns one :class:`BlockTransition` per pair of cut points that is
    connected by at least one path avoiding other cut points internally.
    """
    if cutset is None:
        cutset = compute_cutset(automaton)
    cut = set(cutset)
    blocks: List[BlockTransition] = []
    for source in cutset:
        blocks.extend(_blocks_from(automaton, source, cut))
    return blocks


def _blocks_from(
    automaton: ControlFlowAutomaton, source: str, cut: set
) -> List[BlockTransition]:
    """Block transitions starting at the cut point *source*."""
    variables = automaton.variables
    batch = next(_block_counter)

    def copy_name(location: str, variable: str) -> str:
        return "%s@%s!b%d" % (variable, location, batch)

    # reach[ℓ] = (formula, path count) describing paths source → ℓ staying
    # outside the cut-set after the first step; the values at ℓ are held in
    # the per-location copies copy_name(ℓ, v).  Memoised over the acyclic
    # region, so shared prefixes are encoded once.
    reach: Dict[str, Tuple[Formula, int]] = {}

    def reach_location(location: str) -> Tuple[Formula, int]:
        if location == source:
            equalities = [
                LinExpr.variable(copy_name(source, name)).eq(
                    LinExpr.variable(name)
                )
                for name in variables
            ]
            return conjunction(equalities), 1
        cached = reach.get(location)
        if cached is not None:
            return cached
        disjuncts: List[Formula] = []
        paths = 0
        for transition in automaton.incoming(location):
            predecessor = transition.source
            if predecessor in cut and predecessor != source:
                continue
            previous, previous_paths = reach_location(predecessor)
            if previous is FALSE:
                continue
            step = _step_formula(transition, variables, copy_name)
            disjuncts.append(conjunction([previous, step]))
            paths += previous_paths
        result = (disjunction(disjuncts), paths)
        reach[location] = result
        return result

    blocks: List[BlockTransition] = []
    for target in sorted(cut):
        disjuncts: List[Formula] = []
        paths = 0
        for transition in automaton.incoming(target):
            predecessor = transition.source
            if predecessor in cut and predecessor != source:
                continue
            previous, previous_paths = reach_location(predecessor)
            if previous is FALSE:
                continue
            prime = {name: prime_suffix(name) for name in variables}
            step = transition.relation(
                variables,
                prime=prime,
                source_renaming={
                    name: copy_name(predecessor, name) for name in variables
                },
            )
            disjuncts.append(conjunction([previous, step]))
            paths += previous_paths
        formula = disjunction(disjuncts)
        if formula is not FALSE:
            blocks.append(BlockTransition(source, target, formula, paths))
    return blocks


def _step_formula(
    transition: Transition,
    variables: Sequence[str],
    copy_name,
) -> Formula:
    """The relation of one intermediate edge, between per-location copies."""
    prime = {
        name: copy_name(transition.target, name) for name in variables
    }
    source_renaming = {
        name: copy_name(transition.source, name) for name in variables
    }
    return transition.relation(
        variables, prime=prime, source_renaming=source_renaming
    )


def single_location_relation(
    blocks: Sequence[BlockTransition], location: str
) -> Formula:
    """The union of the self-loop blocks at *location* (single control point)."""
    return disjunction(
        block.formula
        for block in blocks
        if block.source == location and block.target == location
    )
