"""Integer transition systems (control-flow automata).

Programs are modelled the way the paper models them (§2.2): a finite set of
control states, integer-valued variables, and guarded transitions whose
guards and updates are linear.  The package also provides

* cut-set computation (the set of loop headers / feedback vertex set the
  ranking functions are attached to),
* the *large-block encoding*: one formula per pair of cut points capturing
  every path between them without enumerating those paths,
* a convenience builder used by the examples, tests and benchmark suites.
"""

from repro.program.transition import Transition
from repro.program.automaton import ControlFlowAutomaton
from repro.program.cutset import compute_cutset, is_cutset
from repro.program.large_block import BlockTransition, large_block_encoding
from repro.program.builder import AutomatonBuilder, simple_loop

__all__ = [
    "Transition",
    "ControlFlowAutomaton",
    "compute_cutset",
    "is_cutset",
    "BlockTransition",
    "large_block_encoding",
    "AutomatonBuilder",
    "simple_loop",
]
