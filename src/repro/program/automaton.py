"""Control-flow automata (integer transition systems)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.linexpr.formula import Formula, TRUE, atom
from repro.program.transition import Transition


class ControlFlowAutomaton:
    """A program: control locations, integer variables, guarded transitions.

    ``initial_condition`` constrains the variables at the initial location
    (the ``assume`` statements of the mini-language or the initial values of
    the paper's examples); it is used by the invariant generator only — the
    synthesiser works relative to whatever invariant it is given.
    """

    def __init__(
        self,
        variables: Sequence[str],
        initial_location: str,
        initial_condition: Formula = TRUE,
        integer_variables: Optional[Iterable[str]] = None,
        name: str = "",
    ):
        #: Human-readable program name (propagated by the front end; used
        #: by the analysis pipeline and the reporting layers for labelling).
        self.name = name
        self.variables: List[str] = list(variables)
        self.initial_location = initial_location
        self.initial_condition = atom(initial_condition)
        self.locations: Set[str] = {initial_location}
        self.transitions: List[Transition] = []
        # By default every program variable ranges over the integers, which
        # is the setting of the paper's benchmarks; rational programs can
        # override this (see §8 "Rational Variables").
        self.integer_variables: Set[str] = (
            set(integer_variables)
            if integer_variables is not None
            else set(variables)
        )

    # -- construction ------------------------------------------------------------

    def add_location(self, name: str) -> str:
        self.locations.add(name)
        return name

    def add_transition(self, transition: Transition) -> Transition:
        unknown = (
            set(transition.updates)
            - set(self.variables)
        )
        if unknown:
            raise ValueError(
                "transition updates unknown variables %s" % sorted(unknown)
            )
        self.locations.add(transition.source)
        self.locations.add(transition.target)
        self.transitions.append(transition)
        return transition

    # -- structure ----------------------------------------------------------------

    def outgoing(self, location: str) -> List[Transition]:
        return [t for t in self.transitions if t.source == location]

    def incoming(self, location: str) -> List[Transition]:
        return [t for t in self.transitions if t.target == location]

    def successors(self, location: str) -> List[str]:
        return sorted({t.target for t in self.outgoing(location)})

    def predecessors(self, location: str) -> List[str]:
        return sorted({t.source for t in self.incoming(location)})

    def edges(self) -> List[Transition]:
        return list(self.transitions)

    def reachable_locations(self) -> Set[str]:
        """Locations reachable from the initial location in the CFG."""
        seen: Set[str] = set()
        frontier = [self.initial_location]
        while frontier:
            location = frontier.pop()
            if location in seen:
                continue
            seen.add(location)
            frontier.extend(self.successors(location))
        return seen

    def has_cycle(self) -> bool:
        """Whether the control-flow graph contains a cycle."""
        return bool(self._back_edges())

    def _back_edges(self) -> List[Transition]:
        """Transitions closing a cycle in a DFS from the initial location."""
        color: Dict[str, int] = {}
        back: List[Transition] = []

        def visit(location: str) -> None:
            color[location] = 1
            for transition in self.outgoing(location):
                successor = transition.target
                state = color.get(successor, 0)
                if state == 0:
                    visit(successor)
                elif state == 1:
                    back.append(transition)
            color[location] = 2

        for start in [self.initial_location] + sorted(self.locations):
            if color.get(start, 0) == 0:
                visit(start)
        return back

    # -- misc ----------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        return {
            "locations": len(self.locations),
            "transitions": len(self.transitions),
            "variables": len(self.variables),
        }

    def __repr__(self) -> str:
        return "ControlFlowAutomaton(%d locations, %d transitions, vars=%s)" % (
            len(self.locations),
            len(self.transitions),
            self.variables,
        )
