"""Convenience constructors for control-flow automata.

The paper's running examples are small guarded-command automata
("transitions are specified by guard/action"); :class:`AutomatonBuilder`
lets tests, examples and benchmark suites write them almost verbatim::

    builder = AutomatonBuilder(["x", "y"], initial="k0")
    builder.transition(
        "k0", "k0",
        guard=[x <= 10, y >= 0],
        updates={"x": x + 1, "y": y - 1},
        name="t1",
    )
    automaton = builder.build()
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.linexpr.constraint import Constraint
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, TRUE, atom, conjunction
from repro.program.automaton import ControlFlowAutomaton
from repro.program.transition import Transition

GuardLike = Union[Formula, Constraint, Sequence[Union[Formula, Constraint]], None]


def _as_guard(guard: GuardLike) -> Formula:
    if guard is None:
        return TRUE
    if isinstance(guard, (list, tuple)):
        return conjunction(atom(part) for part in guard)
    return atom(guard)


class AutomatonBuilder:
    """Incremental construction of a :class:`ControlFlowAutomaton`."""

    def __init__(
        self,
        variables: Sequence[str],
        initial: str = "init",
        initial_condition: GuardLike = None,
        integer_variables: Optional[Iterable[str]] = None,
    ):
        self._automaton = ControlFlowAutomaton(
            variables,
            initial,
            _as_guard(initial_condition),
            integer_variables,
        )

    @property
    def variables(self) -> List[str]:
        return list(self._automaton.variables)

    def location(self, name: str) -> str:
        return self._automaton.add_location(name)

    def transition(
        self,
        source: str,
        target: str,
        guard: GuardLike = None,
        updates: Optional[Mapping[str, Optional[LinExpr]]] = None,
        name: str = "",
    ) -> Transition:
        """Add a guarded transition; integer right-hand sides are accepted."""
        normalised: Dict[str, Optional[LinExpr]] = {}
        for variable, expression in (updates or {}).items():
            if expression is None:
                normalised[variable] = None
            elif isinstance(expression, LinExpr):
                normalised[variable] = expression
            else:
                normalised[variable] = LinExpr.constant(expression)
        transition = Transition(
            source, target, _as_guard(guard), normalised, name
        )
        return self._automaton.add_transition(transition)

    def build(self) -> ControlFlowAutomaton:
        return self._automaton


def simple_loop(
    variables: Sequence[str],
    transitions: Sequence[
        Mapping[str, object]
    ],
    initial_condition: GuardLike = None,
    location: str = "loop",
    integer_variables: Optional[Iterable[str]] = None,
) -> ControlFlowAutomaton:
    """A single-location automaton — the setting of sections 3–5 of the paper.

    Each element of *transitions* is a mapping with keys ``guard``,
    ``updates`` and optionally ``name``; every transition is a self-loop on
    *location*.
    """
    builder = AutomatonBuilder(
        variables,
        initial=location,
        initial_condition=initial_condition,
        integer_variables=integer_variables,
    )
    for description in transitions:
        builder.transition(
            location,
            location,
            guard=description.get("guard"),
            updates=description.get("updates"),
            name=str(description.get("name", "")),
        )
    return builder.build()
