"""Guarded transitions of a control-flow automaton.

A transition carries

* a *guard*: a formula over the (unprimed) program variables, possibly
  mentioning auxiliary variables (havoc inputs, modelling ``nondet()``),
* an *update*: for each program variable either a linear expression over
  the unprimed variables (deterministic assignment) or ``None`` (havoc /
  nondeterministic assignment).  Variables absent from the update map keep
  their value.

The method :meth:`Transition.relation` turns the transition into a formula
over ``x`` and ``x'`` — the building block of both the step-by-step
semantics used by the invariant generator and the large-block encoding
used by the synthesiser.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.linexpr.formula import Formula, TRUE, atom, conjunction
from repro.linexpr.transform import (
    formula_variables,
    prime_suffix,
    rename_formula,
)

_fresh_counter = itertools.count()


def fresh_variable(stem: str = "aux") -> str:
    """A globally fresh auxiliary variable name."""
    return "%s!%d" % (stem, next(_fresh_counter))


@dataclass
class Transition:
    """A guarded command ``source --[guard / updates]--> target``."""

    source: str
    target: str
    guard: Formula = TRUE
    updates: Dict[str, Optional[LinExpr]] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        self.guard = atom(self.guard)
        if not self.name:
            self.name = "%s->%s#%d" % (
                self.source,
                self.target,
                next(_fresh_counter),
            )

    # -- queries ---------------------------------------------------------------

    def assigned_variables(self) -> List[str]:
        return sorted(self.updates)

    def guard_variables(self) -> frozenset:
        return formula_variables(self.guard)

    def is_self_loop(self) -> bool:
        return self.source == self.target

    # -- semantics ---------------------------------------------------------------

    def relation(
        self,
        variables: Sequence[str],
        prime: Optional[Mapping[str, str]] = None,
        source_renaming: Optional[Mapping[str, str]] = None,
    ) -> Formula:
        """The transition relation as a formula over ``x`` and ``x'``.

        ``prime`` maps each program variable to the name holding its value
        *after* the transition (default: the ``'``-suffixed name);
        ``source_renaming`` optionally renames the *pre*-state variables
        (used by the large-block encoder, which gives every intermediate
        location its own copies).  Auxiliary (havoc) variables are renamed
        to globally fresh names so that two occurrences of the same
        transition never share their nondeterministic choices.
        """
        if prime is None:
            prime = {name: prime_suffix(name) for name in variables}
        source_renaming = dict(source_renaming or {})

        # Fresh copies for auxiliary variables appearing in the guard or in
        # the right-hand sides but not being program variables.
        auxiliaries = set()
        auxiliaries |= set(self.guard_variables()) - set(variables)
        for expression in self.updates.values():
            if expression is not None:
                auxiliaries |= set(expression.variables()) - set(variables)
        aux_renaming = {name: fresh_variable(name) for name in sorted(auxiliaries)}

        pre_renaming = dict(aux_renaming)
        pre_renaming.update(source_renaming)

        parts: List[Formula] = [rename_formula(self.guard, pre_renaming)]
        for name in variables:
            post_name = prime[name]
            expression = self.updates.get(name, LinExpr.variable(name))
            if expression is None:
                # Havoc: the post value is unconstrained, nothing to add.
                continue
            renamed = expression.rename(pre_renaming)
            parts.append(
                Constraint(
                    LinExpr.variable(post_name) - renamed,
                    Relation.EQ,
                )
            )
        return conjunction(parts)

    def guard_constraints(self) -> Optional[List[Constraint]]:
        """The guard as a list of constraints when it is a pure conjunction.

        Returns ``None`` when the guard contains disjunctions or
        quantifiers; the polyhedral invariant generator then falls back to
        an over-approximation.
        """
        from repro.linexpr.formula import And, Atom

        collected: List[Constraint] = []

        def walk(node: Formula) -> bool:
            if node is TRUE:
                return True
            if isinstance(node, Atom):
                collected.append(node.constraint)
                return True
            if isinstance(node, And):
                return all(walk(child) for child in node.operands)
            return False

        if walk(self.guard):
            return collected
        return None

    def __repr__(self) -> str:
        updates = ", ".join(
            "%s := %s" % (name, "?" if expr is None else expr)
            for name, expr in sorted(self.updates.items())
        )
        return "Transition(%s -> %s | %r | %s)" % (
            self.source,
            self.target,
            self.guard,
            updates or "skip",
        )
