"""Double-description (Chernikova) conversion between representations.

The core routine, :func:`cone_double_description`, incrementally intersects
the full space with homogeneous half-spaces ``a·y ≤ 0`` while maintaining a
generating system of lines and rays.  Polyhedra are handled through the
usual homogenisation ``x ↦ (x, t)``: a generator with ``t > 0`` is a vertex
(after scaling ``t`` to 1) and a generator with ``t = 0`` is a ray.

The adjacency test used when combining rays is the combinatorial one
(zero-set inclusion), with the zero sets recomputed exactly against the
half-spaces already processed.  In degenerate situations the output may
contain a few redundant generators, which is harmless for every use in
this library (consumers deduplicate or run LP-based redundancy removal).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.linalg.sparse import SparseRow
from repro.linalg.vector import Vector
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.polyhedra.generators import GeneratorSystem


def cone_double_description(
    rows: Sequence[Tuple[Vector, bool]], dimension: int
) -> Tuple[List[Vector], List[Vector]]:
    """Generators of the cone ``{y | a·y ≤ 0 (rows), a·y = 0 (equalities)}``.

    *rows* is a sequence of ``(a, is_equality)`` pairs.  Returns
    ``(lines, rays)`` such that the cone equals ``span(lines) + cone(rays)``.

    Internally normals and generators are primitive-integer
    :class:`~repro.linalg.sparse.SparseRow` vectors, so the inner loops
    (dot-product sign tests, zero sets, ray combination) run on machine
    integers; generators are scale-invariant, which makes the integer
    dot *numerators* directly usable as combination coefficients.
    """
    halfspaces: List[SparseRow] = []
    for normal, is_equality in rows:
        if len(normal) != dimension:
            raise ValueError("constraint normal has wrong dimension")
        row = SparseRow.from_dense(normal).normalized_direction()
        halfspaces.append(row)
        if is_equality:
            halfspaces.append(-row)

    lines: List[SparseRow] = [
        SparseRow.from_pairs([(i, 1)]) for i in range(dimension)
    ]
    rays: List[SparseRow] = []

    for index, normal in enumerate(halfspaces):
        processed = halfspaces[:index]

        # ---- Case 1: some line does not lie in the hyperplane. -----------
        # All generators are kept at denominator 1, so ``dot_numerator``
        # is the dot product up to the (positive) normal denominator —
        # exactly what sign tests and scale-invariant combinations need.
        pivot_line: Optional[SparseRow] = None
        value = 0
        for line in lines:
            scalar = normal.dot_numerator(line)
            if scalar != 0:
                pivot_line = line
                value = scalar
                break
        if pivot_line is not None:
            if value > 0:
                pivot_line = -pivot_line
                value = -value
            new_lines: List[SparseRow] = []
            for line in lines:
                scalar = normal.dot_numerator(line)
                if scalar == 0:
                    new_lines.append(line)
                    continue
                if line is pivot_line:
                    continue
                # line − (scalar / value) · pivot, scaled by −value > 0.
                projected = line.combine_int(-value, pivot_line, scalar)
                if not projected.is_zero():
                    new_lines.append(projected.normalized_direction())
            new_rays: List[SparseRow] = []
            for ray in rays:
                scalar = normal.dot_numerator(ray)
                if scalar == 0:
                    new_rays.append(ray)
                else:
                    projected = ray.combine_int(-value, pivot_line, scalar)
                    if not projected.is_zero():
                        new_rays.append(projected.normalized_direction())
            # The pivot line survives as a ray strictly inside the half-space.
            new_rays.append(pivot_line)
            lines = new_lines
            rays = _deduplicate(new_rays)
            continue

        # ---- Case 2: all lines lie in the hyperplane; split the rays. ----
        values = [normal.dot_numerator(ray) for ray in rays]
        satisfied = [ray for ray, v in zip(rays, values) if v < 0]
        tight = [ray for ray, v in zip(rays, values) if v == 0]
        violated = [ray for ray, v in zip(rays, values) if v > 0]

        if not violated:
            continue

        zero_sets = {
            id(ray): _zero_set(ray, processed) for ray in rays
        }

        combined: List[SparseRow] = []
        for plus in violated:
            for minus in satisfied:
                if not _adjacent(plus, minus, rays, zero_sets):
                    continue
                plus_value = normal.dot_numerator(plus)
                minus_value = normal.dot_numerator(minus)
                new_ray = minus.combine_int(plus_value, plus, -minus_value)
                if not new_ray.is_zero():
                    combined.append(new_ray.normalized_direction())

        rays = _deduplicate(satisfied + tight + combined)

    to_vector = lambda row: Vector(row.to_dense(dimension))  # noqa: E731
    return [to_vector(line) for line in lines], [to_vector(ray) for ray in rays]


def _zero_set(ray: SparseRow, halfspaces: Sequence[SparseRow]) -> Set[int]:
    return {
        position
        for position, normal in enumerate(halfspaces)
        if normal.dot_numerator(ray) == 0
    }


def _adjacent(
    first: SparseRow,
    second: SparseRow,
    rays: Sequence[SparseRow],
    zero_sets: Dict[int, Set[int]],
) -> bool:
    """Combinatorial adjacency test for the double-description step."""
    common = zero_sets[id(first)] & zero_sets[id(second)]
    for other in rays:
        if other is first or other is second:
            continue
        if common <= zero_sets[id(other)]:
            return False
    return True


def _deduplicate(rays: List[SparseRow]) -> List[SparseRow]:
    seen: Dict[SparseRow, None] = {}
    for ray in rays:
        if ray.is_zero():
            continue
        seen.setdefault(ray.normalized_direction())
    return list(seen)


# ---------------------------------------------------------------------------
# Polyhedron-level conversions via homogenisation
# ---------------------------------------------------------------------------


def constraints_to_generators(
    constraints: Sequence[Constraint], variables: Sequence[str]
) -> GeneratorSystem:
    """Generator system of ``{x | constraints}`` over the given variables.

    Strict inequalities are relaxed to their closures: the paper's
    polyhedra are closed (Definition 1), and callers normalise strict
    guards on integer variables beforehand.
    """
    ordering = tuple(variables)
    dimension = len(ordering) + 1  # homogenising coordinate comes last

    rows: List[Tuple[Vector, bool]] = []
    for constraint in constraints:
        coefficients = [
            constraint.expr.coefficient(name) for name in ordering
        ]
        coefficients.append(constraint.expr.constant_term)
        rows.append((Vector(coefficients), constraint.is_equality()))
    # t ≥ 0, i.e. -t ≤ 0.
    rows.append((Vector([Fraction(0)] * len(ordering) + [Fraction(-1)]), False))

    lines, rays = cone_double_description(rows, dimension)

    system = GeneratorSystem(ordering)
    for line in lines:
        # The homogenising coordinate of a line must be zero because t ≥ 0.
        spatial = Vector(line[: len(ordering)])
        if not spatial.is_zero():
            system.lines.append(spatial)
    has_point = False
    for ray in rays:
        weight = ray[len(ordering)]
        spatial = Vector(ray[: len(ordering)])
        if weight > 0:
            system.vertices.append(spatial / weight)
            has_point = True
        elif not spatial.is_zero():
            system.rays.append(spatial.normalized())
    if not has_point:
        # Without a single point the polyhedron is empty: drop the stray
        # recession directions so is_empty() answers correctly.
        system.rays = []
        system.lines = []
    return system


def generators_to_constraints(system: GeneratorSystem) -> List[Constraint]:
    """Facet constraints of the polyhedron generated by *system*.

    Works by double description on the polar: a valid constraint
    ``a·x ≤ b`` corresponds to a vector ``(a, -b)`` in the polar of the
    homogenised cone, whose extreme rays are exactly the facets.
    """
    ordering = system.variables
    dimension = len(ordering) + 1
    if system.is_empty():
        # The canonical representation of the empty polyhedron.
        return [Constraint(LinExpr.constant(1), Relation.LE)]

    rows: List[Tuple[Vector, bool]] = []
    for vertex in system.vertices:
        rows.append((Vector(list(vertex) + [Fraction(1)]), False))
    for ray in system.rays:
        rows.append((Vector(list(ray) + [Fraction(0)]), False))
    for line in system.lines:
        rows.append((Vector(list(line) + [Fraction(0)]), True))

    lines, rays = cone_double_description(rows, dimension)

    constraints: List[Constraint] = []
    for line in lines:
        constraint = _row_to_constraint(line, ordering, Relation.EQ)
        if constraint is not None:
            constraints.append(constraint)
    for ray in rays:
        constraint = _row_to_constraint(ray, ordering, Relation.LE)
        if constraint is not None:
            constraints.append(constraint)
    return constraints


def _row_to_constraint(
    row: Vector, ordering: Sequence[str], relation: Relation
) -> Optional[Constraint]:
    coefficients = {name: row[i] for i, name in enumerate(ordering)}
    constant = row[len(ordering)]
    expr = LinExpr(coefficients, constant)
    constraint = Constraint(expr, relation)
    if constraint.is_trivially_true():
        return None
    return constraint.normalized()
