"""Fourier–Motzkin elimination (projection of polyhedra).

Used by the polyhedral abstract domain (assignments and havoc operations
project the old value of the assigned variable away) and by the eager
baselines when they need the transition polyhedron in ``(x, x')`` space
with the auxiliary existential variables removed.

The paper points out (§2.2) that eliminating a block of existential
quantifiers can blow up exponentially; the lazy algorithm never does it,
but the substrate still needs a correct implementation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.problem import Sense
from repro.lp.simplex import solve_lp


def eliminate_variable(
    constraints: Sequence[Constraint], variable: str
) -> List[Constraint]:
    """Project *variable* out of a conjunction of non-strict constraints."""
    equalities = [
        constraint
        for constraint in constraints
        if constraint.is_equality()
        and constraint.expr.coefficient(variable) != 0
    ]
    if equalities:
        # Solve the first equality for the variable and substitute.
        pivot = equalities[0]
        coefficient = pivot.expr.coefficient(variable)
        # variable = -(rest)/coefficient
        rest = pivot.expr - LinExpr({variable: coefficient})
        replacement = rest * (-1) / coefficient
        result = []
        for constraint in constraints:
            if constraint is pivot:
                continue
            substituted = constraint.substitute({variable: replacement})
            if substituted.is_trivially_true():
                continue
            result.append(substituted)
        return result

    lowers: List[Constraint] = []   # variable ≥ something
    uppers: List[Constraint] = []   # variable ≤ something
    others: List[Constraint] = []
    for constraint in constraints:
        coefficient = constraint.expr.coefficient(variable)
        if coefficient == 0:
            others.append(constraint)
        elif coefficient > 0:
            uppers.append(constraint)
        else:
            lowers.append(constraint)

    result = list(others)
    for upper in uppers:
        for lower in lowers:
            upper_coefficient = upper.expr.coefficient(variable)
            lower_coefficient = -lower.expr.coefficient(variable)
            combined_expr = (
                upper.expr * lower_coefficient + lower.expr * upper_coefficient
            )
            relation = Relation.LE
            if upper.is_strict() or lower.is_strict():
                relation = Relation.LT
            combined = Constraint(combined_expr, relation)
            if combined.is_trivially_true():
                continue
            result.append(combined.normalized())
    return result


def fourier_motzkin(
    constraints: Sequence[Constraint],
    eliminate: Iterable[str],
    simplify: bool = True,
) -> List[Constraint]:
    """Eliminate every variable in *eliminate* from the conjunction."""
    current = list(constraints)
    for variable in eliminate:
        current = eliminate_variable(current, variable)
        if simplify:
            current = remove_redundant(current)
    return current


def project_constraints(
    constraints: Sequence[Constraint],
    keep: Sequence[str],
    simplify: bool = True,
) -> List[Constraint]:
    """Project the conjunction onto the variables in *keep*."""
    keep_set = set(keep)
    mentioned = set()
    for constraint in constraints:
        mentioned |= constraint.variables()
    eliminate = sorted(mentioned - keep_set)
    return fourier_motzkin(constraints, eliminate, simplify)


def remove_redundant(
    constraints: Sequence[Constraint],
) -> List[Constraint]:
    """Drop constraints implied by the others (LP-based, exact).

    Duplicate constraints are removed first; then each remaining
    inequality is tested for entailment by maximising its left-hand side
    subject to the others.
    """
    unique: List[Constraint] = []
    seen = set()
    for constraint in constraints:
        normal = constraint.normalized()
        if normal.is_trivially_true():
            continue
        key = (normal.expr, normal.relation)
        if key not in seen:
            seen.add(key)
            unique.append(normal)

    result: List[Constraint] = []
    for index, candidate in enumerate(unique):
        if candidate.is_equality():
            result.append(candidate)
            continue
        # Test against the constraints already kept plus the ones not yet
        # examined; this never drops two mutually redundant constraints.
        others = result + unique[index + 1 :]
        context = [c.weaken() for c in others]
        outcome = solve_lp(candidate.expr, context, Sense.MAXIMIZE)
        if outcome.is_optimal and outcome.objective is not None and (
            outcome.objective <= 0
        ):
            # The constraint is implied by the others; drop it.
            continue
        result.append(candidate)
    return result


def entails(
    constraints: Sequence[Constraint], candidate: Constraint
) -> bool:
    """Whether the conjunction of *constraints* implies *candidate*.

    Only meaningful for satisfiable conjunctions of non-strict constraints;
    an unsatisfiable conjunction entails everything and is reported as such.
    """
    context = [c.weaken() for c in constraints]
    if candidate.is_equality():
        upper = Constraint(candidate.expr, Relation.LE)
        lower = Constraint(-candidate.expr, Relation.LE)
        return entails(constraints, upper) and entails(constraints, lower)
    outcome = solve_lp(candidate.expr, context, Sense.MAXIMIZE)
    if outcome.is_infeasible:
        return True
    if outcome.is_unbounded:
        return False
    assert outcome.objective is not None
    if candidate.is_strict():
        return outcome.objective < 0
    return outcome.objective <= 0
