"""Fourier–Motzkin elimination (projection of polyhedra).

Used by the polyhedral abstract domain (assignments and havoc operations
project the old value of the assigned variable away) and by the eager
baselines when they need the transition polyhedron in ``(x, x')`` space
with the auxiliary existential variables removed.

The paper points out (§2.2) that eliminating a block of existential
quantifiers can blow up exponentially; the lazy algorithm never does it,
but the substrate still needs a correct *and affordable* implementation.
Three layers keep the row count down, cheapest first:

1. **Scaled-integer rows.**  Constraints are combined as GCD-normalised
   :class:`~repro.linalg.sparse.SparseRow` integer vectors (the constant
   at a sentinel index), so each FM combination is one fused
   integer multiply-add instead of a chain of ``Fraction`` allocations —
   and identical rows collide structurally, deduplicating for free.
2. **Syntactic pruning.**  After every elimination step, duplicate rows
   and syntactically dominated rows (same homogeneous direction, weaker
   bound) are dropped, and rows failing Kohler/Imbert's acceleration
   bound — a combination touching more than ``k + 1`` original
   inequalities after ``k`` eliminations is always redundant — never
   survive.  No LP is solved for any of this.
3. **LP-based pruning.**  Exact entailment checks via
   :func:`remove_redundant` run once at the end of a projection (and
   mid-flight only if the system still outgrows a safety threshold),
   instead of once per constraint per eliminated variable as the dense
   implementation did.  :data:`statistics` counts how many LP solves the
   cheap layers saved.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.linalg.packed import (
    _INT64_MAX,
    _np,
    PackedRow,
    pack_row,
    resolve_kernel,
)
from repro.linalg.sparse import SparseRow
from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.problem import Sense
from repro.lp.simplex import solve_lp

#: Sentinel row index carrying the affine constant of a constraint.
_CONST = -1

#: After an elimination step the system may legitimately grow; only when
#: it exceeds this multiple of its pre-step size does the expensive
#: LP-based pruning run mid-flight instead of once at the end.
_LP_PRUNE_GROWTH = 4


@dataclass
class ProjectionStatistics:
    """Counters for the work (and the avoided work) of FM elimination.

    ``lp_calls`` is the number of exact LP entailment checks actually
    solved; ``lp_calls_saved`` the number the cheap layers made
    unnecessary — only *dominated* (not duplicate, not trivially-true)
    and Kohler-pruned rows count, because those are exactly the rows the
    per-step LP pruning of the previous implementation would have
    entailment-checked; ``rows_eliminated`` the number of rows dropped
    by any cheap layer.  The module-level :data:`statistics` handle is
    **thread-local**: every thread folds into its own instance, so
    concurrent analyses (e.g. the ``nonterm=auto`` race) can never
    corrupt each other's counters or mis-attribute saved LP calls.
    """

    variables_eliminated: int = 0
    combinations: int = 0
    lp_calls: int = 0
    lp_calls_saved: int = 0
    rows_pruned_syntactic: int = 0
    rows_pruned_kohler: int = 0

    @property
    def rows_eliminated(self) -> int:
        return self.rows_pruned_syntactic + self.rows_pruned_kohler

    def snapshot(self) -> Tuple[int, ...]:
        return (
            self.variables_eliminated,
            self.combinations,
            self.lp_calls,
            self.lp_calls_saved,
            self.rows_pruned_syntactic,
            self.rows_pruned_kohler,
        )

    def to_dict(self) -> dict:
        return {
            "variables_eliminated": self.variables_eliminated,
            "combinations": self.combinations,
            "lp_calls": self.lp_calls,
            "lp_calls_saved": self.lp_calls_saved,
            "rows_pruned_syntactic": self.rows_pruned_syntactic,
            "rows_pruned_kohler": self.rows_pruned_kohler,
            "rows_eliminated": self.rows_eliminated,
        }


_THREAD_STATE = threading.local()


def _current_statistics() -> ProjectionStatistics:
    """This thread's counter instance (created lazily per thread)."""
    stats = getattr(_THREAD_STATE, "statistics", None)
    if stats is None:
        stats = ProjectionStatistics()
        _THREAD_STATE.statistics = stats
    return stats


class _ThreadLocalStatistics:
    """Forwarding proxy onto the calling thread's :class:`ProjectionStatistics`.

    Preserves the historical module-level ``statistics.xxx += 1`` /
    ``statistics.snapshot()`` interface while keeping every thread's
    counters isolated: attribute reads and writes resolve against the
    calling thread's own instance, so two provers racing in one process
    (``nonterm=auto``) cannot interleave increments or fold each other's
    ``lp_calls_saved`` into their results.
    """

    __slots__ = ()

    def __getattr__(self, name: str):
        return getattr(_current_statistics(), name)

    def __setattr__(self, name: str, value) -> None:
        setattr(_current_statistics(), name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<thread-local %r>" % (_current_statistics(),)


#: Per-thread counters behind one module-level handle;
#: :func:`repro.api.pipeline` snapshots them around a run to attribute
#: saved LP calls to that run's ``LpStatistics``.
statistics = _ThreadLocalStatistics()


def lp_calls_saved_since(snapshot: Tuple[int, ...]) -> int:
    """LP calls saved since *snapshot* (from :meth:`ProjectionStatistics.snapshot`).

    Both the snapshot and this read resolve against the calling thread's
    counters, so the difference is meaningful only when taken on the
    thread that performed the projections.
    """
    return statistics.lp_calls_saved - snapshot[3]


# ---------------------------------------------------------------------------
# Constraint <-> integer row conversion
# ---------------------------------------------------------------------------


def _index_rows(
    constraints: Sequence[Constraint],
    index_of: Optional[Dict[str, int]] = None,
    kernel: str = "exact",
) -> Tuple[List[str], List[Tuple[SparseRow, Relation]]]:
    """Map a constraint system onto primitive-integer sparse rows.

    With ``kernel`` resolving to ``"packed"`` the rows are packed into
    fixed-width int64 arrays (slot 0 carries the :data:`_CONST`
    sentinel), so the FM combinations, dominance keys and Kohler sign
    tests downstream all run on packed columns; rows whose entries
    exceed int64 stay exact individually.
    """
    if index_of is None:
        names = sorted(
            {name for c in constraints for name in c.expr.terms}
        )
        index_of = {name: i for i, name in enumerate(names)}
    else:
        names = sorted(index_of, key=index_of.get)
    width = len(names) + 1
    packed = resolve_kernel(kernel, width) == "packed"
    rows: List[Tuple[SparseRow, Relation]] = []
    for constraint in constraints:
        pairs: List[Tuple[int, Fraction]] = [
            (index_of[name], value)
            for name, value in constraint.expr.terms.items()
        ]
        constant = constraint.expr.constant_term
        if constant:
            pairs.append((_CONST, constant))
        row = SparseRow.from_pairs(pairs).normalized_direction()
        if packed:
            row = pack_row(row, width)
        rows.append((row, constraint.relation))
    return names, rows


def _row_constraint(
    row: SparseRow, relation: Relation, names: Sequence[str]
) -> Constraint:
    terms: Dict[str, Fraction] = {}
    constant = Fraction(0)
    for index, value in row.items():
        if index == _CONST:
            constant = value
        else:
            terms[names[index]] = value
    return Constraint(LinExpr(terms, constant), relation)


def _is_trivially_true(row: SparseRow, relation: Relation) -> bool:
    if any(index != _CONST for index in row.support()):
        return False
    constant = row.numerator_at(_CONST)
    if relation is Relation.LE:
        return constant <= 0
    if relation is Relation.LT:
        return constant < 0
    return constant == 0


# ---------------------------------------------------------------------------
# the cheap pruning layers
# ---------------------------------------------------------------------------


_HistRow = Tuple[SparseRow, Relation, FrozenSet[int]]


def _prune_syntactic(rows: List[_HistRow]) -> List[_HistRow]:
    """Drop duplicates and syntactically dominated inequalities.

    Two inequality rows with the same homogeneous direction compare by
    bound: for ``a·x + c ⋈ 0`` the row with the larger constant (then the
    strict relation on ties) implies the other.  Rows are GCD-normalised
    with the *constant included*, so the dominance key re-normalises by
    the homogeneous gcd to make ``x ≤ 1`` and ``x ≤ 5`` collide.
    Equalities and constant rows pass through (deduplicated only).
    """
    best: Dict[Tuple, Tuple[Fraction, bool, int]] = {}
    passthrough: List[_HistRow] = []
    passthrough_seen: set = set()
    order: List[Tuple] = []
    keyed: Dict[Tuple, _HistRow] = {}
    for entry in rows:
        row, relation, history = entry
        if relation is Relation.EQ or all(
            index == _CONST for index in row.support()
        ):
            # Trivially-true and duplicate rows are dropped but not
            # counted as saved LP calls: the LP-based pruning never
            # entailment-checked those either.
            if _is_trivially_true(row, relation):
                statistics.rows_pruned_syntactic += 1
                continue
            identity = (row, relation)
            if identity in passthrough_seen:
                statistics.rows_pruned_syntactic += 1
                continue
            passthrough_seen.add(identity)
            passthrough.append(entry)
            continue
        divisor = 0
        for index, numerator in row.iter_scaled():
            if index != _CONST:
                divisor = gcd(divisor, numerator)
        key = tuple(
            (index, numerator // divisor)
            for index, numerator in row.iter_scaled()
            if index != _CONST
        )
        constant = Fraction(row.numerator_at(_CONST), divisor)
        strict = relation is Relation.LT
        current = best.get(key)
        if current is None:
            best[key] = (constant, strict, len(history))
            order.append(key)
            keyed[key] = entry
            continue
        held_constant, held_strict, held_history = current
        # Larger constant = tighter bound for ``expr ⋈ 0``; on exact
        # ties the strict row dominates, and among identical rows the
        # one combining fewer originals prunes better later (Kohler).
        tighter = constant > held_constant or (
            constant == held_constant
            and (
                (strict and not held_strict)
                or (strict == held_strict and len(history) < held_history)
            )
        )
        statistics.rows_pruned_syntactic += 1
        if constant != held_constant or strict != held_strict:
            # A genuinely dominated (not duplicate) row: the previous
            # implementation would have paid an LP entailment check to
            # discover it.
            statistics.lp_calls_saved += 1
        if tighter:
            best[key] = (constant, strict, len(history))
            keyed[key] = entry
    return passthrough + [keyed[key] for key in order]


# ---------------------------------------------------------------------------
# elimination
# ---------------------------------------------------------------------------


def _combine_pair(
    upper: _HistRow, lower: _HistRow, index: int
) -> Tuple[SparseRow, Relation, FrozenSet[int]]:
    """The nonnegative FM combination cancelling *index*."""
    upper_row, upper_relation, upper_history = upper
    lower_row, lower_relation, lower_history = lower
    upper_coefficient = upper_row.numerator_at(index)   # > 0
    lower_coefficient = lower_row.numerator_at(index)   # < 0
    combined = upper_row.combine_int(
        -lower_coefficient, lower_row, upper_coefficient
    ).normalized_direction()
    relation = (
        Relation.LT
        if upper_relation is Relation.LT or lower_relation is Relation.LT
        else Relation.LE
    )
    statistics.combinations += 1
    return combined, relation, upper_history | lower_history


class _BlockedLowers:
    """The packed lower rows of one FM step, stacked for blocked combination.

    For each packed upper, every ``upper x lower`` combination is then
    one broadcast multiply-add over the stacked matrix plus one masked
    ``np.gcd.reduce`` normalisation pass, instead of a ``PackedRow``
    merge (and its own gcd pass) per pair.  Only denominator-1 rows
    participate — every row the projection layer builds is
    direction-normalised, so this covers all packed rows — and each pair
    is guarded by the same a-priori int64 bound as the per-row kernel;
    pairs failing it take the exact per-pair path.
    """

    __slots__ = ("width", "matrix", "coefficients", "maxabs", "positions")

    @classmethod
    def build(
        cls, uppers: List[_HistRow], lowers: List[_HistRow], index: int
    ) -> Optional["_BlockedLowers"]:
        if _np is None:
            return None
        stackable = [
            (position, entry[0])
            for position, entry in enumerate(lowers)
            if type(entry[0]) is PackedRow and entry[0].denominator == 1
        ]
        if len(stackable) < 2:
            return None
        width = max(row.width for _, row in stackable)
        for entry in uppers:
            row = entry[0]
            if type(row) is PackedRow and row.width > width:
                width = row.width
        blocked = object.__new__(cls)
        blocked.width = width
        blocked.matrix = _np.stack(
            [row.widened(width)._dense for _, row in stackable]
        )
        blocked.coefficients = [
            row.numerator_at(index) for _, row in stackable  # each < 0
        ]
        blocked.maxabs = [row._max_abs for _, row in stackable]
        blocked.positions = [position for position, _ in stackable]
        return blocked

    def combine(self, upper_row, index: int):
        """All in-bound combinations with *upper_row*, one fused sweep.

        Returns ``{lower position: (combined, constant_only, constant)}``
        (combinations whose products would overflow int64 are absent and
        fall back to the exact per-pair path), or ``None`` when the
        upper itself cannot participate.
        """
        if type(upper_row) is not PackedRow or upper_row.denominator != 1:
            return None
        scale = upper_row.numerator_at(index)  # > 0
        upper_maxabs = upper_row._max_abs
        in_bound = [
            j
            for j, (coefficient, maxabs) in enumerate(
                zip(self.coefficients, self.maxabs)
            )
            if -coefficient * upper_maxabs + scale * maxabs <= _INT64_MAX
        ]
        if not in_bound:
            return {}
        if len(in_bound) == len(self.positions):
            matrix = self.matrix
            lower_scales = self.coefficients
        else:
            matrix = self.matrix[_np.array(in_bound, dtype=_np.intp)]
            lower_scales = [self.coefficients[j] for j in in_bound]
        upper_dense = upper_row.widened(self.width)._dense
        # out = (-b_l) * upper + a_u * lower for every stacked lower l;
        # every product and sum is covered by the per-pair bound above.
        out = _np.array(lower_scales, dtype=_np.int64)[:, None] * (
            -upper_dense
        )[None, :]
        out += scale * matrix
        magnitudes = _np.abs(out)
        divisors = _np.gcd.reduce(magnitudes, axis=1)
        peaks = magnitudes.max(axis=1)
        _np.maximum(divisors, 1, out=divisors)
        out //= divisors[:, None]
        peaks //= divisors
        nonconstant = _np.count_nonzero(out[:, 1:], axis=1).tolist()
        peak_list = peaks.tolist()
        constant_list = out[:, 0].tolist()
        combos = {}
        for k, j in enumerate(in_bound):
            row = object.__new__(PackedRow)
            row._dense = out[k]
            row.denominator = 1
            row._max_abs = int(peak_list[k])
            row._sparse = None
            combos[self.positions[j]] = (
                row,
                nonconstant[k] == 0,
                constant_list[k],
            )
        return combos


def _eliminate_index(
    rows: List[_HistRow], index: int, kohler_bound: Optional[int]
) -> List[_HistRow]:
    """One FM step over history-carrying rows (equalities via substitution)."""
    pivot = None
    for entry in rows:
        row, relation, _ = entry
        if relation is Relation.EQ and row.numerator_at(index):
            pivot = entry
            break
    if pivot is not None:
        pivot_row = pivot[0]
        result: List[_HistRow] = []
        for entry in rows:
            if entry is pivot:
                continue
            row, relation, history = entry
            if row.numerator_at(index):
                row = row.eliminate(index, pivot_row).normalized_direction()
                history = history | pivot[2]
            if _is_trivially_true(row, relation):
                continue
            result.append((row, relation, history))
        return result

    uppers: List[_HistRow] = []
    lowers: List[_HistRow] = []
    result = []
    for entry in rows:
        coefficient = entry[0].numerator_at(index)
        if coefficient > 0:
            uppers.append(entry)
        elif coefficient < 0:
            lowers.append(entry)
        else:
            result.append(entry)
    blocked = (
        _BlockedLowers.build(uppers, lowers, index) if uppers else None
    )
    for upper in uppers:
        combos = blocked.combine(upper[0], index) if blocked else None
        for position, lower in enumerate(lowers):
            pre = combos.get(position) if combos is not None else None
            if pre is not None:
                combined, constant_only, constant = pre
                relation = (
                    Relation.LT
                    if upper[1] is Relation.LT or lower[1] is Relation.LT
                    else Relation.LE
                )
                history = upper[2] | lower[2]
                statistics.combinations += 1
                if constant_only and (
                    constant < 0
                    or (constant == 0 and relation is not Relation.LT)
                ):
                    continue
            else:
                combined, relation, history = _combine_pair(
                    upper, lower, index
                )
                if _is_trivially_true(combined, relation):
                    continue
            if kohler_bound is not None and len(history) > kohler_bound:
                statistics.rows_pruned_kohler += 1
                statistics.lp_calls_saved += 1
                continue
            result.append((combined, relation, history))
    return result


def eliminate_variable(
    constraints: Sequence[Constraint], variable: str, kernel: str = "auto"
) -> List[Constraint]:
    """Project *variable* out of a conjunction of non-strict constraints."""
    names, indexed = _index_rows(constraints, kernel=kernel)
    if variable not in names:
        return list(constraints)
    index = names.index(variable)
    rows: List[_HistRow] = [
        (row, relation, frozenset([position]))
        for position, (row, relation) in enumerate(indexed)
    ]
    # A single step eliminates one variable: Kohler's bound is k + 1 = 2.
    survivors = _prune_syntactic(_eliminate_index(rows, index, 2))
    statistics.variables_eliminated += 1
    return [
        _row_constraint(row, relation, names)
        for row, relation, _ in survivors
    ]


def fourier_motzkin(
    constraints: Sequence[Constraint],
    eliminate: Iterable[str],
    simplify: bool = True,
    kernel: str = "auto",
) -> List[Constraint]:
    """Eliminate every variable in *eliminate* from the conjunction.

    With *simplify* the cheap syntactic/Kohler layers run after every
    step and the exact LP-based :func:`remove_redundant` once at the end
    (or mid-flight when a step still left the system more than
    :data:`_LP_PRUNE_GROWTH` times its input size).  ``kernel`` selects
    the row representation (see :data:`repro.linalg.packed.KERNELS`);
    the default picks the packed int64 kernel automatically on systems
    wide enough for it to win.
    """
    names, indexed = _index_rows(constraints, kernel=kernel)
    index_of = {name: i for i, name in enumerate(names)}
    targets = [index_of[v] for v in eliminate if v in index_of]
    rows: List[_HistRow] = [
        (row, relation, frozenset([position]))
        for position, (row, relation) in enumerate(indexed)
    ]
    baseline = max(len(rows), 4)
    eliminated = 0
    for index in targets:
        eliminated += 1
        # Kohler/Imbert: after k eliminations any combination of more
        # than k + 1 original inequalities is redundant.  The naive
        # (simplify=False) path skips it along with every other pruning
        # layer, which is what the equivalence property tests exercise.
        rows = _eliminate_index(
            rows, index, eliminated + 1 if simplify else None
        )
        statistics.variables_eliminated += 1
        if simplify:
            rows = _prune_syntactic(rows)
            if len(rows) > _LP_PRUNE_GROWTH * baseline:
                pruned = remove_redundant(
                    [
                        _row_constraint(row, relation, names)
                        for row, relation, _ in rows
                    ],
                    kernel=kernel,
                )
                # Histories no longer track original rows after an LP
                # prune; restart Kohler counting from the survivors
                # (the variable indexing stays stable).
                _, indexed = _index_rows(pruned, index_of, kernel=kernel)
                rows = [
                    (row, relation, frozenset([position]))
                    for position, (row, relation) in enumerate(indexed)
                ]
                eliminated = 0
    result = [
        _row_constraint(row, relation, names) for row, relation, _ in rows
    ]
    if simplify:
        result = remove_redundant(result, kernel=kernel)
    return result


def project_constraints(
    constraints: Sequence[Constraint],
    keep: Sequence[str],
    simplify: bool = True,
    kernel: str = "auto",
) -> List[Constraint]:
    """Project the conjunction onto the variables in *keep*."""
    keep_set = set(keep)
    mentioned = set()
    for constraint in constraints:
        mentioned |= constraint.variables()
    eliminate = sorted(mentioned - keep_set)
    return fourier_motzkin(constraints, eliminate, simplify, kernel=kernel)


def remove_redundant(
    constraints: Sequence[Constraint],
    kernel: str = "auto",
) -> List[Constraint]:
    """Drop constraints implied by the others (LP-based, exact).

    Duplicates and syntactically dominated constraints are removed
    first; each *dominated* drop is one LP solve saved (duplicates were
    always caught without an LP), counted in :data:`statistics`.  Each
    remaining inequality is then tested for entailment by maximising
    its left-hand side subject to the others.
    """
    unique: List[Constraint] = []
    seen = set()
    for constraint in constraints:
        normal = constraint.normalized()
        if normal.is_trivially_true():
            continue
        key = (normal.expr, normal.relation)
        if key in seen:
            statistics.rows_pruned_syntactic += 1
            continue
        seen.add(key)
        unique.append(normal)

    # Syntactic dominance: same homogeneous direction, weaker bound.
    names, indexed = _index_rows(unique, kernel=kernel)
    survivors = _prune_syntactic(
        [
            (row, relation, frozenset([position]))
            for position, (row, relation) in enumerate(indexed)
        ]
    )
    if len(survivors) < len(unique):
        kept = {next(iter(history)) for _, _, history in survivors}
        unique = [
            constraint
            for position, constraint in enumerate(unique)
            if position in kept
        ]

    result: List[Constraint] = []
    for index, candidate in enumerate(unique):
        if candidate.is_equality():
            result.append(candidate)
            continue
        # Test against the constraints already kept plus the ones not yet
        # examined; this never drops two mutually redundant constraints.
        others = result + unique[index + 1 :]
        context = [c.weaken() for c in others]
        statistics.lp_calls += 1
        outcome = solve_lp(candidate.expr, context, Sense.MAXIMIZE, kernel=kernel)
        if outcome.is_optimal and outcome.objective is not None and (
            outcome.objective <= 0
        ):
            # The constraint is implied by the others; drop it.
            continue
        result.append(candidate)
    return result


def entails(
    constraints: Sequence[Constraint],
    candidate: Constraint,
    kernel: str = "auto",
) -> bool:
    """Whether the conjunction of *constraints* implies *candidate*.

    Only meaningful for satisfiable conjunctions of non-strict constraints;
    an unsatisfiable conjunction entails everything and is reported as such.
    """
    context = [c.weaken() for c in constraints]
    if candidate.is_equality():
        upper = Constraint(candidate.expr, Relation.LE)
        lower = Constraint(-candidate.expr, Relation.LE)
        return entails(constraints, upper, kernel) and entails(
            constraints, lower, kernel
        )
    outcome = solve_lp(candidate.expr, context, Sense.MAXIMIZE, kernel=kernel)
    if outcome.is_infeasible:
        return True
    if outcome.is_unbounded:
        return False
    assert outcome.objective is not None
    if candidate.is_strict():
        return outcome.objective < 0
    return outcome.objective <= 0
