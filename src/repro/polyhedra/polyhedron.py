"""Constraint-representation polyhedra and the lattice operations on them.

:class:`Polyhedron` is the value manipulated by the polyhedral abstract
domain (our Aspic/Pagai substitute) and by the eager Ben-Amram & Genaim
baseline.  It is a *closed convex rational* polyhedron as in Definition 1
of the paper, described by a conjunction of non-strict inequalities and
equalities over a fixed tuple of variables.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.linexpr.constraint import Constraint, Relation
from repro.linexpr.expr import LinExpr
from repro.lp.problem import Sense
from repro.lp.simplex import check_feasibility, solve_lp
from repro.polyhedra.dd import (
    constraints_to_generators,
    generators_to_constraints,
)
from repro.polyhedra.generators import GeneratorSystem
from repro.polyhedra.projection import (
    entails,
    project_constraints,
    remove_redundant,
)


class Polyhedron:
    """A closed convex polyhedron ``{x | constraints}`` over named variables."""

    def __init__(
        self,
        variables: Sequence[str],
        constraints: Iterable[Constraint] = (),
    ):
        self._variables: Tuple[str, ...] = tuple(variables)
        cleaned: List[Constraint] = []
        for constraint in constraints:
            unknown = constraint.variables() - set(self._variables)
            if unknown:
                raise ValueError(
                    "constraint %s mentions variables %s outside the space"
                    % (constraint, sorted(unknown))
                )
            cleaned.append(constraint.weaken().normalized())
        self._constraints = cleaned
        self._empty_cache: Optional[bool] = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def universe(cls, variables: Sequence[str]) -> "Polyhedron":
        """The whole space (no constraints)."""
        return cls(variables, [])

    @classmethod
    def empty(cls, variables: Sequence[str]) -> "Polyhedron":
        """The canonical empty polyhedron."""
        return cls(variables, [Constraint(LinExpr.constant(1), Relation.LE)])

    @classmethod
    def from_generators(cls, system: GeneratorSystem) -> "Polyhedron":
        """Build the constraint representation from a generator system."""
        return cls(system.variables, generators_to_constraints(system))

    # -- accessors -----------------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._variables

    @property
    def constraints(self) -> List[Constraint]:
        """The defining constraints (Definition 5's ``Constraints(I)``)."""
        return list(self._constraints)

    def __repr__(self) -> str:
        if not self._constraints:
            return "Polyhedron(universe over %s)" % (list(self._variables),)
        return "Polyhedron(%s)" % " ∧ ".join(
            str(constraint) for constraint in self._constraints
        )

    # -- predicates ----------------------------------------------------------

    def is_empty(self) -> bool:
        """Exact emptiness test (LP feasibility)."""
        if self._empty_cache is None:
            outcome = check_feasibility(
                self._constraints, variables=self._variables
            )
            self._empty_cache = outcome.is_infeasible
        return self._empty_cache

    def is_universe(self) -> bool:
        return all(c.is_trivially_true() for c in self._constraints)

    def contains_point(self, point: Mapping[str, Fraction]) -> bool:
        return all(c.satisfied_by(point) for c in self._constraints)

    def entails_constraint(self, candidate: Constraint) -> bool:
        """Whether every point of the polyhedron satisfies *candidate*."""
        return entails(self._constraints, candidate)

    def includes(self, other: "Polyhedron") -> bool:
        """Whether *other* ⊆ *self*."""
        if other.is_empty():
            return True
        return all(
            entails(other._constraints, constraint)
            for constraint in self._constraints
        )

    def equals(self, other: "Polyhedron") -> bool:
        return self.includes(other) and other.includes(self)

    # -- lattice operations ----------------------------------------------------

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        self._check_space(other)
        return Polyhedron(
            self._variables, self._constraints + other._constraints
        )

    def intersect_constraints(
        self, constraints: Iterable[Constraint]
    ) -> "Polyhedron":
        return Polyhedron(
            self._variables, self._constraints + list(constraints)
        )

    def join(self, other: "Polyhedron") -> "Polyhedron":
        """Convex hull of the union (the abstract-domain join)."""
        self._check_space(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        mine = self.generators()
        theirs = other.generators()
        return Polyhedron.from_generators(mine.merge(theirs))

    def widen(self, other: "Polyhedron") -> "Polyhedron":
        """Standard widening: keep the constraints of *self* that *other* obeys.

        ``self`` is the previous iterate, ``other`` the new one; the result
        is an upper bound of both that guarantees termination of the
        ascending iteration sequence.
        """
        self._check_space(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        candidates: List[Constraint] = []
        for constraint in self._constraints:
            if constraint.is_equality():
                # Split equalities so that one half can survive widening even
                # when the other is lost (e.g. ``j = 0`` keeps ``j ≥ 0``).
                candidates.append(Constraint(constraint.expr, Relation.LE))
                candidates.append(Constraint(-constraint.expr, Relation.LE))
            else:
                candidates.append(constraint)
        stable = [
            constraint
            for constraint in candidates
            if other.entails_constraint(constraint)
        ]
        return Polyhedron(self._variables, stable)

    # -- geometric operations ----------------------------------------------------

    def generators(self) -> GeneratorSystem:
        """The generator system (vertices, rays, lines)."""
        if self.is_empty():
            return GeneratorSystem(self._variables)
        return constraints_to_generators(self._constraints, self._variables)

    def project(self, keep: Sequence[str]) -> "Polyhedron":
        """Orthogonal projection onto the variables in *keep*."""
        projected = project_constraints(self._constraints, keep)
        return Polyhedron(tuple(keep), projected)

    def rename(self, mapping: Mapping[str, str]) -> "Polyhedron":
        new_variables = tuple(mapping.get(v, v) for v in self._variables)
        return Polyhedron(
            new_variables,
            [constraint.rename(mapping) for constraint in self._constraints],
        )

    def extend_space(self, variables: Sequence[str]) -> "Polyhedron":
        """Embed into a larger space (new variables unconstrained)."""
        missing = [v for v in self._variables if v not in variables]
        if missing:
            raise ValueError("extended space misses variables %s" % missing)
        return Polyhedron(tuple(variables), self._constraints)

    def assign(self, variable: str, expression: LinExpr) -> "Polyhedron":
        """Strongest postcondition of the assignment ``variable := expression``."""
        if variable not in self._variables:
            raise ValueError("unknown variable %r" % variable)
        fresh = variable + "!old"
        renaming = {variable: fresh}
        renamed = [c.rename(renaming) for c in self._constraints]
        new_value = LinExpr.variable(variable) - expression.rename(renaming)
        renamed.append(Constraint(new_value, Relation.EQ))
        kept = project_constraints(renamed, self._variables)
        return Polyhedron(self._variables, kept)

    def havoc(self, variable: str) -> "Polyhedron":
        """Forget everything about *variable* (nondeterministic assignment)."""
        if variable not in self._variables:
            raise ValueError("unknown variable %r" % variable)
        others = [v for v in self._variables if v != variable]
        kept = project_constraints(self._constraints, others)
        return Polyhedron(self._variables, kept)

    def minimized(self) -> "Polyhedron":
        """An equivalent polyhedron without redundant constraints."""
        if self.is_empty():
            return Polyhedron.empty(self._variables)
        return Polyhedron(
            self._variables, remove_redundant(self._constraints)
        )

    def bounds(self, expression: LinExpr) -> Tuple[Optional[Fraction], Optional[Fraction]]:
        """Exact (min, max) of *expression* over the polyhedron.

        ``None`` means unbounded in that direction; both are ``None`` for an
        empty polyhedron.
        """
        if self.is_empty():
            return (None, None)
        low = solve_lp(
            expression, self._constraints, Sense.MINIMIZE, self._variables
        )
        high = solve_lp(
            expression, self._constraints, Sense.MAXIMIZE, self._variables
        )
        return (
            low.objective if low.is_optimal else None,
            high.objective if high.is_optimal else None,
        )

    # -- misc ------------------------------------------------------------------

    def constraint_vectors(self) -> List[Tuple["LinExpr", Fraction]]:
        """The ``(a_i, b_i)`` pairs of Definition 5 (``a_i · x ≥ b_i``).

        Every stored constraint ``expr ≤ 0`` (with ``expr = c·x + c0``) is
        flipped into ``(-c)·x ≥ c0``; equalities contribute two pairs.
        """
        pairs: List[Tuple[LinExpr, Fraction]] = []
        for constraint in self._constraints:
            expr = constraint.expr
            homogeneous = expr - expr.constant_term
            pairs.append((-homogeneous, expr.constant_term))
            if constraint.is_equality():
                pairs.append((homogeneous, -expr.constant_term))
        return pairs

    def _check_space(self, other: "Polyhedron") -> None:
        if self._variables != other._variables:
            raise ValueError(
                "polyhedra over different variable tuples: %s vs %s"
                % (self._variables, other._variables)
            )
