"""Convex polyhedra over exact rationals.

The package provides both representations of closed convex polyhedra used
by the paper (Definition 1 and Definition 3):

* the *constraint* representation ``{x | A x ≤ b}`` (:class:`Polyhedron`),
* the *generator* representation (vertices, rays, lines), computed by the
  double-description method in :mod:`repro.polyhedra.dd`.

On top of those sit Fourier–Motzkin projection, convex hull of unions,
inclusion/emptiness tests and the standard widening — everything the
polyhedral invariant generator (our Aspic/Pagai substitute) and the eager
Ben-Amram & Genaim baseline need.
"""

from repro.polyhedra.polyhedron import Polyhedron
from repro.polyhedra.generators import GeneratorSystem
from repro.polyhedra.dd import (
    cone_double_description,
    constraints_to_generators,
    generators_to_constraints,
)
from repro.polyhedra.projection import fourier_motzkin, project_constraints

__all__ = [
    "Polyhedron",
    "GeneratorSystem",
    "cone_double_description",
    "constraints_to_generators",
    "generators_to_constraints",
    "fourier_motzkin",
    "project_constraints",
]
