"""Generator systems: vertices, rays and lines of a closed convex polyhedron.

This is the representation of Definition 3 of the paper: every point of the
polyhedron is a convex combination of the vertices plus a nonnegative
combination of the rays plus an arbitrary combination of the lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Sequence, Tuple

from repro.linalg.vector import Vector


@dataclass
class GeneratorSystem:
    """Vertices, rays and lines of a polyhedron in a fixed variable order."""

    variables: Tuple[str, ...]
    vertices: List[Vector] = field(default_factory=list)
    rays: List[Vector] = field(default_factory=list)
    lines: List[Vector] = field(default_factory=list)

    @property
    def dimension(self) -> int:
        return len(self.variables)

    def is_empty(self) -> bool:
        """A polyhedron is empty iff it has no vertex (and no generator)."""
        return not self.vertices and not self.rays and not self.lines

    def all_ray_like(self) -> List[Vector]:
        """Rays plus both orientations of every line."""
        result = list(self.rays)
        for line in self.lines:
            result.append(line)
            result.append(-line)
        return result

    def difference_generators(self) -> List[Tuple[str, Vector]]:
        """Generators tagged as ``("vertex", v)`` or ``("ray", r)``.

        Lines are reported as a pair of opposite rays, which is how the
        synthesiser consumes them (a line forces ``λ·l = 0``).
        """
        tagged: List[Tuple[str, Vector]] = []
        for vertex in self.vertices:
            tagged.append(("vertex", vertex))
        for ray in self.all_ray_like():
            tagged.append(("ray", ray))
        return tagged

    def translate(self, offset: Vector) -> "GeneratorSystem":
        """The generator system of the polyhedron translated by *offset*."""
        return GeneratorSystem(
            self.variables,
            [vertex + offset for vertex in self.vertices],
            list(self.rays),
            list(self.lines),
        )

    def scale(self, factor: Fraction) -> "GeneratorSystem":
        """Scale every generator (factor must be positive)."""
        if factor <= 0:
            raise ValueError("scaling factor must be positive")
        return GeneratorSystem(
            self.variables,
            [vertex * factor for vertex in self.vertices],
            [ray * factor for ray in self.rays],
            list(self.lines),
        )

    def merge(self, other: "GeneratorSystem") -> "GeneratorSystem":
        """Union of the two generator sets (generates the convex hull)."""
        if self.variables != other.variables:
            raise ValueError("generator systems over different variables")
        return GeneratorSystem(
            self.variables,
            _dedupe_points(self.vertices + other.vertices),
            _dedupe_directions(self.rays + other.rays),
            _dedupe_directions(self.lines + other.lines),
        )

    def contains_point(self, point: Sequence[Fraction]) -> bool:
        """Membership test by solving the barycentric LP."""
        from repro.linexpr.expr import LinExpr
        from repro.lp.simplex import check_feasibility

        target = Vector(point)
        constraints = []
        alpha = ["alpha_%d" % i for i in range(len(self.vertices))]
        beta = ["beta_%d" % i for i in range(len(self.rays))]
        gamma_pos = ["gammap_%d" % i for i in range(len(self.lines))]
        gamma_neg = ["gamman_%d" % i for i in range(len(self.lines))]
        for name in alpha + beta + gamma_pos + gamma_neg:
            constraints.append(LinExpr.variable(name) >= 0)
        if alpha:
            constraints.append(
                LinExpr.from_terms([(name, 1) for name in alpha]).eq(1)
            )
        elif not self.rays and not self.lines:
            return False
        for coordinate in range(self.dimension):
            combination = LinExpr()
            for name, vertex in zip(alpha, self.vertices):
                combination = combination + LinExpr.variable(name) * vertex[coordinate]
            for name, ray in zip(beta, self.rays):
                combination = combination + LinExpr.variable(name) * ray[coordinate]
            for pos, neg, line in zip(gamma_pos, gamma_neg, self.lines):
                combination = combination + LinExpr.variable(pos) * line[coordinate]
                combination = combination - LinExpr.variable(neg) * line[coordinate]
            constraints.append(combination.eq(target[coordinate]))
        return check_feasibility(constraints).is_optimal


def _dedupe_points(vectors: List[Vector]) -> List[Vector]:
    """Remove exact duplicates (vertices are points, scaling changes them)."""
    seen = set()
    result = []
    for vector in vectors:
        if vector not in seen:
            seen.add(vector)
            result.append(vector)
    return result


def _dedupe_directions(vectors: List[Vector]) -> List[Vector]:
    """Remove duplicates up to positive scaling (rays and lines are directions)."""
    seen = set()
    result = []
    for vector in vectors:
        key = vector.normalized() if not vector.is_zero() else vector
        if key not in seen:
            seen.add(key)
            result.append(vector)
    return result
